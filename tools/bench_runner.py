#!/usr/bin/env python
"""Perf-smoke driver: run every benchmark quickly, record the trajectory.

The CI ``perf-smoke`` job (and anyone locally) runs::

    python tools/bench_runner.py

which executes each ``benchmarks/bench_*.py`` in its own pytest process
with the shared ``--quick`` flag, collects the headline metrics each
bench reports through ``benchmarks/conftest.py::record_metric`` (the
``REPRO_BENCH_METRICS`` JSON-lines protocol), and writes a single

    ``BENCH_<git sha>.json``

snapshot — per-benchmark status/seconds/metrics plus machine info — so
the uploaded artifacts form a throughput trajectory across commits.

The job *gates*: the run fails when any benchmark errors out, when a
throughput metric falls below its floor in :data:`FLOORS`, or when a
latency metric rises above its ceiling in :data:`CEILINGS`.  Floors are
deliberately conservative (far below a warm developer machine, above a
catastrophic regression) because CI runners are slow and noisy; ratchet
them upward as the trajectory accumulates.

Options::

    --full           run benchmarks at full size (no --quick)
    --only PATTERN   substring filter on benchmark file names
    --output PATH    where to write the JSON (default BENCH_<sha>.json)
    --no-gate        record everything, fail nothing (trajectory only)
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

#: Conservative elements/sec floors for the quick-mode throughput
#: benchmarks.  A cold CI container measures roughly 5-10x above these;
#: tripping one means an order-of-magnitude hot-path regression, not
#: scheduler noise.
FLOORS: Dict[str, float] = {
    "batch_ingest_eps": 2_000.0,
    "sharded_ingest_eps": 1_500.0,
    "windowed_ingest_eps": 1_500.0,
    # ISSUE 5: cold-recovery replay (open_session(durable_dir=...))
    # and estimate-query service under concurrent ingest.
    "recovery_replay_eps": 2_000.0,
    "serve_query_qps": 150.0,
    # ISSUE 6: aggregate estimate QPS through the ClusterClient fan-out
    # over a caught-up two-follower cluster.
    "replicated_read_qps": 150.0,
    # ISSUE 8: residue-replay throughput of a live reshard (the write
    # path is paused for exactly this long per topology change).
    "reshard_eps": 500.0,
    # ISSUE 9: shared-log fan-out of 8 tenants (one WAL append per
    # element, all estimators driven in a single pass).
    "tenant_fanout_eps": 5_000.0,
    # ISSUE 10: the packed record codec (encode_element) and format-2
    # WAL replay (iter_wal over a packed segment).  Warm machines
    # measure ~1-2M and ~300k el/s respectively.
    "codec_encode_eps": 100_000.0,
    "wal_v2_replay_eps": 20_000.0,
}

#: Latency ceilings (seconds) — the inverse gate: these metrics must
#: stay *below* their bound.  Same conservatism as the floors: a warm
#: machine settles in well under a second; tripping 30s means the
#: autoscale loop stopped converging, not that the runner was slow.
CEILINGS: Dict[str, float] = {
    # ISSUE 8: closed-loop ingest -> observe -> reshard growth from
    # 1 shard to max_shards under sustained overload.
    "autoscale_settle_s": 30.0,
}

#: Per-benchmark subprocess timeout (seconds).  Quick mode finishes in
#: seconds per file; the timeout only reins in a hung run.
TIMEOUT_S = 900


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def _machine_info() -> Dict[str, object]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _read_metrics(path: pathlib.Path) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    if not path.exists():
        return metrics
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            metrics[str(record["metric"])] = float(record["value"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            print(
                f"  [warn] unparsable metric line: {line!r}", file=sys.stderr
            )
    return metrics


def run_benchmark(
    bench: pathlib.Path, quick: bool
) -> Dict[str, object]:
    """Run one bench file in a pytest subprocess; return its record."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    with tempfile.NamedTemporaryFile(
        suffix=".jsonl", prefix="bench_metrics_", delete=False
    ) as handle:
        metrics_path = pathlib.Path(handle.name)
    env["REPRO_BENCH_METRICS"] = str(metrics_path)
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(bench),
        "-q",
        "-p",
        "no:cacheprovider",
    ]
    if quick:
        command.append("--quick")
    started = time.perf_counter()
    try:
        completed = subprocess.run(
            command,
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=TIMEOUT_S,
        )
        status = "passed" if completed.returncode == 0 else "failed"
        tail = (completed.stdout + completed.stderr).splitlines()[-25:]
    except subprocess.TimeoutExpired:
        status = "timeout"
        tail = [f"timed out after {TIMEOUT_S}s"]
    elapsed = time.perf_counter() - started
    metrics = _read_metrics(metrics_path)
    metrics_path.unlink(missing_ok=True)
    record: Dict[str, object] = {
        "status": status,
        "seconds": round(elapsed, 3),
        "metrics": metrics,
    }
    if status != "passed":
        record["log_tail"] = tail
    return record


def _collect_metrics(
    results: Dict[str, Dict[str, object]],
) -> Dict[str, float]:
    all_metrics: Dict[str, float] = {}
    for _, record in sorted(results.items()):
        all_metrics.update(record["metrics"])  # type: ignore[arg-type]
    return all_metrics


def gate_rows(
    results: Dict[str, Dict[str, object]],
) -> List[Dict[str, object]]:
    """One row per gated metric: floor/ceiling, measured, status.

    This is the canonical gate evaluation — both the printed summary
    table and the ``BENCH_<sha>.json`` payload render exactly these
    rows, so the artifact always records which bound each metric was
    held to and how it fared.
    """
    all_metrics = _collect_metrics(results)
    rows: List[Dict[str, object]] = []
    for metric, floor in sorted(FLOORS.items()):
        value = all_metrics.get(metric)
        if value is None:
            status = "missing"
        else:
            status = "ok" if value >= floor else "below-floor"
        rows.append(
            {
                "metric": metric,
                "kind": "floor",
                "bound": floor,
                "measured": value,
                "status": status,
            }
        )
    for metric, ceiling in sorted(CEILINGS.items()):
        value = all_metrics.get(metric)
        if value is None:
            status = "missing"
        else:
            status = "ok" if value <= ceiling else "above-ceiling"
        rows.append(
            {
                "metric": metric,
                "kind": "ceiling",
                "bound": ceiling,
                "measured": value,
                "status": status,
            }
        )
    return rows


def format_gate_table(rows: List[Dict[str, object]]) -> str:
    """The floors-and-ceilings summary, as a monospace table."""
    headers = ("metric", "kind", "bound", "measured", "status")
    cells = [headers]
    for row in rows:
        measured = row["measured"]
        cells.append(
            (
                str(row["metric"]),
                str(row["kind"]),
                f"{row['bound']:,.1f}",
                "-" if measured is None else f"{measured:,.1f}",
                str(row["status"]),
            )
        )
    widths = [
        max(len(line[column]) for line in cells)
        for column in range(len(headers))
    ]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in cells
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def gate(
    results: Dict[str, Dict[str, object]], require_all_metrics: bool = True
) -> List[str]:
    """Return the list of gate violations (empty = healthy).

    ``require_all_metrics`` is False for ``--only``-filtered runs: a
    floor metric whose benchmark was filtered out is then simply not
    checked, instead of counting as "never reported".
    """
    violations = []
    for name, record in sorted(results.items()):
        if record["status"] != "passed":
            violations.append(f"{name}: {record['status']}")
    for row in gate_rows(results):
        metric, bound = row["metric"], row["bound"]
        value, status = row["measured"], row["status"]
        if status == "missing":
            if require_all_metrics:
                violations.append(
                    f"{metric}: never reported "
                    f"({row['kind']} {bound:,.1f})"
                )
        elif status == "below-floor":
            violations.append(
                f"{metric}: {value:,.0f} el/s below floor {bound:,.0f}"
            )
        elif status == "above-ceiling":
            violations.append(
                f"{metric}: {value:,.1f}s above ceiling {bound:,.1f}s"
            )
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench_runner.py",
        description="Run the benchmark suite and record BENCH_<sha>.json.",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at full size instead of --quick",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="PATTERN",
        help="substring filter on bench file names",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="output JSON path (default: BENCH_<sha>.json in the cwd)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="record the trajectory without failing on floors",
    )
    args = parser.parse_args(argv)

    benches = sorted(BENCH_DIR.glob("bench_*.py"))
    if args.only:
        benches = [b for b in benches if args.only in b.name]
    if not benches:
        print("no benchmarks matched", file=sys.stderr)
        return 2

    sha = _git_sha()
    results: Dict[str, Dict[str, object]] = {}
    for bench in benches:
        print(f"[bench] {bench.name} ...", flush=True)
        record = run_benchmark(bench, quick=not args.full)
        results[bench.name] = record
        metrics = ", ".join(
            f"{k}={v:,.0f}"
            for k, v in sorted(record["metrics"].items())  # type: ignore
        )
        print(
            f"[bench] {bench.name}: {record['status']} "
            f"in {record['seconds']}s"
            + (f" ({metrics})" if metrics else ""),
            flush=True,
        )
        if record["status"] != "passed":
            for line in record.get("log_tail", []):  # type: ignore[union-attr]
                print(f"    {line}")

    # Evaluate the gates *before* writing the payload so the artifact
    # records the verdict it was gated on, not just the raw numbers.
    rows = gate_rows(results)
    violations = gate(results, require_all_metrics=args.only is None)
    payload = {
        "schema": 2,
        "sha": sha,
        "mode": "full" if args.full else "quick",
        "machine": _machine_info(),
        "floors": FLOORS,
        "ceilings": CEILINGS,
        "gates": rows,
        "violations": violations,
        "benchmarks": results,
    }
    output = pathlib.Path(
        args.output if args.output else f"BENCH_{sha[:12]}.json"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"[bench] wrote {output}")

    print("[bench] gate summary (floors and ceilings):")
    for line in format_gate_table(rows).splitlines():
        print(f"  {line}")
    if violations:
        print("[bench] gate violations:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        if not args.no_gate:
            return 1
    else:
        print("[bench] all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
