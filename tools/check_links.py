#!/usr/bin/env python
"""Docs link/staleness checker (CI docs job).

Scans the repository's Markdown documentation (README.md, docs/*.md,
CHANGES.md) and fails when it references things that do not exist:

* relative Markdown links — ``[text](path)`` — whose target file is
  missing (http/https/mailto and ``#`` anchors are skipped);
* inline code spans that look like repository paths — `repro/shard/`,
  `benchmarks/bench_fig3_accuracy_deletions.py`,
  `repro/core/counting.py::count_with_mirror` — whose file or
  directory is missing (tried relative to the repo root, then src/).

Fenced code blocks are ignored (shell transcripts are not references).
Run from anywhere: ``python tools/check_links.py``.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterable, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`([^`]+)`")
_PATHLIKE = re.compile(r"^[A-Za-z0-9_.\-/]+$")


def _markdown_files() -> List[pathlib.Path]:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "CHANGES.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def _strip_fenced_blocks(text: str) -> str:
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def _resolves(base: pathlib.Path, token: str) -> bool:
    token = token.split("::", 1)[0].rstrip("/")
    if not token:
        return True
    candidates = (base / token, REPO_ROOT / token, REPO_ROOT / "src" / token)
    return any(c.exists() for c in candidates)


def _pathlike_spans(text: str) -> Iterable[str]:
    for span in _CODE_SPAN.findall(text):
        candidate = span.split("::", 1)[0]
        if "/" not in candidate or not _PATHLIKE.match(candidate):
            continue
        if candidate.endswith((".py", ".md")) or candidate.endswith("/"):
            yield span


def check_file(path: pathlib.Path) -> List[Tuple[str, str]]:
    """Return (kind, reference) problems found in one Markdown file."""
    text = _strip_fenced_blocks(path.read_text(encoding="utf-8"))
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        clean = target.split("#", 1)[0]
        if clean and not _resolves(path.parent, clean):
            problems.append(("broken link", target))
    for span in _pathlike_spans(text):
        if not _resolves(path.parent, span):
            problems.append(("missing path", span))
    return problems


def main() -> int:
    failures = 0
    for path in _markdown_files():
        for kind, reference in check_file(path):
            rel = path.relative_to(REPO_ROOT)
            print(f"{rel}: {kind}: {reference}", file=sys.stderr)
            failures += 1
    if failures:
        print(
            f"{failures} documentation reference(s) are stale",
            file=sys.stderr,
        )
        return 1
    print(f"docs OK ({len(_markdown_files())} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
