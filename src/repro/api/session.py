"""The ``Session`` facade — the single public entry point.

A session wraps one estimator behind a uniform lifecycle::

    spec -> build -> ingest -> observe -> snapshot

so every consumer (CLI, experiment harness, benchmarks, examples, user
code) drives estimators the same way regardless of which one a spec
names::

    from repro.api import open_session

    with open_session("abacus:budget=1000,seed=42") as session:
        session.ingest(stream)                # batched
        session.ingest(insertion("u", "v"))   # or element-by-element
        print(session.estimate, session.metrics.throughput_eps)

Observers replace the positional callback of
``ButterflyEstimator.process_stream``: subscriptions are added with
:meth:`Session.on_checkpoint` / :meth:`Session.on_estimate_change`,
each returning an unsubscribe callable, and any number can be active
at once.

Sessions of snapshot-capable estimators (ABACUS, PARABACUS — any
:class:`~repro.core.base.StatefulEstimator` whose class is registered)
serialise to a JSON document with :meth:`Session.snapshot` /
:meth:`Session.save` and come back with :func:`restore_session`;
continuing a restored session is bit-identical to never having
stopped.

Passing ``shards=K`` (plus ``backend=`` / ``partitioner=``) to
:func:`open_session` routes ingestion through the sharded engine of
:mod:`repro.shard` — same facade, same observer and snapshot
semantics, fan-out underneath.  Passing ``window=N`` and/or
``window_time=T`` wraps the spec in the sliding-window engine of
:mod:`repro.window` the same way (window over shards when both are
given).
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.api.registry import (
    EstimatorSpec,
    SpecLike,
    build_estimator,
    get_registration,
    parse_spec,
    registration_for_instance,
)
from repro.core.base import ButterflyEstimator
from repro.errors import EstimatorError, SpecError, StoreError
from repro.faults import fault_point
from repro.store import DurableStore
from repro.types import StreamElement

__all__ = [
    "DEFAULT_INGEST_BATCH",
    "Session",
    "SessionMetrics",
    "SNAPSHOT_FORMAT_VERSION",
    "open_session",
    "restore_session",
]

#: Session snapshot envelope version (the ABACUS-only legacy file
#: format of :mod:`repro.core.checkpoint` is version 1).
SNAPSHOT_FORMAT_VERSION = 2

#: Chunk size :meth:`Session.ingest` feeds to ``process_batch`` when
#: the caller passes an iterable and does not size the batches itself.
DEFAULT_INGEST_BATCH = 1024

#: Checkpoint observers receive ``(elements_processed, session)``.
CheckpointObserver = Callable[[int, "Session"], None]
#: Estimate observers receive ``(signed_delta, session)``.
EstimateObserver = Callable[[float, "Session"], None]


@dataclass(frozen=True)
class SessionMetrics:
    """Point-in-time per-session metrics.

    Attributes:
        elements: stream elements ingested through this session.
        processing_seconds: wall-clock time spent inside the
            estimator's ``process`` calls (observer and bookkeeping
            time excluded).
        throughput_eps: elements per processing second (0 before any
            work).
        memory_edges: edges currently held by the estimator.
        estimate: the current butterfly-count estimate.
    """

    elements: int
    processing_seconds: float
    throughput_eps: float
    memory_edges: int
    estimate: float


class _CheckpointSubscription:
    """One ``on_checkpoint`` registration (periodic and/or marks)."""

    __slots__ = ("callback", "every", "marks", "next_mark")

    def __init__(
        self,
        callback: CheckpointObserver,
        every: Optional[int],
        at: Optional[Sequence[int]],
    ) -> None:
        self.callback = callback
        self.every = every
        self.marks: List[int] = sorted(at) if at else []
        self.next_mark = 0

    def notify(self, elements: int, session: "Session") -> None:
        if self.every is not None and elements % self.every == 0:
            self.callback(elements, session)
        # One call per listed mark — duplicates each fire.
        while (
            self.next_mark < len(self.marks)
            and elements >= self.marks[self.next_mark]
        ):
            self.callback(self.marks[self.next_mark], session)
            self.next_mark += 1

    def gap(self, elements: int) -> Optional[int]:
        """Elements that may be ingested before this subscription fires.

        Batched ingestion caps its chunks at this gap so every chunk
        boundary lands exactly on a fire point — :meth:`notify` then
        sees the same element counts it would under per-element
        ingestion.  Returns None when nothing is pending (periodic-free
        subscription whose marks are exhausted).
        """
        gap: Optional[int] = None
        if self.every is not None:
            gap = self.every - (elements % self.every)
        if self.next_mark < len(self.marks):
            mark = self.marks[self.next_mark]
            # A mark at or below the current count fires on the very
            # next element (matching per-element semantics).
            to_mark = mark - elements if mark > elements else 1
            gap = to_mark if gap is None else min(gap, to_mark)
        return gap


class Session:
    """One estimator behind the spec → ingest → observe → snapshot API.

    Build via :func:`open_session` (or :func:`restore_session`) rather
    than directly; the functions handle spec parsing and registry
    lookup.

    Args:
        estimator: the wrapped estimator instance.
        spec: the spec it was built from, when known — recorded in
            snapshots for provenance.
    """

    def __init__(
        self,
        estimator: ButterflyEstimator,
        spec: Optional[EstimatorSpec] = None,
    ) -> None:
        self._estimator = estimator
        self._spec = spec
        self._elements = 0
        self._processing_seconds = 0.0
        self._checkpoint_subs: List[_CheckpointSubscription] = []
        self._estimate_subs: List[tuple] = []  # (callback, min_delta)
        self._store: Optional[DurableStore] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def estimator(self) -> ButterflyEstimator:
        """The wrapped estimator (shared, not a copy)."""
        return self._estimator

    @property
    def spec(self) -> Optional[EstimatorSpec]:
        """The spec this session was opened from, if any."""
        return self._spec

    @property
    def store(self) -> Optional[DurableStore]:
        """The durable store, when opened with ``durable_dir=``."""
        return self._store

    @property
    def durable(self) -> bool:
        """Whether ingested elements are written ahead to a WAL."""
        return self._store is not None

    @property
    def durability(self) -> Optional[Dict[str, Any]]:
        """Durable-store facts for stats surfaces; None when volatile.

        The dict carries the store directory, the WAL's current element
        ``offset`` (equal to :attr:`elements` — every ingested element
        is logged ahead), the ``oldest_wal_offset`` still covered by
        un-pruned segments (the replication catch-up floor), and the
        ``checkpoints`` offsets whose snapshots are on disk.  The
        serving layer reports this verbatim under ``stats`` and the
        cluster primary uses it for start-offset negotiation.
        """
        if self._store is None:
            return None
        return {
            "directory": str(self._store.directory),
            "offset": self._store.offset,
            "oldest_wal_offset": self._store.oldest_offset(),
            "checkpoints": list(self._store.snapshots.offsets()),
        }

    def _sharded_engine(self):
        """The underlying sharded engine, unwrapping a window; or None.

        Imported lazily: the session facade must stay importable
        before the shard/window engines register themselves.
        """
        from repro.shard.engine import ShardedEstimator
        from repro.window.engine import WindowedEstimator

        estimator = self._estimator
        if isinstance(estimator, WindowedEstimator):
            estimator = estimator.inner
        if isinstance(estimator, ShardedEstimator):
            return estimator
        return None

    @property
    def topology(self) -> Optional[Dict[str, Any]]:
        """The sharded topology in force; None for unsharded sessions.

        The dict carries the partition count ``shards``, the
        partitioner ``epoch`` (bumped by every :meth:`reshard`), the
        ``partitioner`` and ``backend`` names, the count of
        ``live_edges`` (the reshard replay set), and the per-shard
        ``load_table``.  The serving layer republishes this under
        ``stats`` so clients can watch topology changes.
        """
        engine = self._sharded_engine()
        if engine is None:
            return None
        return {
            "shards": engine.num_shards,
            "epoch": engine.epoch,
            "partitioner": engine.partitioner.name,
            "backend": engine.backend_name,
            "live_edges": engine.live_edges,
            "load_table": list(engine.partitioner.load_table()),
        }

    @property
    def estimate(self) -> float:
        """The current butterfly-count estimate."""
        return self._estimator.estimate

    @property
    def elements(self) -> int:
        """Stream elements ingested through this session."""
        return self._elements

    @property
    def memory_edges(self) -> int:
        return self._estimator.memory_edges

    @property
    def metrics(self) -> SessionMetrics:
        """A snapshot of the built-in per-session metrics."""
        seconds = self._processing_seconds
        return SessionMetrics(
            elements=self._elements,
            processing_seconds=seconds,
            throughput_eps=(self._elements / seconds) if seconds > 0 else 0.0,
            memory_edges=self._estimator.memory_edges,
            estimate=self._estimator.estimate,
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        elements: Union[StreamElement, Iterable[StreamElement]],
        *,
        batch_size: Optional[int] = None,
    ) -> float:
        """Feed one element or a whole iterable of elements.

        Iterables are auto-chunked through the estimator's
        ``process_batch`` fast path when the estimator declares one
        (``supports_batch``), with two guarantees that make the fast
        path observably identical to element-by-element ingestion:

        * checkpoint observers fire at exactly the element offsets they
          would under per-element ingestion — chunks are split at every
          upcoming checkpoint boundary, never across one;
        * estimate-change observers are inherently per-element, so any
          active ``on_estimate_change`` subscription routes ingestion
          through the element path (at its cost).

        Args:
            elements: one :class:`~repro.types.StreamElement` or an
                iterable of them (list, generator, ``EdgeStream``...).
            batch_size: chunk size for the fast path; defaults to
                :data:`DEFAULT_INGEST_BATCH`.  Pass 1 to force the
                per-element path.

        >>> from repro.types import insertion
        >>> session = open_session("exact")
        >>> session.ingest(insertion("a", "x"))       # one element
        0.0
        >>> session.ingest([insertion("a", "y"),      # or any iterable
        ...                 insertion("b", "x"), insertion("b", "y")])
        1.0
        >>> session.elements
        4

        Returns:
            The signed change to the estimate caused by this call.  For
            buffering estimators (PARABACUS) per-element deltas surface
            at flush boundaries, exactly as with direct ``process``.
            The estimator's *state* (estimate, sample, RNG) is
            bit-identical across chunkings; this convenience sum may
            differ in the last float bits between chunkings because
            summation order follows the chunk structure.
        """
        if self._closed:
            raise EstimatorError("session is closed")
        if batch_size is not None and batch_size <= 0:
            raise SpecError(f"batch_size must be positive, got {batch_size}")
        if isinstance(elements, StreamElement):
            return self._ingest_one(elements)
        size = batch_size if batch_size is not None else DEFAULT_INGEST_BATCH
        if size > 1 and type(self._estimator).supports_batch:
            return self._ingest_batched(elements, size)
        total = 0.0
        for element in elements:
            total += self._ingest_one(element)
        return total

    def _ingest_batched(
        self, elements: Iterable[StreamElement], batch_size: int
    ) -> float:
        """Chunk ``elements`` through ``process_batch``, observer-exact."""
        iterator = iter(elements)
        estimator = self._estimator
        total = 0.0
        while True:
            if self._estimate_subs:
                # Per-element deltas are observable again: leave the
                # fast path for the rest of the stream.
                for element in iterator:
                    total += self._ingest_one(element)
                return total
            cap = batch_size
            for subscription in self._checkpoint_subs:
                gap = subscription.gap(self._elements)
                if gap is not None and gap < cap:
                    cap = gap
            chunk = list(itertools.islice(iterator, cap))
            if not chunk:
                return total
            started = time.perf_counter()
            if self._store is None:
                total += estimator.process_batch(chunk)
            else:
                # Write-ahead, but undo on refusal: a chunk the
                # estimator raised on was not ingested (it is not in
                # self._elements either), so it must leave the log or
                # log and session desync forever.
                undo = self._store.mark()
                self._store.append_batch(chunk)
                try:
                    total += estimator.process_batch(chunk)
                except BaseException:
                    self._store.rollback(undo)
                    raise
            self._processing_seconds += time.perf_counter() - started
            self._elements += len(chunk)
            if self._checkpoint_subs:
                for subscription in list(self._checkpoint_subs):
                    subscription.notify(self._elements, self)

    def _ingest_one(self, element: StreamElement) -> float:
        started = time.perf_counter()
        if self._store is None:
            delta = self._estimator.process(element)
        else:
            # Write-ahead with undo-on-refusal (see _ingest_batched).
            undo = self._store.mark()
            self._store.append(element)
            try:
                delta = self._estimator.process(element)
            except BaseException:
                self._store.rollback(undo)
                raise
        self._processing_seconds += time.perf_counter() - started
        self._elements += 1
        if delta and self._estimate_subs:
            for callback, min_delta in list(self._estimate_subs):
                if abs(delta) >= min_delta:
                    callback(delta, self)
        if self._checkpoint_subs:
            for subscription in list(self._checkpoint_subs):
                subscription.notify(self._elements, self)
        return delta

    def flush(self) -> float:
        """Flush any buffered elements (no-op for unbuffered estimators).

        Returns the estimate change caused by the flush.
        """
        flusher = getattr(self._estimator, "flush", None)
        if flusher is None:
            return 0.0
        started = time.perf_counter()
        delta = flusher()
        self._processing_seconds += time.perf_counter() - started
        return delta

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def on_checkpoint(
        self,
        callback: CheckpointObserver,
        *,
        every: Optional[int] = None,
        at: Optional[Sequence[int]] = None,
    ) -> Callable[[], None]:
        """Subscribe to element-count checkpoints.

        Args:
            callback: invoked as ``callback(elements, session)``.
            every: fire each time the ingested-element count is a
                multiple of this period.
            at: explicit element counts to fire at (need not be
                sorted; duplicates fire once per listed entry).  A mark
                smaller than the current element count fires on the
                next ingested element.

        Returns:
            A zero-argument unsubscribe callable.

        Raises:
            SpecError: when neither ``every`` nor ``at`` is given, or
                ``every`` is not positive.
        """
        if every is None and at is None:
            raise SpecError("on_checkpoint needs every=N and/or at=[...]")
        if every is not None and every <= 0:
            raise SpecError(f"every must be positive, got {every}")
        subscription = _CheckpointSubscription(callback, every, at)
        self._checkpoint_subs.append(subscription)

        def unsubscribe() -> None:
            if subscription in self._checkpoint_subs:
                self._checkpoint_subs.remove(subscription)

        return unsubscribe

    def on_estimate_change(
        self,
        callback: EstimateObserver,
        *,
        min_delta: float = 0.0,
    ) -> Callable[[], None]:
        """Subscribe to estimate changes.

        Args:
            callback: invoked as ``callback(delta, session)`` whenever
                an ingested element changes the estimate.
            min_delta: suppress notifications with ``|delta|`` below
                this threshold.

        Returns:
            A zero-argument unsubscribe callable.
        """
        entry = (callback, min_delta)
        self._estimate_subs.append(entry)

        def unsubscribe() -> None:
            if entry in self._estimate_subs:
                self._estimate_subs.remove(entry)

        return unsubscribe

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Serialise the session to a JSON-ready dict.

        The envelope records the registry name (so restore knows which
        class to rebuild), the opening spec for provenance, the full
        estimator state, and the session counters.

        Raises:
            SpecError: when the estimator's class is unregistered or
                does not implement the ``StatefulEstimator`` protocol.
        """
        registration = registration_for_instance(self._estimator)
        if registration is None:
            raise SpecError(
                f"{type(self._estimator).__name__} is not a registered "
                "estimator class; snapshots need a registry entry"
            )
        if not registration.supports_snapshot or not hasattr(
            self._estimator, "state_to_dict"
        ):
            raise SpecError(
                f"estimator {registration.name!r} does not support "
                "snapshot/restore (no StatefulEstimator implementation)"
            )
        return {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "estimator": registration.name,
            "spec": self._spec.to_dict() if self._spec else None,
            "state": self._estimator.state_to_dict(),
            "session": {
                "elements": self._elements,
                "processing_seconds": self._processing_seconds,
            },
        }

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write :meth:`snapshot` as a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle)

    def fingerprint(self) -> str:
        """A canonical digest of the session's observable state.

        Two sessions with equal fingerprints hold bit-identical
        estimator state: the string is the sorted-key JSON of the
        estimate plus the full ``state_to_dict`` payload (falling
        back to the element count for snapshot-free estimators).
        The recovery and tenancy test suites compare fingerprints to
        prove crash recovery bit-identical per tenant.

        >>> from repro.types import insertion
        >>> first = open_session("abacus:budget=8,seed=1")
        >>> second = open_session("abacus:budget=8,seed=1")
        >>> _ = first.ingest(insertion("u", "v"))
        >>> _ = second.ingest(insertion("u", "v"))
        >>> first.fingerprint() == second.fingerprint()
        True
        """
        state_to_dict = getattr(self._estimator, "state_to_dict", None)
        state: Any
        if state_to_dict is not None:
            state = state_to_dict()
        else:
            state = {"elements": self._elements}
        return json.dumps(
            {"estimate": self.estimate, "state": state},
            sort_keys=True,
        )

    def checkpoint(self) -> int:
        """Write a durable snapshot to the session's store.

        Only available for durable sessions (``open_session(...,
        durable_dir=...)``).  The WAL is synced, the full
        :meth:`snapshot` envelope is written atomically at the current
        element offset, and the log rotates — recovery after this
        point restores the snapshot and replays only the elements
        ingested since (``docs/persistence.md``).  Snapshot-free
        estimators can still run durably (recovery replays the whole
        log); they just cannot compact it with checkpoints.

        Returns:
            The element offset the checkpoint covers.

        Raises:
            EstimatorError: for non-durable sessions.
            SpecError: when the estimator does not support the
                snapshot protocol.
        """
        if self._store is None:
            raise EstimatorError(
                "checkpoint() needs a durable session; pass "
                "durable_dir= to open_session"
            )
        self._store.checkpoint(self.snapshot(), self._elements)
        return self._elements

    def sync(self) -> None:
        """Force WAL-buffered elements to disk (durable sessions)."""
        if self._store is not None:
            self._store.sync()

    # ------------------------------------------------------------------
    # Elastic resharding
    # ------------------------------------------------------------------
    def reshard(
        self,
        shards: int,
        *,
        backend: Optional[str] = None,
        partitioner: Optional[str] = None,
        salt: Optional[int] = None,
    ):
        """Live split/merge of a sharded session to ``shards`` shards.

        Delegates to :meth:`repro.shard.engine.ShardedEstimator
        .reshard` (residue replay under a new partitioner epoch — see
        ``docs/resharding.md``), then, for durable sessions,
        **commits the epoch cut**: a checkpoint is written at the
        current element offset, so the WAL segment boundary is exactly
        the old-epoch/new-epoch cut and ``DurableStore.recover()``
        lands on one consistent topology — the old one if the crash
        beat the checkpoint (the whole reshard then simply never
        happened), the new one after it.  Elements logged before the
        cut never replay through the new topology and vice versa.

        Args:
            shards: target partition count ``K'``.
            backend: optional backend switch for the new topology.
            partitioner: optional partitioner switch.
            salt: optional new partition-map salt.

        Returns:
            The engine's :class:`~repro.shard.engine.ReshardReport`.

        Raises:
            EstimatorError: for unsharded or closed sessions.
        """
        if self._closed:
            raise EstimatorError("session is closed")
        engine = self._sharded_engine()
        if engine is None:
            raise EstimatorError(
                "reshard() needs a sharded session; pass shards=K to "
                "open_session"
            )
        report = engine.reshard(
            shards, backend=backend, partitioner=partitioner, salt=salt
        )
        if self._store is not None:
            fault_point("reshard.pre_checkpoint")
            self._store.checkpoint(self.snapshot(), self._elements)
        return report

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush buffered work and release estimator resources.

        Durable sessions additionally sync and close their store, so
        every ingested element is on disk once ``close`` returns.
        """
        if self._closed:
            return
        self.flush()
        closer = getattr(self._estimator, "close", None)
        if closer is not None:
            closer()
        if self._store is not None:
            self._store.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = (
            self._spec.name if self._spec else type(self._estimator).__name__
        )
        return (
            f"Session({name}, elements={self._elements}, "
            f"estimate={self.estimate:.1f})"
        )


def open_session(
    estimator: Union[SpecLike, ButterflyEstimator, None] = None,
    *,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
    partitioner: Optional[str] = None,
    salt: Optional[int] = None,
    window: Optional[int] = None,
    window_time: Optional[float] = None,
    window_strict: Optional[bool] = None,
    durable_dir: Optional[Union[str, os.PathLike]] = None,
    wal_format: Optional[int] = None,
    **overrides: Any,
) -> Session:
    """Open a session from a spec (string/dict/object) or an instance.

    Args:
        estimator: an :class:`EstimatorSpec`, a spec string like
            ``"abacus:budget=1000,seed=42"``, a spec dict, or an
            already-constructed estimator to wrap.  May be omitted
            only together with ``durable_dir`` naming an *existing*
            durable session, which then reopens under its stored
            spec.
        shards: when given, wrap the spec in the sharded ingestion engine
            (:class:`repro.shard.engine.ShardedEstimator`): the stream
            is hash-partitioned across this many independent estimator
            shards and the per-shard estimates merge under the
            K-corrected contract of ``docs/architecture.md``.  The
            spec's memory budget then applies *per shard*.
        backend: shard executor — ``"serial"`` (default), ``"thread"``,
            or ``"process"`` (persistent worker processes).  Requires
            ``shards``; alone it raises rather than implicitly sharding.
        partitioner: ``"hash"`` (default, unbiased) or ``"balanced"``
            (greedy load balancing).  Requires ``shards``.
        salt: partition-map salt for the hash partitioner.  Requires
            ``shards``.
        window: when given, additionally wrap in the sliding-window
            engine (:class:`repro.window.engine.WindowedEstimator`):
            only the last ``window`` ingested edges count.  Composes
            with sharding — the window wraps the sharded engine, never
            the other way around.
        window_time: time window — edges expire ``window_time``
            timestamp units after arrival; elements must then be
            :class:`~repro.types.TimedEdge`.  Combines with ``window``
            (an edge leaves at whichever bound it hits first).
        window_strict: raise on deletions of edges that are not live in
            the window instead of dropping them.  Requires ``window``
            or ``window_time``.
        durable_dir: when given, the session is **durable**: every
            ingested element is appended to a write-ahead log in this
            directory *before* the estimator processes it, and
            :meth:`Session.checkpoint` writes recoverable snapshots
            there.  An empty directory starts a new durable session
            (the final spec — shard/window wrapping included — is
            recorded in its ``meta.json``); a directory with existing
            state is **recovered** first: latest snapshot + WAL-tail
            replay, bit-identical to never having crashed (see
            ``docs/persistence.md``).  Durable sessions want pinned
            seeds — recovery of a snapshot-free estimator replays the
            log through a freshly built one.
        wal_format: payload format for **new** WAL segments of a
            durable session (1 = JSON, 2 = packed; default
            :data:`~repro.store.wal.DEFAULT_WAL_FORMAT`).  Existing
            segments keep the format in their header regardless;
            requires ``durable_dir``.
        overrides: spec parameter overrides, applied to the (inner)
            spec before any shard/window wrapping (ignored-with-error
            for instances — wrap specs, not objects, to reconfigure).

    Raises:
        SpecError: on unknown estimators/parameters, when overrides or
            sharding/windowing options are passed alongside an
            instance, when the spec's registration opts out of
            sharding, or when a spec disagrees with the one recorded
            in ``durable_dir``.
        StoreError: when ``durable_dir`` holds unusable on-disk state
            (foreign files, a gap in the WAL's offset coverage).

    Unsharded sessions drive the estimator directly:

    >>> from repro.types import insertion
    >>> with open_session("exact") as session:
    ...     _ = session.ingest([insertion("u1", "v1"), insertion("u1", "v2"),
    ...                         insertion("u2", "v1"), insertion("u2", "v2")])
    ...     session.estimate
    1.0

    Sharded sessions fan ingestion out and correct the merge (left
    vertices 0 and 2 collide under the default salt at ``shards=2``):

    >>> with open_session("exact", shards=2) as session:
    ...     _ = session.ingest([insertion(0, "v1"), insertion(0, "v2"),
    ...                         insertion(2, "v1"), insertion(2, "v2")])
    ...     session.estimate
    2.0

    Windowed sessions count only the most recent edges — here the
    butterfly's first edge has expired by the time the fourth arrives:

    >>> with open_session("exact", window=3) as session:
    ...     _ = session.ingest([insertion("u1", "v1"), insertion("u1", "v2"),
    ...                         insertion("u2", "v1"), insertion("u2", "v2")])
    ...     session.estimate
    0.0

    Durable sessions log every element ahead of processing; reopening
    the directory recovers the exact state (and element count):

    >>> import tempfile
    >>> durable_dir = tempfile.mkdtemp()
    >>> with open_session("exact", durable_dir=durable_dir) as session:
    ...     _ = session.ingest([insertion("u1", "v1"), insertion("u1", "v2"),
    ...                         insertion("u2", "v1"), insertion("u2", "v2")])
    >>> with open_session(durable_dir=durable_dir) as session:
    ...     session.elements, session.estimate
    (4, 1.0)
    """
    options = {"backend": backend, "partitioner": partitioner, "salt": salt}
    options = {
        key: value for key, value in options.items() if value is not None
    }
    if shards is None and options:
        raise SpecError(
            f"{'/'.join(sorted(options))} only applies to sharded "
            "sessions; pass shards=K alongside it"
        )
    if wal_format is not None and durable_dir is None:
        raise SpecError(
            "wal_format only applies to durable sessions; pass "
            "durable_dir= alongside it"
        )
    sharding = {"shards": shards, **options} if shards is not None else {}
    windowing: Dict[str, Any] = {}
    if window is not None:
        windowing["window"] = window
    if window_time is not None:
        windowing["window_time"] = window_time
    if window_strict is not None:
        if not windowing:
            raise SpecError(
                "window_strict only applies to windowed sessions; pass "
                "window=N and/or window_time=T alongside it"
            )
        windowing["strict"] = window_strict
    if isinstance(estimator, ButterflyEstimator):
        if overrides or sharding or windowing:
            raise SpecError(
                "parameter overrides and sharding/windowing options only "
                "apply when opening from a spec, not an instance "
                "(got "
                f"{sorted(overrides) + sorted(sharding) + sorted(windowing)})"
            )
        if durable_dir is not None:
            raise SpecError(
                "durable sessions need a spec (recovery rebuilds the "
                "estimator from the registry), not an instance"
            )
        registration = registration_for_instance(estimator)
        spec = EstimatorSpec(registration.name) if registration else None
        return Session(estimator, spec=spec)
    if estimator is None:
        if durable_dir is None:
            raise SpecError(
                "open_session needs an estimator spec (or the "
                "durable_dir= of an existing durable session)"
            )
        if overrides or sharding or windowing:
            raise SpecError(
                "reopening a durable session without a spec takes its "
                "whole configuration from the stored one; pass the "
                "spec explicitly to combine it with other options"
            )
        spec = None
    else:
        spec = parse_spec(estimator)
        if overrides:
            spec = spec.with_overrides(**overrides)
        if sharding:
            spec = EstimatorSpec(
                "sharded", {"inner": spec.to_string(), **sharding}
            )
        if windowing:
            spec = EstimatorSpec(
                "windowed", {"inner": spec.to_string(), **windowing}
            )
    if durable_dir is not None:
        return _open_durable(spec, durable_dir, wal_format)
    built = build_estimator(spec)
    return Session(built, spec=spec)


def _open_durable(
    spec: Optional[EstimatorSpec],
    durable_dir: Union[str, os.PathLike],
    wal_format: Optional[int] = None,
) -> Session:
    """Start or recover the durable session living in ``durable_dir``."""
    store = DurableStore(durable_dir, wal_format=wal_format)
    try:
        if not store.has_state:
            if spec is None:
                raise SpecError(
                    f"durable directory {os.fspath(durable_dir)!r} holds "
                    "no session yet; pass an estimator spec to start one"
                )
            built = build_estimator(spec)
            store.initialize(spec.to_string())
            session = Session(built, spec=spec)
            session._store = store
            return session
        recovered = store.recover()
        stored = parse_spec(recovered.spec)
        if spec is not None and spec.to_string() != stored.to_string():
            raise SpecError(
                f"durable directory {os.fspath(durable_dir)!r} was "
                f"opened for spec {stored.to_string()!r}; refusing to "
                f"continue it as {spec.to_string()!r}"
            )
        if recovered.snapshot is not None:
            session = restore_session(recovered.snapshot)
        else:
            session = Session(build_estimator(stored), spec=stored)
        if recovered.tail:
            session.ingest(recovered.tail)
        if session.elements != recovered.offset:
            raise StoreError(
                f"recovery reconstructed {session.elements} elements "
                f"but the log covers {recovered.offset}; snapshot and "
                "WAL disagree"
            )
        session._store = store
        return session
    except BaseException:
        store.close()
        raise


def restore_session(
    snapshot: Union[Mapping[str, Any], str, os.PathLike],
) -> Session:
    """Rebuild a session from :meth:`Session.snapshot` output or a file.

    Continuing the restored session is bit-identical to the original:
    the estimator state (including RNG state and, for PARABACUS, the
    partially buffered mini-batch) round-trips exactly.

    Raises:
        EstimatorError: malformed snapshot, wrong format version, or an
            estimator that cannot be restored.
    """
    if not isinstance(snapshot, Mapping):
        try:
            with open(snapshot, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except json.JSONDecodeError as exc:
            raise EstimatorError(
                f"malformed session snapshot file: {exc}"
            ) from exc
    if not isinstance(snapshot, Mapping):
        raise EstimatorError("session snapshot must be a JSON object")
    version = snapshot.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise EstimatorError(
            f"unsupported session snapshot version: {version!r} "
            f"(expected {SNAPSHOT_FORMAT_VERSION})"
        )
    try:
        registration = get_registration(snapshot["estimator"])
        estimator = registration.restore(snapshot["state"])
        spec_data = snapshot.get("spec")
        counters = snapshot.get("session", {})
        elements = int(counters.get("elements", 0))
        seconds = float(counters.get("processing_seconds", 0.0))
    except (KeyError, TypeError, ValueError) as exc:
        raise EstimatorError(
            f"session snapshot is missing or corrupts fields: {exc}"
        ) from exc
    spec = EstimatorSpec.from_dict(spec_data) if spec_data else None
    session = Session(estimator, spec=spec)
    session._elements = elements
    session._processing_seconds = seconds
    return session
