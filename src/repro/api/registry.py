"""The estimator registry: specs in, configured estimators out.

Every estimator the library ships registers itself here under a short
stable name (``"abacus"``, ``"parabacus"``, ...) together with its
declared, typed parameters.  Consumers — the CLI, the experiment
harness, benchmarks, examples, and user code — describe *which*
estimator they want with an :class:`EstimatorSpec` and let
:func:`build_estimator` do the construction and validation, instead of
hand-wiring constructors.

A spec has three equivalent forms that round-trip losslessly:

* **string** — ``"abacus:budget=1000,seed=42"`` (grammar below),
* **dict** — ``{"name": "abacus", "params": {"budget": 1000, "seed": 42}}``,
* **object** — ``EstimatorSpec("abacus", {"budget": 1000, "seed": 42})``.

Spec-string grammar::

    spec   := name [ ":" param ("," param)* ]
    param  := key "=" value
    value  := int | float | "true" | "false" | string | "[" raw "]"

Keys must be declared by the registration; unknown keys and
type-incompatible values raise :class:`~repro.errors.SpecError` at
build time, not deep inside a constructor.

A bracketed value is taken verbatim (brackets nest), which is how a
spec embeds another spec — the sharded engine's ``inner`` parameter::

    sharded:inner=[abacus:budget=1000,seed=7],shards=4

``to_string`` quotes automatically, so every spec round-trips — except
string values with *unbalanced* brackets, which the grammar cannot
express; ``to_string`` raises for those (the dict/JSON forms carry
them fine).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Tuple,
    Type,
    Union,
)

from repro.core.base import ButterflyEstimator
from repro.errors import SpecError

__all__ = [
    "EstimatorSpec",
    "Param",
    "Registration",
    "build_estimator",
    "describe_registry",
    "get_registration",
    "parse_spec",
    "register_estimator",
    "registered_estimators",
    "registration_for_instance",
]

#: Parameter types the spec grammar can express.
_SCALAR_TYPES = (int, float, bool, str)

SpecLike = Union["EstimatorSpec", str, Mapping[str, Any]]


@dataclass(frozen=True)
class Param:
    """One declared, validated estimator parameter.

    Args:
        name: the parameter keyword (matches the factory signature).
        type: one of ``int``, ``float``, ``bool``, ``str``.
        default: value used when the spec omits the parameter; ``None``
            means "let the factory decide" and is passed through.
        doc: one-line description shown by :func:`describe_registry`.
    """

    name: str
    type: type
    default: Any = None
    doc: str = ""

    def coerce(self, value: Any) -> Any:
        """Validate ``value`` against the declared type, coercing where
        the conversion is lossless (int -> float, spec-string scalars).
        """
        if value is None:
            return None
        if (
            self.type is float
            and isinstance(value, int)
            and not isinstance(value, bool)
        ):
            return float(value)
        if self.type is bool:
            if isinstance(value, bool):
                return value
            if isinstance(value, str) and value.lower() in ("true", "false"):
                return value.lower() == "true"
            raise SpecError(
                f"parameter {self.name!r} expects a bool, got {value!r}"
            )
        if isinstance(value, self.type) and not (
            self.type is int and isinstance(value, bool)
        ):
            return value
        if isinstance(value, str):
            try:
                return self.type(value)
            except (TypeError, ValueError):
                pass
        raise SpecError(
            f"parameter {self.name!r} expects {self.type.__name__}, "
            f"got {value!r}"
        )


@dataclass(frozen=True)
class EstimatorSpec:
    """A named estimator plus its construction parameters.

    Immutable and hashable-by-value is deliberately *not* promised
    (params is a plain dict); use :meth:`to_string` when a canonical
    key is needed.

    >>> spec = EstimatorSpec.from_string("abacus:seed=42,budget=1000")
    >>> spec.to_string()                    # canonical: sorted params
    'abacus:budget=1000,seed=42'
    >>> spec.with_overrides(budget=500).params["budget"]
    500
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.strip().lower())
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------
    # Round-tripping
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        """Canonical spec string: sorted params, ``name:k=v,...``."""
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{key}={_render_value(self.params[key])}"
            for key in sorted(self.params)
        )
        return f"{self.name}:{rendered}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form: ``{"name": ..., "params": {...}}``."""
        return {"name": self.name, "params": dict(self.params)}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EstimatorSpec":
        if "name" not in data:
            raise SpecError(
                f"spec dict needs a 'name' key, got {dict(data)!r}"
            )
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise SpecError(f"spec 'params' must be a mapping, got {params!r}")
        extra = set(data) - {"name", "params"}
        if extra:
            raise SpecError(
                f"unexpected spec keys {sorted(extra)}; "
                "use {'name': ..., 'params': {...}}"
            )
        return cls(str(data["name"]), dict(params))

    @classmethod
    def from_string(cls, text: str) -> "EstimatorSpec":
        """Parse the ``name:key=value,key=value`` grammar.

        Values wrapped in ``[...]`` are taken verbatim (commas and
        colons inside them do not split), so nested specs round-trip:

        >>> spec = EstimatorSpec.from_string(
        ...     "sharded:inner=[abacus:budget=100,seed=1],shards=2")
        >>> spec.params["inner"]
        'abacus:budget=100,seed=1'
        >>> EstimatorSpec.from_string(spec.to_string()) == spec
        True
        """
        text = text.strip()
        if not text:
            raise SpecError("empty estimator spec")
        name, sep, rest = text.partition(":")
        name = name.strip()
        if not name:
            raise SpecError(f"estimator spec {text!r} has no name")
        params: Dict[str, Any] = {}
        if sep and rest.strip():
            for item in _split_params(rest, text):
                item = item.strip()
                if not item:
                    continue
                key, eq, raw = item.partition("=")
                key = key.strip()
                if not eq or not key:
                    raise SpecError(
                        f"malformed parameter {item!r} in spec {text!r}; "
                        "expected key=value"
                    )
                if key in params:
                    raise SpecError(
                        f"duplicate parameter {key!r} in spec {text!r}"
                    )
                raw = raw.strip()
                if _is_bracket_wrapped(raw):
                    params[key] = raw[1:-1]
                else:
                    params[key] = _parse_scalar(raw)
        return cls(name, params)

    def with_overrides(self, **overrides: Any) -> "EstimatorSpec":
        """A copy with ``overrides`` merged over this spec's params."""
        merged = dict(self.params)
        merged.update(overrides)
        return EstimatorSpec(self.name, merged)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_string()


def _parse_scalar(raw: str) -> Any:
    """Spec-string value parsing: int, float, bool, else string."""
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _is_bracket_wrapped(raw: str) -> bool:
    """True when the outer ``[``/``]`` of ``raw`` are a matching pair.

    ``[a]mid[b]`` starts with ``[`` and ends with ``]`` but is *not*
    wrapped — its leading bracket closes mid-string — so stripping the
    outer characters would corrupt the value.
    """
    if len(raw) < 2 or raw[0] != "[" or raw[-1] != "]":
        return False
    depth = 0
    for index, char in enumerate(raw):
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
            if depth == 0 and index != len(raw) - 1:
                return False
    return depth == 0


def _split_params(rest: str, text: str) -> list:
    """Split the parameter section on commas outside ``[...]`` quoting."""
    items = []
    depth = 0
    current = []
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
            if depth < 0:
                raise SpecError(f"unbalanced ']' in spec {text!r}")
        if char == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise SpecError(f"unbalanced '[' in spec {text!r}")
    items.append("".join(current))
    return items


def _brackets_balanced(value: str) -> bool:
    depth = 0
    for char in value:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


def _render_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str) and (
        any(c in value for c in ":,[]=") or _parse_scalar(value) != value
    ):
        # Bracket-quote so from_string re-parses the value verbatim —
        # both for grammar characters and for scalar-looking strings
        # ("5", "true") that would otherwise change type on re-parse.
        # Unbalanced brackets cannot be expressed in the grammar at
        # all — refuse rather than emit a string that fails to parse.
        if not _brackets_balanced(value):
            raise SpecError(
                f"cannot render {value!r} in the spec-string grammar "
                "(unbalanced brackets); use the dict or JSON spec form"
            )
        return f"[{value}]"
    return str(value)


def parse_spec(spec: SpecLike) -> EstimatorSpec:
    """Normalise any accepted spec form into an :class:`EstimatorSpec`.

    Accepts an existing spec (returned as-is), a spec string, a spec
    dict (``{"name": ..., "params": {...}}``), or a JSON string of that
    dict shape.

    >>> parse_spec({"name": "abacus", "params": {"budget": 64}}).to_string()
    'abacus:budget=64'
    >>> parse_spec("exact").name
    'exact'
    """
    if isinstance(spec, EstimatorSpec):
        return spec
    if isinstance(spec, Mapping):
        return EstimatorSpec.from_dict(spec)
    if isinstance(spec, str):
        stripped = spec.strip()
        if stripped.startswith("{"):
            try:
                data = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise SpecError(f"malformed JSON spec {spec!r}") from exc
            return EstimatorSpec.from_dict(data)
        return EstimatorSpec.from_string(spec)
    raise SpecError(
        f"cannot parse an estimator spec from {type(spec).__name__}: {spec!r}"
    )


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Registration:
    """One registry entry: a named factory plus declared parameters."""

    name: str
    factory: Callable[..., ButterflyEstimator]
    params: Tuple[Param, ...]
    description: str
    cls: Optional[Type[ButterflyEstimator]]
    aliases: Tuple[str, ...]

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    @property
    def supports_snapshot(self) -> bool:
        """Whether instances can round-trip through the snapshot API."""
        return self.cls is not None and hasattr(self.cls, "from_state_dict")

    @property
    def supports_batch(self) -> bool:
        """Whether instances implement a real ``process_batch`` fast path.

        Every estimator accepts ``process_batch`` (the base class loops),
        but only classes that opt in via
        :attr:`~repro.core.base.ButterflyEstimator.supports_batch` make
        chunked ingestion worth routing through it — and are held to the
        batched-vs-per-element equivalence contract by the conformance
        suite.
        """
        return self.cls is not None and bool(
            getattr(self.cls, "supports_batch", False)
        )

    @property
    def supports_sharding(self) -> bool:
        """Whether instances may run as shards of the sharded engine.

        Mirrors :attr:`~repro.core.base.ButterflyEstimator
        .supports_sharding`: true for every estimator whose semantics
        survive a left-vertex partitioned substream (all of them except
        window-fitting baselines), false for opt-outs and for the
        sharded engine itself (no nesting).
        :class:`repro.shard.engine.ShardedEstimator` refuses inner
        specs whose registration has this false.
        """
        return self.cls is not None and bool(
            getattr(self.cls, "supports_sharding", False)
        )

    @property
    def supports_windowing(self) -> bool:
        """Whether instances may be wrapped by the sliding-window engine.

        Mirrors :attr:`~repro.core.base.ButterflyEstimator
        .supports_deletions`: the window engine works by synthesizing
        expiry deletions, so an insert-only inner (FLEET, CAS, sGrapp)
        would silently drop them and report infinite-window counts.
        :class:`repro.window.engine.WindowedEstimator` refuses inner
        specs whose registration has this false.
        """
        return self.cls is not None and bool(
            getattr(self.cls, "supports_deletions", False)
        )

    def validate(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Type-check ``params`` and fill declared defaults.

        Returns the keyword dict to call :attr:`factory` with; ``None``
        defaults are dropped so the factory's own defaults apply.
        """
        declared = {p.name: p for p in self.params}
        unknown = set(params) - set(declared)
        if unknown:
            raise SpecError(
                f"estimator {self.name!r} does not accept parameter(s) "
                f"{sorted(unknown)}; declared: {sorted(declared) or 'none'}"
            )
        validated: Dict[str, Any] = {}
        for param in self.params:
            if param.name in params:
                value = param.coerce(params[param.name])
            else:
                value = param.default
            if value is not None:
                validated[param.name] = value
        return validated

    def restore(self, state: Mapping[str, Any]) -> ButterflyEstimator:
        """Rebuild an instance from a ``state_to_dict`` payload."""
        if not self.supports_snapshot:
            raise SpecError(
                f"estimator {self.name!r} does not support snapshot/restore"
            )
        restore = self.cls.from_state_dict  # type: ignore[union-attr]
        return restore(dict(state))


_REGISTRY: Dict[str, Registration] = {}
_ALIASES: Dict[str, str] = {}


def register_estimator(
    name: str,
    *,
    params: Tuple[Param, ...] = (),
    description: str = "",
    cls: Optional[Type[ButterflyEstimator]] = None,
    aliases: Tuple[str, ...] = (),
) -> Callable[
    [Callable[..., ButterflyEstimator]], Callable[..., ButterflyEstimator]
]:
    """Class decorator/registrar for estimator factories.

    Apply to a factory callable that accepts the declared parameters as
    keywords and returns a ready :class:`ButterflyEstimator`::

        @register_estimator("abacus", params=(...), cls=Abacus)
        def _build_abacus(**params):
            return Abacus(**params)

    Args:
        name: canonical registry name (lower-cased).
        params: declared :class:`Param` tuple; specs may only use these.
        description: one-liner for ``describe_registry`` and the CLI.
        cls: the estimator class, enabling reverse lookup of instances
            and snapshot restore via ``cls.from_state_dict``.
        aliases: additional accepted spec names.
    """
    key = name.strip().lower()

    def decorator(
        factory: Callable[..., ButterflyEstimator]
    ) -> Callable[..., ButterflyEstimator]:
        if key in _REGISTRY:
            raise SpecError(f"estimator {key!r} is already registered")
        registration = Registration(
            name=key,
            factory=factory,
            params=tuple(params),
            description=description,
            cls=cls,
            aliases=tuple(a.strip().lower() for a in aliases),
        )
        for param in registration.params:
            if param.type not in _SCALAR_TYPES:
                raise SpecError(
                    f"parameter {param.name!r} of {key!r} declares "
                    f"unsupported type {param.type!r}"
                )
        _REGISTRY[key] = registration
        for alias in registration.aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise SpecError(
                    f"alias {alias!r} collides with a registration"
                )
            _ALIASES[alias] = key
        return factory

    return decorator


def get_registration(name: str) -> Registration:
    """Look up a registration by name or alias.

    Raises:
        SpecError: for unknown names, listing what is available.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise SpecError(
            f"unknown estimator {name!r}; registered: "
            f"{', '.join(registered_estimators())}"
        ) from None


def registered_estimators() -> Tuple[str, ...]:
    """All registered estimator names, sorted."""
    return tuple(sorted(_REGISTRY))


def registration_for_instance(
    estimator: ButterflyEstimator,
) -> Optional[Registration]:
    """Reverse lookup: the registration whose class built ``estimator``.

    Exact type match only — a subclass is a different estimator as far
    as snapshots are concerned.  Returns ``None`` when the instance's
    type was never registered.
    """
    for registration in _REGISTRY.values():
        if registration.cls is type(estimator):
            return registration
    return None


def build_estimator(spec: SpecLike, **overrides: Any) -> ButterflyEstimator:
    """Construct a registered estimator from any spec form.

    Args:
        spec: an :class:`EstimatorSpec`, spec string, or spec dict.
        overrides: parameter overrides merged over the spec's params
            (a ``None`` override removes/uses-default for that key).

    Raises:
        SpecError: unknown estimator, undeclared parameter, or a value
            that fails type validation.

    >>> estimator = build_estimator("abacus:budget=100,seed=1")
    >>> type(estimator).__name__, estimator.budget
    ('Abacus', 100)
    """
    parsed = parse_spec(spec)
    registration = get_registration(parsed.name)
    params = dict(parsed.params)
    for key, value in overrides.items():
        if value is None:
            params.pop(key, None)
        else:
            params[key] = value
    return registration.factory(**registration.validate(params))


def describe_registry() -> str:
    """Human-readable table of registrations (CLI ``estimators``)."""
    lines = ["Registered estimators", "====================="]
    for name in registered_estimators():
        registration = _REGISTRY[name]
        lines.append("")
        title = name
        if registration.aliases:
            title += f" (aliases: {', '.join(registration.aliases)})"
        lines.append(title)
        if registration.description:
            lines.append(f"  {registration.description}")
        if registration.supports_snapshot:
            lines.append("  snapshot/restore: yes")
        if registration.supports_sharding:
            lines.append("  sharding: yes")
        if registration.supports_windowing:
            lines.append("  windowing: yes")
        for param in registration.params:
            default = (
                "" if param.default is None else f" (default {param.default})"
            )
            doc = f" — {param.doc}" if param.doc else ""
            lines.append(
                f"  {param.name}: {param.type.__name__}{default}{doc}"
            )
        if not registration.params:
            lines.append("  (no parameters)")
    return "\n".join(lines)
