"""Registrations for every estimator the library ships.

Importing this module (which :mod:`repro.api` does eagerly) populates
the registry with every public estimator: the paper's ABACUS and
PARABACUS, the ensemble combiner, the FLEET / CAS / sGrapp insert-only
baselines, the per-edge support variant, and the exact streaming
oracle.

The factories exist so that registry-level parameter names can stay
stable even if a constructor signature evolves, and to encode the few
spec-level conveniences (e.g. ``sgrapp`` accepting ``budget`` as an
alias for its window, matching the experiment harness's convention).
"""

from __future__ import annotations

from typing import Any

from repro.api.registry import Param, register_estimator
from repro.baselines.cas import CoAffiliationSampling
from repro.baselines.fleet import Fleet
from repro.baselines.sgrapp import SGrapp
from repro.core.abacus import Abacus
from repro.core.base import ButterflyEstimator
from repro.core.ensemble import EnsembleEstimator
from repro.core.exact import ExactStreamingCounter
from repro.core.parabacus import Parabacus
from repro.core.support import AbacusSupport

#: Default memory budget when a spec names a sampled estimator without
#: sizing it; matches the mid-range budgets of the paper's figures.
DEFAULT_BUDGET = 1000

_BUDGET = Param("budget", int, DEFAULT_BUDGET, doc="memory budget k in edges")
_SEED = Param("seed", int, doc="RNG seed for reproducible sampling")


@register_estimator(
    "abacus",
    params=(
        _BUDGET,
        _SEED,
        Param("cheapest_side", bool, True, doc="side-selection heuristic"),
        Param("naive_increment", bool, False, doc="ablation: ignore cb/cg"),
    ),
    description="ABACUS: unbiased fully dynamic butterfly estimation",
    cls=Abacus,
)
def _build_abacus(**params: Any) -> ButterflyEstimator:
    return Abacus(**params)


@register_estimator(
    "parabacus",
    params=(
        _BUDGET,
        _SEED,
        Param("batch_size", int, 500, doc="mini-batch size M"),
        Param("num_threads", int, 4, doc="counting-phase worker count p"),
        Param("use_thread_pool", bool, False, doc="real ThreadPoolExecutor"),
        Param("cheapest_side", bool, True, doc="side-selection heuristic"),
    ),
    description="PARABACUS: mini-batch parallel ABACUS (bit-identical)",
    cls=Parabacus,
)
def _build_parabacus(**params: Any) -> ButterflyEstimator:
    return Parabacus(**params)


@register_estimator(
    "ensemble",
    params=(
        Param("replicas", int, 4, doc="independent Abacus replicas"),
        _BUDGET,
        _SEED,
        Param("combiner", str, "mean", doc="mean | median | median_of_means"),
        Param("groups", int, doc="median-of-means group count"),
        Param(
            "share_budget",
            bool,
            False,
            doc="split the budget across replicas",
        ),
    ),
    description="Ensemble of independent ABACUS replicas (variance reduction)",
    cls=EnsembleEstimator,
    aliases=("ensemble_abacus",),
)
def _build_ensemble(**params: Any) -> ButterflyEstimator:
    return EnsembleEstimator(**params)


@register_estimator(
    "fleet",
    params=(
        _BUDGET,
        _SEED,
        Param("gamma", float, 0.75, doc="reservoir resizing parameter"),
    ),
    description="FLEET3 adaptive-sampling baseline (insert-only)",
    cls=Fleet,
)
def _build_fleet(**params: Any) -> ButterflyEstimator:
    return Fleet(**params)


@register_estimator(
    "cas",
    params=(
        _BUDGET,
        _SEED,
        Param(
            "sketch_fraction", float, 0.33, doc="budget share for the sketch"
        ),
        Param("sketch_depth", int, 5, doc="AMS sketch rows"),
    ),
    description="CAS-R reservoir + AMS sketch baseline (insert-only)",
    cls=CoAffiliationSampling,
)
def _build_cas(**params: Any) -> ButterflyEstimator:
    return CoAffiliationSampling(**params)


@register_estimator(
    "sgrapp",
    params=(
        Param("window", int, doc="insertions per window (working set)"),
        Param("budget", int, doc="alias for window, harness convention"),
        Param("learning_windows", int, 4, doc="windows used to fit the BDPL"),
    ),
    description="sGrapp window/BDPL baseline (insert-only)",
    cls=SGrapp,
)
def _build_sgrapp(**params: Any) -> ButterflyEstimator:
    budget = params.pop("budget", None)
    if "window" not in params:
        params["window"] = max(1, budget) if budget is not None else 2000
    return SGrapp(**params)


@register_estimator(
    "abacus_support",
    params=(_BUDGET, _SEED),
    description="ABACUS with per-edge butterfly support estimates",
    cls=AbacusSupport,
    aliases=("support",),
)
def _build_abacus_support(**params: Any) -> ButterflyEstimator:
    return AbacusSupport(**params)


@register_estimator(
    "exact",
    description="Exact streaming oracle (stores the whole graph)",
    cls=ExactStreamingCounter,
)
def _build_exact() -> ButterflyEstimator:
    return ExactStreamingCounter()
