"""Public estimator API: registry specs plus the session facade.

This package is the single public entry point for constructing and
driving estimators::

    from repro.api import open_session, parse_spec, build_estimator

    spec = parse_spec("abacus:budget=1000,seed=7")
    estimator = build_estimator(spec)          # bare estimator, or ...
    with open_session(spec) as session:        # ... the full facade
        session.ingest(stream)
        snapshot = session.snapshot()

Importing :mod:`repro.api` registers the built-in estimators
(``abacus``, ``parabacus``, ``ensemble``, ``fleet``, ``cas``,
``sgrapp``, ``abacus_support``, ``exact``) plus the sharded ingestion
engine (``sharded`` — see :mod:`repro.shard` and the ``shards=`` /
``backend=`` options of :func:`open_session`) and the sliding-window
engine (``windowed`` — see :mod:`repro.window` and the ``window=`` /
``window_time=`` options of :func:`open_session`).
"""

from repro.api.registry import (
    EstimatorSpec,
    Param,
    Registration,
    build_estimator,
    describe_registry,
    get_registration,
    parse_spec,
    register_estimator,
    registered_estimators,
    registration_for_instance,
)
from repro.api import builtin as _builtin  # noqa: F401  (registers estimators)
from repro.api.builtin import DEFAULT_BUDGET
from repro.api.session import (
    DEFAULT_INGEST_BATCH,
    SNAPSHOT_FORMAT_VERSION,
    Session,
    SessionMetrics,
    open_session,
    restore_session,
)

# Imported last: repro.shard registers the "sharded" engine and
# repro.window the "windowed" engine (they pull the registry from this
# partially-initialised package, which is safe because the registry
# submodule above is already fully loaded).
from repro.shard import ShardedEstimator
from repro.window import WindowedEstimator

__all__ = [
    "DEFAULT_BUDGET",
    "DEFAULT_INGEST_BATCH",
    "EstimatorSpec",
    "Param",
    "Registration",
    "SNAPSHOT_FORMAT_VERSION",
    "Session",
    "SessionMetrics",
    "ShardedEstimator",
    "WindowedEstimator",
    "build_estimator",
    "describe_registry",
    "get_registration",
    "open_session",
    "parse_spec",
    "register_estimator",
    "registered_estimators",
    "registration_for_instance",
    "restore_session",
]
