"""Generate ``docs/estimators.md`` from the live estimator registry.

The estimator reference is *derived*, never hand-written: this module
walks every :class:`~repro.api.registry.Registration` — name, aliases,
description, implementing class, capability flags, declared parameters
with types/defaults/docs — and renders deterministic Markdown.  CI runs
the emitter in ``--check`` mode (and ``tests/api/test_docgen.py`` does
the same inside the test suite), so the committed file can never drift
from the code: registering, renaming, or re-parameterising an estimator
without regenerating the doc fails the build.

Usage::

    python -m repro.api.docgen                 # print to stdout
    python -m repro.api.docgen --write [PATH]  # (re)write the doc
    python -m repro.api.docgen --check [PATH]  # exit 1 when stale

``PATH`` defaults to ``docs/estimators.md`` relative to the current
directory (run from the repository root).

>>> render_markdown().startswith("<!-- GENERATED FILE")
True
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api.registry import (
    Registration,
    get_registration,
    registered_estimators,
)

__all__ = ["DEFAULT_PATH", "main", "render_markdown"]

#: Where the generated reference lives, relative to the repo root.
DEFAULT_PATH = "docs/estimators.md"

_HEADER = """\
<!-- GENERATED FILE — do not edit by hand.
     Regenerate with:  PYTHONPATH=src python -m repro.api.docgen --write
     CI enforces freshness via --check. -->

# Estimator reference

Every estimator the registry knows, with its spec parameters and
capability flags.  Specs take three equivalent forms (string, dict,
`EstimatorSpec`); the string grammar is
`name[:key=value[,key=value]*]` — see `docs/architecture.md` and the
README for the surrounding API.
"""

_MATRIX_HEADER = """\
## Capability matrix

What each estimator supports across the session facilities.  The
**durability** column is what a durable session
(`open_session(..., durable_dir=...)`, `docs/persistence.md`) can do
with it: *checkpoint + replay* needs the snapshot protocol (recovery
restores the latest checkpoint and replays only the WAL tail);
*replay only* means the estimator still runs durably, but recovery
always replays the full write-ahead log through a freshly built
instance — and `Session.checkpoint()` refuses.
"""


def _durability(registration: Registration) -> str:
    """The durability column: what ``durable_dir=`` can do here."""
    if registration.supports_snapshot:
        return "checkpoint + replay"
    return "replay only"


def _render_matrix() -> List[str]:
    """The per-estimator capability/durability table."""
    lines = [
        _MATRIX_HEADER,
        "| estimator | snapshot | batch | sharding "
        "| windowing | durability |",
        "|-----------|----------|-------|----------"
        "|-----------|------------|",
    ]
    for name in registered_estimators():
        registration = get_registration(name)
        flags = [
            "✓" if enabled else "—"
            for enabled in (
                registration.supports_snapshot,
                registration.supports_batch,
                registration.supports_sharding,
                registration.supports_windowing,
            )
        ]
        lines.append(
            f"| `{name}` | " + " | ".join(flags)
            + f" | {_durability(registration)} |"
        )
    lines.append("")
    return lines


def _capabilities(registration: Registration) -> str:
    flags = []
    if registration.supports_snapshot:
        flags.append("snapshot/restore")
    if registration.supports_batch:
        flags.append("batch fast path")
    if registration.supports_sharding:
        flags.append("sharding")
    if registration.supports_windowing:
        flags.append("windowing")
    return ", ".join(flags) if flags else "—"


def _render_registration(registration: Registration) -> List[str]:
    lines = [f"## `{registration.name}`", ""]
    if registration.description:
        lines += [registration.description, ""]
    if registration.aliases:
        rendered = ", ".join(f"`{alias}`" for alias in registration.aliases)
        lines.append(f"- **Aliases:** {rendered}")
    if registration.cls is not None:
        module = registration.cls.__module__
        lines.append(f"- **Class:** `{module}.{registration.cls.__name__}`")
    lines.append(f"- **Capabilities:** {_capabilities(registration)}")
    lines.append("")
    if registration.params:
        lines += [
            "| parameter | type | default | description |",
            "|-----------|------|---------|-------------|",
        ]
        for param in registration.params:
            default = (
                "—" if param.default is None else f"`{param.default!r}`"
            )
            doc = param.doc or ""
            lines.append(
                f"| `{param.name}` | `{param.type.__name__}` "
                f"| {default} | {doc} |"
            )
    else:
        lines.append("*(no parameters)*")
    lines.append("")
    return lines


def render_markdown() -> str:
    """The full reference document as a Markdown string."""
    lines = [_HEADER]
    lines += _render_matrix()
    for name in registered_estimators():
        lines += _render_registration(get_registration(name))
    return "\n".join(lines).rstrip() + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.docgen",
        description="Emit docs/estimators.md from the estimator registry.",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=DEFAULT_PATH,
        help=f"target file (default: {DEFAULT_PATH})",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--write", action="store_true", help="write the file in place"
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the file differs from fresh output",
    )
    args = parser.parse_args(argv)
    rendered = render_markdown()
    if args.write:
        with open(args.path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.path}")
        return 0
    if args.check:
        try:
            with open(args.path, "r", encoding="utf-8") as handle:
                current = handle.read()
        except OSError as exc:
            print(f"cannot read {args.path}: {exc}", file=sys.stderr)
            return 1
        if current != rendered:
            print(
                f"{args.path} is stale; regenerate with "
                "PYTHONPATH=src python -m repro.api.docgen --write",
                file=sys.stderr,
            )
            return 1
        print(f"{args.path} is up to date")
        return 0
    sys.stdout.write(rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
