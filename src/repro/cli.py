"""Command-line entry point: ``python -m repro`` or the ``repro`` script.

Subcommands map 1:1 onto the paper's tables/figures plus the extras::

    repro table2                      # dataset statistics
    repro fig3 [--trials N] [--datasets a,b]
    repro fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | fig10
    repro unbiasedness | ablation
    repro variance | ensemble | anomaly | lineage   # extensions
    repro estimators                  # the estimator registry
    repro stream --estimator SPEC     # run any spec through a session
    repro serve --estimator SPEC      # serve estimate queries over TCP
    repro serve --tenant-root DIR     # host a multi-tenant catalog
    repro tenant create --tenant-root DIR --name NAME --estimator SPEC
    repro tenant drop --tenant-root DIR --name NAME
    repro tenant list --tenant-root DIR
    repro follow --primary HOST:PORT  # replicate a primary, serve reads
    repro reshard --durable-dir DIR --shards K   # stored topology change
    repro all                         # everything, in order

``--estimator`` accepts the registry spec grammar, e.g.
``abacus:budget=1000,seed=42`` or ``parabacus:budget=2000,batch_size=500``;
``repro estimators`` lists every registered name with its parameters.
``repro stream`` additionally takes ``--shards K`` with ``--backend
{serial,thread,process}`` and ``--partitioner {hash,balanced}`` to fan
ingestion out through the sharded engine (:mod:`repro.shard`), and
``--window N`` / ``--window-time T`` to count only the most recent
edges through the sliding-window engine (:mod:`repro.window`).

``repro serve`` owns a session behind the asyncio query server of
:mod:`repro.serve` (line-delimited JSON on ``--host``/``--port``;
``docs/serving.md``) and accepts the same spec/shard/window options,
plus ``--durable-dir DIR`` for a write-ahead-logged session that
recovers its state on restart (:mod:`repro.store`,
``docs/persistence.md``).  A ``--durable-dir`` with existing state is
reopened under its stored spec when ``--estimator`` is omitted.

``repro serve --replicate-to PORT`` additionally opens a replication
port: the durable session's write-ahead log is shipped live to any
``repro follow --primary HOST:PORT --durable-dir DIR`` process, which
re-logs it locally and serves reads from its replica
(:mod:`repro.cluster`, ``docs/replication.md``).

``repro serve --tenant-root DIR`` hosts a tenant catalog
(:mod:`repro.tenancy`): requests naming a ``tenant`` (or ``stream``)
route to that tenant's durable session through per-tenant fair-share
write lanes, and ``repro tenant create|drop|list`` administers the
same catalog offline (``docs/multitenancy.md``).  Combine with
``--estimator`` to also serve a default single-tenant session;
``--replicate-to`` is refused (catalogs are primary-only).

Use ``--datasets`` with a comma-separated subset of
``movielens_like,livejournal_like,trackers_like,orkut_like`` to trim
runtime.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import describe_registry, open_session, parse_spec
from repro.errors import ReproError
from repro.experiments import extensions, figures
from repro.experiments.plotting import line_chart
from repro.experiments.runner import ExperimentContext

#: Spec used when an experiment needs an estimator and the user gave
#: no ``--estimator``.
DEFAULT_SPEC = "abacus:budget=1000,seed=42"


def _split_datasets(value: Optional[str]) -> Optional[List[str]]:
    if not value:
        return None
    return [name.strip() for name in value.split(",") if name.strip()]


def build_parser() -> argparse.ArgumentParser:
    import repro

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ABACUS/PARABACUS evaluation (ICDE 2024).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "unbiasedness",
            "ablation",
            "variance",
            "ensemble",
            "anomaly",
            "lineage",
            "estimators",
            "stream",
            "serve",
            "tenant",
            "follow",
            "reshard",
            "all",
        ],
        help="which experiment to run",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help=(
            "subcommand for 'tenant': create, drop, or list "
            "(ignored elsewhere)"
        ),
    )
    parser.add_argument(
        "--estimator",
        type=str,
        default=None,
        metavar="SPEC",
        help=(
            "estimator spec for the 'stream'/'serve' experiments, "
            f"e.g. {DEFAULT_SPEC} (see 'repro estimators'; 'serve' "
            "with an existing --durable-dir defaults to its stored "
            "spec)"
        ),
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=5,
        help="independent repetitions for accuracy experiments (paper: 10)",
    )
    parser.add_argument(
        "--datasets",
        type=str,
        default=None,
        help="comma-separated dataset subset (default: all four)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=40,
        help="PARABACUS thread count for figs 4/8",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help=(
            "shard the 'stream' experiment's ingestion across K "
            "independent estimator shards (see docs/architecture.md)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help=(
            "shard executor backend for --shards > 1 (default serial; "
            "for 'reshard' the default keeps the stored backend)"
        ),
    )
    parser.add_argument(
        "--partitioner",
        choices=["hash", "balanced"],
        default="hash",
        help="shard partitioner: stable hash or greedy load balancing",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=0,
        metavar="N",
        help=(
            "count only the last N edges of the 'stream' experiment "
            "(sliding window; see repro/window/)"
        ),
    )
    parser.add_argument(
        "--window-time",
        type=float,
        default=0.0,
        metavar="T",
        help=(
            "time window for the 'stream' experiment: edges expire T "
            "units after arrival (datasets have no native timestamps, "
            "so each element is stamped with its arrival index)"
        ),
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="additionally draw ASCII charts (fig3/fig5)",
    )
    parser.add_argument(
        "--host",
        type=str,
        default="127.0.0.1",
        help="interface for the 'serve' experiment",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=7461,
        help="TCP port for the 'serve' experiment (0 picks a free one)",
    )
    parser.add_argument(
        "--durable-dir",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "durable session directory for 'stream'/'serve'/'follow': "
            "elements are write-ahead logged and state recovers on "
            "restart (see docs/persistence.md)"
        ),
    )
    parser.add_argument(
        "--replicate-to",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "open a replication port on the 'serve' experiment (0 "
            "picks a free one): followers started with 'repro follow' "
            "receive the session's write-ahead log live (requires "
            "--durable-dir; see docs/replication.md)"
        ),
    )
    parser.add_argument(
        "--primary",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help=(
            "the primary's replication address for the 'follow' "
            "experiment (the --replicate-to port, not the serving "
            "port)"
        ),
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help=(
            "autoscale the 'serve' experiment's sharded session: "
            "split/merge shards live as per-shard load leaves the "
            "hysteresis bands (docs/resharding.md)"
        ),
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=8,
        metavar="K",
        help="upper shard bound for --autoscale (default 8)",
    )
    parser.add_argument(
        "--autoscale-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between autoscaler observations (default 2)",
    )
    parser.add_argument(
        "--tenant-root",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "tenant-catalog root for 'serve'/'tenant': every tenant "
            "lives in its own durable directory under it "
            "(docs/multitenancy.md)"
        ),
    )
    parser.add_argument(
        "--name",
        type=str,
        default=None,
        metavar="NAME",
        help="tenant name for 'tenant create'/'tenant drop'",
    )
    parser.add_argument(
        "--quota",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-tenant max_pending_writes quota for 'tenant create' "
            "(default: the catalog default)"
        ),
    )
    return parser


def _accuracy_charts(result: dict, alpha: float) -> str:
    """ASCII error-vs-k charts for a fig3/fig5 result dict."""
    blocks = []
    for dataset, info in result["results"].items():
        series = {
            method.upper(): (
                info["sample_sizes"],
                [e * 100.0 for e in errors],
            )
            for method, errors in info["errors"].items()
        }
        blocks.append(
            line_chart(
                series,
                title=(
                    f"{dataset}: relative error (%) vs k "
                    f"(alpha={alpha:.0%})"
                ),
                x_label="k",
                y_label="error %",
                y_min=0.0,
            )
        )
    return "\n\n".join(blocks)


def run_stream(
    spec_text: str,
    datasets: Optional[List[str]],
    context: Optional[ExperimentContext] = None,
    alpha: float = 0.2,
    shards: int = 1,
    backend: str = "serial",
    partitioner: str = "hash",
    window: int = 0,
    window_time: float = 0.0,
    durable_dir: Optional[str] = None,
) -> str:
    """Run one estimator spec over a dataset through the session API.

    With ``shards > 1`` the ingestion fans out through the sharded
    engine (``--shards/--backend/--partitioner``); with ``window`` /
    ``window_time`` only the most recent edges count
    (``--window/--window-time``).  Datasets carry no timestamps, so a
    time window stamps each element with its arrival index, and the
    window runs non-strict — a dataset deletion may target an edge the
    window already expired.
    """
    from repro.experiments.datasets import get_dataset
    from repro.types import TimedEdge

    ctx = context or ExperimentContext()
    dataset = (datasets or ["movielens_like"])[0]
    dataset_spec = get_dataset(dataset)
    stream = ctx.stream(dataset_spec, alpha, 0)
    truth = ctx.truth(dataset_spec, alpha, 0)
    spec = parse_spec(spec_text)
    options = (
        {"shards": shards, "backend": backend, "partitioner": partitioner}
        if shards > 1
        else {}
    )
    elements = stream
    if window > 0:
        options["window"] = window
    if window_time > 0:
        options["window_time"] = window_time
        elements = (
            TimedEdge(e.u, e.v, e.op, float(index))
            for index, e in enumerate(stream)
        )
    if durable_dir:
        options["durable_dir"] = durable_dir
    with open_session(spec, **options) as session:
        session.ingest(elements)
        session.flush()
        metrics = session.metrics
    title = f"== stream: {spec.to_string()} on {dataset} (alpha={alpha:.0%})"
    if shards > 1:
        title += f" [shards={shards}, backend={backend}]"
    if window > 0 or window_time > 0:
        bounds = [f"window={window}"] if window > 0 else []
        if window_time > 0:
            bounds.append(f"window_time={window_time:g}")
        title += f" [{', '.join(bounds)}]"
    lines = [
        title + " ==",
        f"  elements ingested : {metrics.elements:>14,}",
        f"  estimate          : {metrics.estimate:>14,.1f}",
        f"  exact count       : {truth:>14,}",
    ]
    if window > 0 or window_time > 0:
        lines[3] = f"  exact (no window) : {truth:>14,}"
    if truth and not (window > 0 or window_time > 0):
        error = abs(truth - metrics.estimate) / truth
        lines.append(f"  relative error    : {error:>14.2%}")
    lines.append(f"  memory (edges)    : {metrics.memory_edges:>14,}")
    lines.append(
        f"  throughput        : {metrics.throughput_eps:>14,.0f} elements/s"
    )
    return "\n".join(lines)


def run_tenant(
    action: Optional[str],
    tenant_root: Optional[str],
    name: Optional[str],
    spec_text: Optional[str],
    quota: Optional[int] = None,
) -> str:
    """Administer a tenant catalog offline: create, drop, or list.

    Operates directly on the catalog in ``--tenant-root`` — the same
    catalog ``repro serve --tenant-root`` hosts (stop the server first;
    the catalog is single-writer).
    """
    from repro.errors import TenancyError
    from repro.tenancy import TenantCatalog

    if action not in ("create", "drop", "list"):
        raise TenancyError(
            f"tenant needs an action: create, drop, or list "
            f"(got {action!r})"
        )
    if not tenant_root:
        raise TenancyError(
            "tenant needs --tenant-root DIR: the catalog root every "
            "tenant lives under"
        )
    with TenantCatalog(tenant_root) as catalog:
        if action == "create":
            if not name:
                raise TenancyError("tenant create needs --name NAME")
            spec = catalog.create(
                name, spec_text or DEFAULT_SPEC, quota=quota
            )
            return (
                f"created tenant {name!r} ({spec}) in {tenant_root} "
                f"[quota {catalog.quota(name)}]"
            )
        if action == "drop":
            if not name:
                raise TenancyError("tenant drop needs --name NAME")
            catalog.drop(name)
            remaining = ", ".join(catalog.names()) or "(none)"
            return f"dropped tenant {name!r}; remaining: {remaining}"
        # list
        lines = [f"== tenants in {tenant_root} =="]
        if not len(catalog):
            lines.append("  (none)")
        for tenant in catalog.names():
            bound = catalog.bound_stream(tenant)
            stream = f" [stream: {bound}]" if bound else ""
            lines.append(
                f"  {tenant:<24} {catalog.spec(tenant)} "
                f"[quota {catalog.quota(tenant)}]{stream}"
            )
        for stream, members in catalog.streams().items():
            lines.append(
                f"  stream {stream:<17} -> {', '.join(members)}"
            )
        return "\n".join(lines)


def run_serve(
    spec_text: Optional[str],
    host: str,
    port: int,
    durable_dir: Optional[str] = None,
    shards: int = 1,
    backend: str = "serial",
    partitioner: str = "hash",
    window: int = 0,
    window_time: float = 0.0,
    replicate_to: Optional[int] = None,
    autoscale: bool = False,
    max_shards: int = 8,
    autoscale_interval: float = 2.0,
    tenant_root: Optional[str] = None,
) -> int:
    """Own a session behind the asyncio query server until interrupted.

    With ``--durable-dir`` the session write-ahead logs every ingested
    element and recovers snapshot + WAL tail on restart; omitting
    ``--estimator`` then reopens an existing directory under its
    stored spec.  With ``--replicate-to PORT`` the server is a
    replication **primary**: followers connect to that port and
    receive the WAL live (``docs/replication.md``).  With
    ``--autoscale`` a sharded session splits/merges live as per-shard
    load leaves the autoscaler's hysteresis bands
    (``docs/resharding.md``).  With ``--tenant-root DIR`` the server
    additionally hosts that tenant catalog — alone (no default
    session) when ``--estimator`` and ``--durable-dir`` are omitted
    (``docs/multitenancy.md``).
    """
    import asyncio

    from repro.serve.server import EstimatorServer
    from repro.store import DurableStore

    if tenant_root is not None and replicate_to is not None:
        from repro.errors import ClusterError

        raise ClusterError(
            "--tenant-root cannot be combined with --replicate-to: "
            "tenant catalogs are primary-only and are not replicated "
            "(docs/multitenancy.md)"
        )
    if replicate_to is not None and not durable_dir:
        from repro.errors import ClusterError

        raise ClusterError(
            "--replicate-to needs --durable-dir: the write-ahead log "
            "is the replication log"
        )
    if autoscale and replicate_to is not None:
        from repro.errors import ClusterError

        raise ClusterError(
            "--autoscale cannot run on a replication primary yet: "
            "followers replay through their own fixed topology "
            "(docs/resharding.md)"
        )

    catalog = None
    if tenant_root is not None:
        from repro.tenancy import TenantCatalog

        catalog = TenantCatalog(tenant_root)
    session = None
    try:
        if catalog is None or spec_text is not None or durable_dir:
            options: dict = {}
            if shards > 1:
                options.update(
                    shards=shards,
                    backend=backend,
                    partitioner=partitioner,
                )
            if window > 0:
                options["window"] = window
            if window_time > 0:
                options["window_time"] = window_time
            if durable_dir:
                options["durable_dir"] = durable_dir
            estimator: Optional[str] = spec_text
            if estimator is None:
                reopening = (
                    durable_dir is not None
                    and DurableStore(durable_dir).has_state
                )
                if not reopening:
                    estimator = DEFAULT_SPEC
                else:
                    # The stored spec already carries any shard/window
                    # wrapping, so re-wrapping flags have nothing to
                    # apply to — refuse loudly rather than serve a
                    # configuration the user did not ask for.
                    wrapping = sorted(set(options) - {"durable_dir"})
                    if wrapping:
                        from repro.errors import SpecError

                        raise SpecError(
                            f"{'/'.join(wrapping)} cannot be combined "
                            "with reopening an existing --durable-dir "
                            "(its stored spec fixes the "
                            "configuration); pass --estimator "
                            "explicitly to assert the intended spec"
                        )
                    options = {"durable_dir": durable_dir}
            session = open_session(estimator, **options)
    except BaseException:
        if catalog is not None:
            catalog.close()
        raise
    replicating = None
    if replicate_to is not None:
        from repro.cluster import ReplicatingServer

        replicating = ReplicatingServer(
            session, host=host, port=port,
            replication_port=replicate_to,
        )
        server: EstimatorServer = replicating
    else:
        scaler = None
        if autoscale:
            from repro.errors import SpecError
            from repro.shard import Autoscaler

            if session is None or session.topology is None:
                if session is not None:
                    session.close()
                if catalog is not None:
                    catalog.close()
                raise SpecError(
                    "--autoscale needs a sharded session; pass "
                    "--shards K (or reopen a sharded --durable-dir)"
                )
            scaler = Autoscaler(max_shards=max_shards)
        server = EstimatorServer(
            session,
            host=host,
            port=port,
            autoscaler=scaler,
            autoscale_interval=autoscale_interval,
            catalog=catalog,
        )

    async def _serve() -> None:
        await server.start()
        bound_host, bound_port = server.address
        if session is not None:
            spec = session.spec.to_string() if session.spec else "?"
            recovered = (
                f"  {session.elements:,} elements recovered, estimate "
                f"{session.estimate:,.1f}\n"
            )
        else:
            spec = "(tenant catalog only)"
            recovered = ""
        durability = f" [durable: {durable_dir}]" if durable_dir else ""
        tenancy = ""
        if catalog is not None:
            tenancy = (
                f" [tenants: {len(catalog)} in {tenant_root}]"
            )
        replication = ""
        if replicating is not None:
            _, repl_port = replicating.replication_address
            replication = f" [replicating on :{repl_port}]"
        print(
            f"serving {spec} on {bound_host}:{bound_port}"
            f"{durability}{tenancy}{replication}\n"
            f"{recovered}"
            "  protocol: line-delimited JSON (docs/serving.md); "
            "stop with Ctrl-C",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def run_reshard(
    durable_dir: Optional[str],
    shards: int,
    backend: Optional[str] = None,
) -> str:
    """Reshard a durable sharded session in place and checkpoint it.

    Opens (recovers) the session living in ``--durable-dir``, replays
    its live-edge residue into a ``--shards``-way topology at the next
    partitioner epoch, and commits the cut with a checkpoint — the
    next ``repro serve --durable-dir`` then recovers straight onto the
    new topology (``docs/resharding.md``).
    """
    from repro.errors import SpecError

    if not durable_dir:
        raise SpecError(
            "reshard needs --durable-dir DIR: only a durable session "
            "outlives the process that reshards it"
        )
    if shards < 1:
        raise SpecError(f"--shards must be >= 1, got {shards}")
    with open_session(durable_dir=durable_dir) as session:
        if session.topology is None:
            raise SpecError(
                f"the session in {durable_dir!r} is unsharded; "
                "reshard applies to sessions opened with shards=K"
            )
        old = session.topology
        report = session.reshard(shards, backend=backend)
        new = session.topology
        return "\n".join([
            f"== reshard: {durable_dir} ==",
            f"  topology          : {old['shards']} -> "
            f"{new['shards']} shards (epoch {new['epoch']})",
            f"  backend           : {new['backend']}",
            f"  residue replayed  : {report.replayed_edges:>10,} edges "
            f"({report.moved_edges:,} moved)",
            f"  transition        : {report.seconds:>10.3f} s",
            f"  checkpoint offset : {session.elements:>10,}",
            f"  estimate          : {session.estimate:>10,.1f}",
        ])


def _parse_address(text: str) -> "tuple[str, int]":
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        from repro.errors import ClusterError

        raise ClusterError(
            f"--primary must look like HOST:PORT, got {text!r}"
        )
    return (host, int(port_text))


def run_follow(
    primary_text: Optional[str],
    host: str,
    port: int,
    durable_dir: Optional[str],
) -> int:
    """Replicate a primary's WAL and serve reads until interrupted.

    Bootstraps from the primary (snapshot install when the needed WAL
    records were pruned), then follows its stream live, re-logging
    every element to ``--durable-dir`` — so this process can be
    promoted, or restarted and resume where its own log ends.
    """
    import asyncio

    from repro.cluster import FollowerServer, bootstrap_follower
    from repro.errors import ClusterError

    if not primary_text:
        raise ClusterError(
            "follow needs --primary HOST:PORT (the primary's "
            "--replicate-to port)"
        )
    if not durable_dir:
        raise ClusterError(
            "follow needs --durable-dir: the follower re-logs the "
            "stream locally, which is what promotion recovers"
        )
    primary = _parse_address(primary_text)
    session = bootstrap_follower(primary, durable_dir)
    server = FollowerServer(
        session, host=host, port=port, primary=primary
    )

    async def _serve() -> None:
        await server.start()
        bound_host, bound_port = server.address
        spec = session.spec.to_string() if session.spec else "?"
        print(
            f"following {primary[0]}:{primary[1]} — serving {spec} "
            f"reads on {bound_host}:{bound_port} "
            f"[replica: {durable_dir}]\n"
            f"  {session.elements:,} elements recovered, estimate "
            f"{session.estimate:,.1f}\n"
            "  reads only; 'promote' flips this node into a primary. "
            "Stop with Ctrl-C",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def run_experiment(
    name: str,
    trials: int,
    datasets: Optional[List[str]],
    threads: int,
    context: Optional[ExperimentContext] = None,
    chart: bool = False,
    estimator_spec: Optional[str] = None,
    shards: int = 1,
    backend: str = "serial",
    partitioner: str = "hash",
    window: int = 0,
    window_time: float = 0.0,
    durable_dir: Optional[str] = None,
) -> str:
    """Execute one experiment; return its rendered report."""
    ctx = context or ExperimentContext()
    if name == "estimators":
        return describe_registry()
    if name == "stream":
        return run_stream(
            estimator_spec or DEFAULT_SPEC,
            datasets,
            context=ctx,
            shards=shards,
            backend=backend,
            partitioner=partitioner,
            window=window,
            window_time=window_time,
            durable_dir=durable_dir,
        )
    if name == "table2":
        return figures.run_table2(datasets=datasets)["text"]
    if name == "fig3":
        result = figures.run_accuracy_vs_sample_size(
            alpha=0.2, trials=trials, datasets=datasets, context=ctx
        )
        if chart:
            return result["text"] + "\n\n" + _accuracy_charts(result, 0.2)
        return result["text"]
    if name == "fig4":
        return figures.run_throughput_vs_sample_size(
            datasets=datasets, num_threads=threads, context=ctx
        )["text"]
    if name == "fig5":
        result = figures.run_accuracy_vs_sample_size(
            alpha=0.0, trials=trials, datasets=datasets, context=ctx
        )
        if chart:
            return result["text"] + "\n\n" + _accuracy_charts(result, 0.0)
        return result["text"]
    if name == "fig6":
        return figures.run_deletion_ratio_impact(
            trials=max(1, trials // 2), datasets=datasets, context=ctx
        )["text"]
    if name == "fig7":
        return figures.run_scalability(datasets=datasets, context=ctx)["text"]
    if name == "fig8":
        return figures.run_minibatch_speedup(
            datasets=datasets, num_threads=threads, context=ctx
        )["text"]
    if name == "fig9":
        return figures.run_thread_speedup(datasets=datasets, context=ctx)[
            "text"
        ]
    if name == "fig10":
        return figures.run_load_balance(datasets=datasets, context=ctx)["text"]
    if name == "unbiasedness":
        return figures.run_unbiasedness(trials=max(trials, 50))["text"]
    if name == "ablation":
        return figures.run_ablation_heuristics(
            datasets=datasets, trials=max(1, trials // 2), context=ctx
        )["text"]
    if name == "variance":
        return extensions.run_variance_bound(
            trials=max(trials * 10, 100)
        )["text"]
    if name == "ensemble":
        return extensions.run_ensemble(trials=max(trials * 5, 30))["text"]
    if name == "anomaly":
        return extensions.run_anomaly_quality()["text"]
    if name == "lineage":
        return extensions.run_triangle_lineage(
            trials=max(trials * 10, 50)
        )["text"]
    raise SystemExit(f"unknown experiment: {name}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    datasets = _split_datasets(args.datasets)
    context = ExperimentContext()
    if args.experiment == "serve":
        try:
            return run_serve(
                args.estimator,
                args.host,
                args.port,
                durable_dir=args.durable_dir,
                shards=args.shards,
                backend=args.backend or "serial",
                partitioner=args.partitioner,
                window=args.window,
                window_time=args.window_time,
                replicate_to=args.replicate_to,
                autoscale=args.autoscale,
                max_shards=args.max_shards,
                autoscale_interval=args.autoscale_interval,
                tenant_root=args.tenant_root,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.experiment == "tenant":
        try:
            print(run_tenant(
                args.action,
                args.tenant_root,
                args.name,
                args.estimator,
                quota=args.quota,
            ))
            return 0
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.experiment == "reshard":
        try:
            print(run_reshard(
                args.durable_dir, args.shards, backend=args.backend
            ))
            return 0
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.experiment == "follow":
        try:
            return run_follow(
                args.primary,
                args.host,
                args.port,
                args.durable_dir,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.experiment == "all":
        names = [
            "table2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "unbiasedness",
            "ablation",
            "variance",
            "ensemble",
            "anomaly",
            "lineage",
        ]
    else:
        names = [args.experiment]
    try:
        for name in names:
            report = run_experiment(
                name, args.trials, datasets, args.threads, context,
                chart=args.chart, estimator_spec=args.estimator,
                shards=args.shards, backend=args.backend or "serial",
                partitioner=args.partitioner, window=args.window,
                window_time=args.window_time,
                durable_dir=args.durable_dir,
            )
            print(report)
            print()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
