"""FLEET3 — butterfly estimation from an insert-only bipartite stream.

Reimplementation of the best FLEET variant from Sanei-Mehri et al.,
"FLEET: Butterfly Estimation from a Bipartite Graph Stream" (CIKM 2019),
as configured by the paper under reproduction (resizing parameter
``gamma = 0.75``).

FLEET keeps every seen edge in its reservoir independently with a
*global* probability ``p`` (initially 1).  Whenever the reservoir hits
its capacity ``k``, it flips a ``gamma``-coin for every stored edge and
multiplies ``p`` by ``gamma`` — so the reservoir afterwards holds about
``gamma * k`` edges, which is why FLEET "always maintains a non-full
sample" (paper, Section VI-C).  Each arriving edge first refines the
estimate: every butterfly it closes with three reservoir edges
contributes ``1 / p^3`` (each of the three old edges is present
independently with probability ``p``).

FLEET has no notion of deletions; deletion elements are skipped, which
is exactly the behaviour whose accuracy cost Figure 3 quantifies.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.base import ButterflyEstimator
from repro.core.counting import count_with_sample
from repro.errors import EstimatorError
from repro.sampling.adjacency_sample import GraphSample
from repro.types import Op, StreamElement


class Fleet(ButterflyEstimator):
    """FLEET3 adaptive-sampling butterfly estimator (insert-only).

    Args:
        budget: reservoir capacity ``k`` (set equal to ABACUS's sample
            size in all comparisons, per Section VI-C).
        gamma: resizing parameter; each capacity hit keeps each edge
            with probability ``gamma`` (paper default 0.75).
        seed / rng: randomness source.
    """

    name = "FLEET"
    #: Insert-only: deletions are skipped, so windowing (which works by
    #: synthesizing deletions) cannot wrap this estimator.
    supports_deletions = False

    __slots__ = (
        "budget",
        "gamma",
        "_sample",
        "_p",
        "_estimate",
        "_rng",
        "total_work",
        "elements_processed",
        "num_resizes",
    )

    def __init__(
        self,
        budget: int,
        gamma: float = 0.75,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if budget < 2:
            raise EstimatorError(f"budget must be >= 2, got {budget}")
        if not 0.0 < gamma < 1.0:
            raise EstimatorError(f"gamma must be in (0, 1), got {gamma}")
        self.budget = budget
        self.gamma = gamma
        self._sample = GraphSample()
        self._p = 1.0
        self._estimate = 0.0
        self._rng = rng if rng is not None else random.Random(seed)
        self.total_work = 0
        self.elements_processed = 0
        self.num_resizes = 0

    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def memory_edges(self) -> int:
        return self._sample.num_edges

    @property
    def sampling_probability(self) -> float:
        """The current global inclusion probability ``p``."""
        return self._p

    def process(self, element: StreamElement) -> float:
        self.elements_processed += 1
        if element.op is Op.DELETE:
            return 0.0  # FLEET is insert-only: deletions are discarded.
        found, work = count_with_sample(self._sample, element.u, element.v)
        self.total_work += work
        delta = 0.0
        if found:
            delta = found / (self._p**3)
            self._estimate += delta
        if self._rng.random() < self._p:
            self._sample.add_edge(element.u, element.v)
            if self._sample.num_edges >= self.budget:
                self._resize()
        return delta

    def _resize(self) -> None:
        """Keep each reservoir edge w.p. gamma; scale p accordingly."""
        for edge in self._sample.edges():
            if self._rng.random() >= self.gamma:
                self._sample.remove_edge(*edge)
        self._p *= self.gamma
        self.num_resizes += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Fleet(k={self.budget}, p={self._p:.4f}, "
            f"|R|={self._sample.num_edges}, estimate={self._estimate:.1f})"
        )
