"""Insert-only baselines the paper compares against (Section VI-A).

* :class:`~repro.baselines.fleet.Fleet` — FLEET3 (Sanei-Mehri et al.,
  CIKM 2019): Bernoulli sampling with adaptive reservoir resizing.
* :class:`~repro.baselines.cas.CoAffiliationSampling` — CAS-R (Li et
  al., TKDE 2022): edge reservoir plus an AMS sketch over co-affiliation
  (wedge) frequencies.
* :class:`~repro.baselines.sgrapp.SGrapp` — sGrapp (Sheshbolouki &
  Özsu, TKDD 2022): window-based counting with a fitted butterfly
  densification power law (related-work §VII-C; not one of the paper's
  two evaluation baselines but included for completeness).

All ignore edge deletions — their defining limitation and the source of
their accuracy collapse on fully dynamic streams.
"""

from repro.baselines.cas import CoAffiliationSampling
from repro.baselines.fleet import Fleet
from repro.baselines.sgrapp import SGrapp

__all__ = ["Fleet", "CoAffiliationSampling", "SGrapp"]
