"""sGrapp-style window-based butterfly approximation (simplified).

Sheshbolouki & Özsu's sGrapp (TKDD 2022, cited as [5] in the paper)
approximates butterfly counts in insert-only streams from an *adaptive
window*: it counts exactly the butterflies that materialise inside each
window and extrapolates the inter-window remainder from the "butterfly
densification power law" (BDPL) — empirically, the cumulative butterfly
count grows as a power ``c * |E|^gamma`` of the edge count.

This reimplementation keeps that architecture in a deliberately simple
form (see DESIGN.md substitution notes):

* The stream is consumed in windows of ``window`` insertions; a graph of
  only the *current* window's edges is kept, and the butterflies closed
  within it are counted exactly (bounded memory O(window)).
* For the first ``learning_windows`` windows the full prefix graph is
  also maintained, giving the true cumulative count; the ratio
  ``true / intra-window`` is fitted against ``|E|`` on a log-log scale
  (the BDPL exponent) with a least-squares line.
* Afterwards the learning graph is discarded and the estimate is the
  cumulative intra-window count scaled by the fitted power law.

Like FLEET and CAS, sGrapp has no deletion story: deletions are
discarded, with the same accuracy consequences on fully dynamic streams.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.base import ButterflyEstimator
from repro.errors import EstimatorError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import butterflies_containing_edge
from repro.types import Op, StreamElement


class SGrapp(ButterflyEstimator):
    """Window-based BDPL butterfly estimator (insert-only).

    Args:
        window: insertions per window (bounded-memory working set).
        learning_windows: windows used to fit the BDPL correction; the
            full prefix graph is kept only during this phase.
    """

    name = "sGrapp"
    #: sGrapp fits its BDPL correction on *global* window prefixes; a
    #: left-vertex partitioned substream changes the window contents and
    #: the fitted exponent non-uniformly, so the K-corrected shard merge
    #: of repro.shard would not estimate the global count.
    supports_sharding = False
    #: Insert-only: deletions are skipped, so windowing (which works by
    #: synthesizing deletions) cannot wrap this estimator.
    supports_deletions = False

    def __init__(self, window: int = 2000, learning_windows: int = 4) -> None:
        if window < 1:
            raise EstimatorError(f"window must be >= 1, got {window}")
        if learning_windows < 2:
            raise EstimatorError(
                f"need >= 2 learning windows to fit, got {learning_windows}"
            )
        self.window = window
        self.learning_windows = learning_windows
        self._window_graph = BipartiteGraph()
        self._learning_graph: Optional[BipartiteGraph] = BipartiteGraph()
        self._true_count = 0           # exact, learning phase only
        self._intra_cumulative = 0.0   # sum of within-window butterflies
        self._edges_seen = 0
        self._in_window = 0
        self._windows_closed = 0
        # (log |E|, log ratio) points collected during learning.
        self._fit_points: List[Tuple[float, float]] = []
        self._log_c = 0.0
        self._beta = 0.0

    # ------------------------------------------------------------------
    # ButterflyEstimator interface
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> float:
        if self._learning_graph is not None:
            return float(self._true_count)  # exact while learning
        if self._intra_cumulative <= 0.0 or self._edges_seen == 0:
            return 0.0
        correction = math.exp(
            self._log_c + self._beta * math.log(self._edges_seen)
        )
        return self._intra_cumulative * correction

    @property
    def memory_edges(self) -> int:
        learning = (
            self._learning_graph.num_edges
            if self._learning_graph is not None
            else 0
        )
        return self._window_graph.num_edges + learning

    @property
    def learning(self) -> bool:
        """Whether the estimator is still in its learning phase."""
        return self._learning_graph is not None

    @property
    def bdpl_exponent(self) -> float:
        """The fitted correction exponent (0.0 while learning)."""
        return self._beta

    def process(self, element: StreamElement) -> float:
        if element.op is Op.DELETE:
            return 0.0  # sGrapp is insert-only: deletions are discarded.
        u, v = element.u, element.v
        before = self.estimate
        # Exact butterflies this edge closes within the current window.
        if not self._window_graph.has_edge(u, v):
            self._intra_cumulative += butterflies_containing_edge(
                self._window_graph, u, v
            )
            self._window_graph.add_edge(u, v)
        if (
            self._learning_graph is not None
            and not self._learning_graph.has_edge(u, v)
        ):
            self._true_count += butterflies_containing_edge(
                self._learning_graph, u, v
            )
            self._learning_graph.add_edge(u, v)
        self._edges_seen += 1
        self._in_window += 1
        if self._in_window >= self.window:
            self._close_window()
        return self.estimate - before

    # ------------------------------------------------------------------
    # Window lifecycle
    # ------------------------------------------------------------------
    def _close_window(self) -> None:
        self._windows_closed += 1
        if self._learning_graph is not None:
            if self._intra_cumulative > 0 and self._true_count > 0:
                self._fit_points.append(
                    (
                        math.log(self._edges_seen),
                        math.log(self._true_count / self._intra_cumulative),
                    )
                )
            if self._windows_closed >= self.learning_windows:
                self._finish_learning()
        self._window_graph = BipartiteGraph()
        self._in_window = 0

    def _finish_learning(self) -> None:
        """Fit ``log ratio = log c + beta log |E|`` and drop the graph."""
        points = self._fit_points
        if len(points) >= 2:
            n = len(points)
            mean_x = sum(x for x, _ in points) / n
            mean_y = sum(y for _, y in points) / n
            var_x = sum((x - mean_x) ** 2 for x, _ in points)
            if var_x > 0:
                cov = sum(
                    (x - mean_x) * (y - mean_y) for x, y in points
                )
                self._beta = cov / var_x
                self._log_c = mean_y - self._beta * mean_x
            else:
                self._beta = 0.0
                self._log_c = mean_y
        elif len(points) == 1:
            self._beta = 0.0
            self._log_c = points[0][1]
        # else: no butterflies observed while learning; correction 1.
        self._learning_graph = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        phase = "learning" if self.learning else f"beta={self._beta:.3f}"
        return (
            f"SGrapp(window={self.window}, windows={self._windows_closed}, "
            f"{phase}, estimate={self.estimate:.1f})"
        )
