"""CAS-R — co-affiliation sampling with an AMS sketch (insert-only).

A reimplementation in the spirit of Li et al., "Approximately Counting
Butterflies in Large Bipartite Graph Streams" (TKDE 2022), configured as
in the paper under reproduction: the best variant CAS-R with a fraction
``lambda = 0.33`` of the memory budget devoted to the sketch.

Design (see DESIGN.md substitution #3 for the fidelity argument):

* A classic edge reservoir holds ``(1 - lambda) * k`` edges.
* Every arriving edge ``(u, v)`` *discovers* left-side co-affiliation
  wedges: for each sampled neighbour ``x`` of ``v`` (``x != u``), the
  pair ``{u, x}`` gained a common neighbour.  A butterfly is exactly two
  such wedges on the same pair with different centres, so when a new
  wedge for pair ``{u, x}`` appears, the number of butterflies it
  completes equals the pair's previously recorded wedge count — which
  CAS looks up with a *point query* on its Count-Sketch/AMS structure
  rather than an exact (memory-hungry) hash map.
* Wedges are recorded in the sketch with weight ``1 / p_record`` (the
  reservoir inclusion probability at record time), making point queries
  estimates of *true* per-pair wedge counts; each completion is then
  scaled by ``1 / p_now`` for the current wedge's own discovery
  probability.  Both corrections together make every butterfly
  contribute one in expectation on an insert-only stream.

Like FLEET, CAS is insert-only: deletion elements are skipped.  Per-edge
work includes ``depth`` sketch-row updates per discovered wedge, which
is why CAS throughput trails the purely sample-based methods (the paper
observes "around half of the time in CAS is attributed to the update of
the sketch", Section VI-C).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.base import ButterflyEstimator
from repro.errors import EstimatorError
from repro.sampling.adjacency_sample import GraphSample
from repro.sketch.ams import AmsSketch
from repro.types import Op, StreamElement, Vertex


class CoAffiliationSampling(ButterflyEstimator):
    """CAS-R butterfly estimator: reservoir + AMS sketch (insert-only).

    Args:
        budget: total memory budget ``k``, measured in edges; a
            ``sketch_fraction`` share is converted into sketch counters
            (one sampled edge is charged the same as two integer
            counters, a deliberately simple cost model).
        sketch_fraction: λ — fraction of the budget spent on the sketch
            (paper default 0.33).
        sketch_depth: AMS rows (median-of-rows robustness).
        seed / rng: randomness source.
    """

    name = "CAS"
    #: Insert-only: deletions are skipped, so windowing (which works by
    #: synthesizing deletions) cannot wrap this estimator.
    supports_deletions = False

    __slots__ = (
        "budget",
        "sketch_fraction",
        "_sample",
        "_sketch",
        "_rng",
        "_estimate",
        "_edges_seen",
        "_reservoir_capacity",
        "total_work",
        "elements_processed",
        "sketch_updates",
    )

    def __init__(
        self,
        budget: int,
        sketch_fraction: float = 0.33,
        sketch_depth: int = 5,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if budget < 4:
            raise EstimatorError(f"budget must be >= 4, got {budget}")
        if not 0.0 < sketch_fraction < 1.0:
            raise EstimatorError(
                f"sketch_fraction must be in (0, 1), got {sketch_fraction}"
            )
        self.budget = budget
        self.sketch_fraction = sketch_fraction
        self._rng = rng if rng is not None else random.Random(seed)
        self._reservoir_capacity = max(
            2, round(budget * (1.0 - sketch_fraction))
        )
        # Cost model: one stored edge (two vertex ids + adjacency
        # overhead) is charged like four sketch counters.
        sketch_counters = max(
            sketch_depth, 4 * (budget - self._reservoir_capacity)
        )
        width = max(1, sketch_counters // sketch_depth)
        self._sketch = AmsSketch(
            width=width, depth=sketch_depth, rng=self._rng
        )
        self._sample = GraphSample()
        self._estimate = 0.0
        self._edges_seen = 0
        self.total_work = 0
        self.elements_processed = 0
        self.sketch_updates = 0

    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def memory_edges(self) -> int:
        return self._sample.num_edges

    @property
    def reservoir_capacity(self) -> int:
        return self._reservoir_capacity

    @property
    def inclusion_probability(self) -> float:
        """Probability a past edge is currently in the reservoir."""
        if self._edges_seen == 0:
            return 1.0
        return min(1.0, self._reservoir_capacity / self._edges_seen)

    def process(self, element: StreamElement) -> float:
        self.elements_processed += 1
        if element.op is Op.DELETE:
            return 0.0  # CAS is insert-only: deletions are discarded.
        u, v = element.u, element.v
        p = self.inclusion_probability
        delta = 0.0
        # Discover the new left-pair wedges the edge creates with sampled
        # edges, complete butterflies via sketch point queries, then
        # record the wedges in the sketch with inverse-probability weight.
        for x in self._sample.neighbors(v):
            if x == u:
                continue
            self.total_work += 1
            key = _pair_key(u, x)
            # The point estimate is unbiased with zero-mean noise; it is
            # deliberately *not* clamped at zero — truncation would turn
            # the symmetric noise into a large positive bias.
            recorded = self._sketch.query_update(key, 1.0 / p)
            delta += recorded / p
            self.sketch_updates += 1
        self._estimate += delta
        self._offer_to_reservoir(u, v)
        return delta

    def _offer_to_reservoir(self, u: Vertex, v: Vertex) -> None:
        """Standard reservoir sampling over the edge sequence."""
        self._edges_seen += 1
        if self._sample.num_edges < self._reservoir_capacity:
            self._sample.add_edge(u, v)
            return
        j = self._rng.randrange(self._edges_seen)
        if j < self._reservoir_capacity:
            self._sample.evict_random_edge(self._rng)
            self._sample.add_edge(u, v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CoAffiliationSampling(k={self.budget}, "
            f"|R|={self._sample.num_edges}/{self._reservoir_capacity}, "
            f"estimate={self._estimate:.1f})"
        )


def _pair_key(a: Vertex, b: Vertex) -> int:
    """Symmetric integer key for an unordered vertex pair.

    The sketch needs ``key(a, b) == key(b, a)``; an order-insensitive
    combination of the two hashes achieves that for any hashable ids.
    """
    ha, hb = hash(a), hash(b)
    if ha > hb:
        ha, hb = hb, ha
    return (ha * 0x9E3779B97F4A7C15 + hb) & 0x7FFFFFFFFFFFFFFF
