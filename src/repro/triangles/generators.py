"""Synthetic undirected graph generators for the triangle subsystem."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import GraphError
from repro.triangles.graph import canonical_edge
from repro.types import Vertex

Edge = Tuple[Vertex, Vertex]


def erdos_renyi_graph(
    n_vertices: int,
    n_edges: int,
    rng: Optional[random.Random] = None,
) -> List[Edge]:
    """Uniform simple undirected graph with exactly ``n_edges`` edges."""
    rng = rng or random.Random()
    max_edges = n_vertices * (n_vertices - 1) // 2
    if n_edges > max_edges:
        raise GraphError(
            f"cannot place {n_edges} edges among {n_vertices} vertices"
        )
    edges: set[Edge] = set()
    while len(edges) < n_edges:
        u = rng.randrange(n_vertices)
        v = rng.randrange(n_vertices)
        if u == v:
            continue
        edges.add(canonical_edge(u, v))
    ordered = list(edges)
    rng.shuffle(ordered)
    return ordered


def barabasi_albert_graph(
    n_vertices: int,
    attachments: int,
    rng: Optional[random.Random] = None,
) -> List[Edge]:
    """Preferential-attachment graph (triangle-rich, heavy-tailed).

    Each new vertex attaches to ``attachments`` existing vertices chosen
    proportionally to degree (by sampling the endpoint multiset).
    """
    if attachments < 1 or n_vertices <= attachments:
        raise GraphError(
            f"need 1 <= attachments < n_vertices, got "
            f"{attachments}/{n_vertices}"
        )
    rng = rng or random.Random()
    edges: List[Edge] = []
    endpoint_pool: List[int] = list(range(attachments + 1))
    # Seed clique over the first (attachments + 1) vertices.
    for i in range(attachments + 1):
        for j in range(i + 1, attachments + 1):
            edges.append(canonical_edge(i, j))
            endpoint_pool.extend((i, j))
    for new in range(attachments + 1, n_vertices):
        chosen: set[int] = set()
        while len(chosen) < attachments:
            chosen.add(endpoint_pool[rng.randrange(len(endpoint_pool))])
        for target in chosen:
            edges.append(canonical_edge(new, target))
            endpoint_pool.extend((new, target))
    return edges
