"""TRIEST-FD: lazy fully dynamic triangle estimation (De Stefani et al.).

The second ancestor the paper names in Section VII-A.  Where ThinkD
counts against the sample for *every* arriving element, TRIEST-FD
"plainly discards the edges that are not sampled without using them for
updating its count estimates": counting happens only on *sample
transitions*.

* An **insertion** refines the count only when Random Pairing accepts
  the edge into the sample.  Acceptance is a Bernoulli draw with known
  probability ``q``; the two partner edges of each discovered triangle
  must already be sampled (probability ``p2``, the two-edge analogue of
  Equation 1), so each triangle is weighted by ``1 / (q * p2)``.
* A **deletion** refines the count only when the deleted edge was
  sampled, i.e. all *three* triangle edges were in the sample
  (probability ``p3``); each triangle is weighted by ``-1 / p3``.

Like :class:`~repro.core.lazy.LazyAbacus` (the butterfly port of this
design), the estimator does per-edge counting for only a ``~k/|E|``
fraction of insertions, trading variance for work — and it inherits the
same corner-case blind spot while ``cb = 0 < cg``, where no insertion
can be accepted.  The cross-validation tests measure both effects
against ThinkD on identical streams.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.core.base import ButterflyEstimator
from repro.core.probabilities import subset_inclusion_probability
from repro.errors import EstimatorError, GraphError, SamplingError, StreamError
from repro.sampling.adjacency_sample import GraphSample
from repro.triangles.graph import canonical_edge
from repro.types import Op, StreamElement, Vertex


class TriestFD(ButterflyEstimator):
    """Count triangles only on sample transitions (TRIEST-FD).

    The Random Pairing update is inlined because the counting decision
    must reuse the same acceptance draw that decides the sample update.

    Args:
        budget: memory budget ``k`` (max sampled edges, >= 2).
        seed / rng: randomness source.

    Attributes:
        total_work: neighbour-set element checks performed.
        counted_elements: elements that triggered per-edge counting.
    """

    name = "TriestFD"

    __slots__ = (
        "budget",
        "sample",
        "num_live_edges",
        "cb",
        "cg",
        "_rng",
        "_estimate",
        "total_work",
        "elements_processed",
        "counted_elements",
    )

    def __init__(
        self,
        budget: int,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if budget < 2:
            raise SamplingError(f"memory budget must be >= 2, got {budget}")
        self.budget = budget
        self.sample = GraphSample()
        self.num_live_edges = 0
        self.cb = 0
        self.cg = 0
        self._rng = rng if rng is not None else random.Random(seed)
        self._estimate = 0.0
        self.total_work = 0
        self.elements_processed = 0
        self.counted_elements = 0

    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def memory_edges(self) -> int:
        return self.sample.num_edges

    @property
    def counting_fraction(self) -> float:
        """Fraction of elements that triggered per-edge counting."""
        if self.elements_processed == 0:
            return 0.0
        return self.counted_elements / self.elements_processed

    def process(self, element: StreamElement) -> float:
        if element.u == element.v:
            raise GraphError(
                f"self-loop on vertex {element.u!r} in triangle stream"
            )
        self.elements_processed += 1
        if element.op is Op.INSERT:
            return self._process_insertion(element)
        return self._process_deletion(element)

    # ------------------------------------------------------------------
    # Insertions: count iff the edge is accepted into the sample
    # ------------------------------------------------------------------
    def _process_insertion(self, element: StreamElement) -> float:
        u, v = canonical_edge(element.u, element.v)
        pre = (self.num_live_edges, self.cb, self.cg)
        self.num_live_edges += 1
        uncompensated = self.cb + self.cg
        delta = 0.0
        if uncompensated == 0:
            if self.sample.num_edges < self.budget:
                accept, q = True, 1.0
            else:
                q = self.budget / self.num_live_edges
                accept = self._rng.random() < q
            if accept:
                delta = self._count_and_refine(u, v, q, pre)
                if self.sample.num_edges >= self.budget:
                    self.sample.evict_random_edge(self._rng)
                self.sample.add_edge(u, v)
        else:
            q = self.cb / uncompensated
            if self._rng.random() < q:
                delta = self._count_and_refine(u, v, q, pre)
                self.sample.add_edge(u, v)
                self.cb -= 1
            else:
                self.cg -= 1
        return delta

    # ------------------------------------------------------------------
    # Deletions: count iff the edge was sampled
    # ------------------------------------------------------------------
    def _process_deletion(self, element: StreamElement) -> float:
        u, v = canonical_edge(element.u, element.v)
        if self.num_live_edges <= 0:
            raise StreamError(
                f"deletion of ({u!r}, {v!r}) with no live edges"
            )
        pre_live, pre_cb, pre_cg = self.num_live_edges, self.cb, self.cg
        self.num_live_edges -= 1
        delta = 0.0
        if self.sample.contains(u, v):
            t = pre_live + pre_cb + pre_cg
            y = min(self.budget, t)
            p3 = subset_inclusion_probability(t, y, 3)
            found = self._count_in_sample(u, v)
            self.counted_elements += 1
            if found:
                if p3 <= 0.0:
                    raise EstimatorError(
                        "sampled deletion with zero inclusion probability"
                    )
                delta = -found / p3
                self._estimate += delta
            self.sample.remove_edge(u, v)
            self.cb += 1
        else:
            self.cg += 1
        return delta

    def _count_and_refine(
        self,
        u: Vertex,
        v: Vertex,
        acceptance_probability: float,
        pre_state: Tuple[int, int, int],
    ) -> float:
        pre_live, pre_cb, pre_cg = pre_state
        found = self._count_in_sample(u, v)
        self.counted_elements += 1
        if not found:
            return 0.0
        t = pre_live + pre_cb + pre_cg
        y = min(self.budget, t)
        p2 = subset_inclusion_probability(t, y, 2)
        joint = acceptance_probability * p2
        if joint <= 0.0:
            raise EstimatorError(
                "triangle discovered with zero joint probability"
            )
        delta = found / joint
        self._estimate += delta
        return delta

    def _count_in_sample(self, u: Vertex, v: Vertex) -> int:
        """Triangles the edge ``{u, v}`` closes with two sampled edges."""
        neighbors_u = self.sample.neighbors(u)
        neighbors_v = self.sample.neighbors(v)
        if len(neighbors_u) > len(neighbors_v):
            neighbors_u, neighbors_v = neighbors_v, neighbors_u
        self.total_work += len(neighbors_u)
        return sum(
            1 for w in neighbors_u if w != u and w != v and w in neighbors_v
        )
