"""ThinkD-style fully dynamic triangle estimation (Shin et al.).

The direct ancestor of ABACUS (paper, Section VII-A): maintain a uniform
Random Pairing sample of the unipartite edge stream; for every arriving
element — sampled or not — count the triangles it closes with *two*
sampled edges and weight each by the reciprocal of the two-edge
inclusion probability

    Pr2(|E|, cb, cg) = y/T · (y-1)/(T-1),   T = |E|+cb+cg, y = min(k, T)

(the two-edge analogue of the paper's Equation 1).  Unbiasedness follows
by the same argument as Theorem 1.

Implemented on the *same* sampling substrate as ABACUS
(:class:`~repro.sampling.random_pairing.RandomPairing` over a
:class:`~repro.sampling.adjacency_sample.GraphSample`), which is the
point: one Random Pairing implementation serves both motifs, and the
triangle tests cross-validate it.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.base import ButterflyEstimator
from repro.core.probabilities import subset_inclusion_probability
from repro.errors import EstimatorError, GraphError
from repro.sampling.random_pairing import RandomPairing
from repro.triangles.exact import triangles_containing_edge
from repro.triangles.graph import UndirectedGraph, canonical_edge
from repro.types import Op, StreamElement


class ThinkD(ButterflyEstimator):
    """Approximate triangle counting on fully dynamic unipartite streams.

    The :class:`~repro.core.base.ButterflyEstimator` interface is reused
    (it is motif-agnostic: process elements, expose an estimate).

    Args:
        budget: memory budget ``k`` (max sampled edges, >= 2).
        seed / rng: randomness source.
    """

    name = "ThinkD"

    __slots__ = ("_sampler", "_estimate", "total_work", "elements_processed")

    def __init__(
        self,
        budget: int,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rng is None:
            rng = random.Random(seed)
        self._sampler = RandomPairing(budget, rng)
        self._estimate = 0.0
        self.total_work = 0
        self.elements_processed = 0

    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def memory_edges(self) -> int:
        return self._sampler.sample.num_edges

    @property
    def sampler(self) -> RandomPairing:
        return self._sampler

    def process(self, element: StreamElement) -> float:
        """Count triangles closed by the element, then update the sample."""
        u, v = element.u, element.v
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} in triangle stream")
        self.elements_processed += 1
        sample = self._sampler.sample
        neighbors_u = sample.neighbors(u)
        neighbors_v = sample.neighbors(v)
        if len(neighbors_u) > len(neighbors_v):
            neighbors_u, neighbors_v = neighbors_v, neighbors_u
        self.total_work += len(neighbors_u)
        found = sum(
            1
            for w in neighbors_u
            if w != u and w != v and w in neighbors_v
        )
        delta = 0.0
        if found:
            probability = self._two_edge_probability()
            if probability <= 0.0:
                raise EstimatorError(
                    "triangle discovered with zero discovery probability"
                )
            delta = element.op.sign * found / probability
            self._estimate += delta
        edge = canonical_edge(u, v)
        if element.op is Op.INSERT:
            self._sampler.insert(*edge)
        else:
            self._sampler.delete(*edge)
        return delta

    def _two_edge_probability(self) -> float:
        s = self._sampler
        t = s.num_live_edges + s.cb + s.cg
        y = min(s.budget, t)
        return subset_inclusion_probability(t, y, 2)


class ExactTriangleCounter(ButterflyEstimator):
    """Exact streaming triangle oracle (stores the whole graph)."""

    name = "ExactTriangles"

    __slots__ = ("_graph", "_count")

    def __init__(self) -> None:
        self._graph = UndirectedGraph()
        self._count = 0

    @property
    def graph(self) -> UndirectedGraph:
        return self._graph

    @property
    def estimate(self) -> float:
        return float(self._count)

    @property
    def exact_count(self) -> int:
        return self._count

    @property
    def memory_edges(self) -> int:
        return self._graph.num_edges

    def process(self, element: StreamElement) -> float:
        u, v = element.u, element.v
        if element.op is Op.INSERT:
            delta = triangles_containing_edge(self._graph, u, v)
            self._graph.add_edge(u, v)
            self._count += delta
            return float(delta)
        self._graph.remove_edge(u, v)
        delta = triangles_containing_edge(self._graph, u, v)
        self._count -= delta
        return float(-delta)
