"""Fully dynamic triangle counting (the technique ABACUS generalises).

Section VII-A of the paper traces ABACUS's lineage to fully dynamic
*triangle* counting on unipartite streams: TRIEST-FD maintains a uniform
sample under deletions, and ThinkD additionally "leverages the
non-sampled edges to update its triangle estimates before discarding
them" — exactly the count-every-edge design ABACUS ports to butterflies.

This subpackage implements that lineage on the same Random Pairing
machinery: an undirected-graph substrate, exact triangle counting, and a
ThinkD-style estimator.  Besides being useful in its own right, it
cross-validates the shared sampling code on a second motif whose
discovery needs *two* sampled edges instead of three.
"""

from repro.triangles.exact import (
    count_triangles,
    count_triangles_brute_force,
    triangles_containing_edge,
)
from repro.triangles.graph import UndirectedGraph
from repro.triangles.thinkd import ExactTriangleCounter, ThinkD
from repro.triangles.triest import TriestFD

__all__ = [
    "UndirectedGraph",
    "count_triangles",
    "count_triangles_brute_force",
    "triangles_containing_edge",
    "ThinkD",
    "TriestFD",
    "ExactTriangleCounter",
]
