"""A dynamic, undirected, simple (unipartite) graph.

The unipartite counterpart of :class:`repro.graph.bipartite
.BipartiteGraph`: adjacency sets, implicit vertex lifecycle, no
self-loops, no parallel edges.  Edges are canonicalised by sorted
``repr`` so ``(u, v)`` and ``(v, u)`` denote the same edge.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.errors import DuplicateEdgeError, GraphError, MissingEdgeError
from repro.types import Vertex

Edge = Tuple[Vertex, Vertex]

_EMPTY_SET: Set[Vertex] = frozenset()  # type: ignore[assignment]


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Order-insensitive representation of an undirected edge."""
    if repr(u) <= repr(v):
        return (u, v)
    return (v, u)


class UndirectedGraph:
    """Mutable undirected simple graph with set-based adjacency."""

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Optional[Iterable[Edge]] = None) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Each edge yielded once, in canonical orientation."""
        for u, neighbours in self._adj.items():
            for v in neighbours:
                edge = canonical_edge(u, v)
                if edge[0] == u:
                    yield edge

    def __len__(self) -> int:
        return self._num_edges

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        neighbours = self._adj.get(u)
        return neighbours is not None and v in neighbours

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Live internal set; callers must not mutate."""
        return self._adj.get(vertex, _EMPTY_SET)

    def degree(self, vertex: Vertex) -> int:
        return len(self._adj.get(vertex, _EMPTY_SET))

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert edge {u, v}.

        Raises:
            GraphError: on a self-loop.
            DuplicateEdgeError: if the edge exists.
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        bucket = self._adj.get(u)
        if bucket is not None and v in bucket:
            raise DuplicateEdgeError(f"edge ({u!r}, {v!r}) already exists")
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete edge {u, v}; drops zero-degree endpoints.

        Raises:
            MissingEdgeError: if the edge does not exist.
        """
        bucket = self._adj.get(u)
        if bucket is None or v not in bucket:
            raise MissingEdgeError(f"edge ({u!r}, {v!r}) does not exist")
        bucket.discard(v)
        if not bucket:
            del self._adj[u]
        other = self._adj[v]
        other.discard(u)
        if not other:
            del self._adj[v]
        self._num_edges -= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UndirectedGraph(|V|={self.num_vertices}, "
            f"|E|={self._num_edges})"
        )
