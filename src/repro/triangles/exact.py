"""Exact triangle counting on undirected graphs."""

from __future__ import annotations

from itertools import combinations

from repro.triangles.graph import UndirectedGraph
from repro.types import Vertex


def count_triangles(graph: UndirectedGraph) -> int:
    """Exact global triangle count.

    Sums ``|N(u) ∩ N(v)|`` over every edge and divides by three (each
    triangle is seen once per edge), intersecting via the smaller set.
    """
    total = 0
    for u, v in graph.edges():
        total += _common_neighbors(graph, u, v)
    return total // 3


def count_triangles_brute_force(graph: UndirectedGraph) -> int:
    """Reference counter enumerating all vertex triples (tests only)."""
    vertices = list(graph.vertices())
    count = 0
    for a, b, c in combinations(vertices, 3):
        if (
            graph.has_edge(a, b)
            and graph.has_edge(b, c)
            and graph.has_edge(a, c)
        ):
            count += 1
    return count


def triangles_containing_edge(
    graph: UndirectedGraph, u: Vertex, v: Vertex
) -> int:
    """Number of triangles through edge {u, v} (= common neighbours).

    Works whether or not the edge itself is currently present, which is
    what the exact streaming counter exploits.
    """
    return _common_neighbors(graph, u, v)


def _common_neighbors(graph: UndirectedGraph, u: Vertex, v: Vertex) -> int:
    nu = graph.neighbors(u)
    nv = graph.neighbors(v)
    if len(nu) > len(nv):
        nu, nv = nv, nu
    return sum(1 for w in nu if w in nv and w != u and w != v)
