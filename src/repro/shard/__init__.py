"""Sharded ingestion: hash-partitioned fan-out over estimator shards.

The :mod:`repro.shard` package scales ingestion beyond one estimator by
partitioning the fully dynamic edge stream across ``K`` independent
shards, each wrapping a registry-built estimator with its own seeded
sampler, and merging the per-shard estimates into a single global
estimate with an explicit cross-shard correction (see
``docs/architecture.md`` for the contract and the math).

Three layers, smallest first:

* :mod:`repro.shard.partition` — vertex partitioners that decide which
  shard owns a stream element (stable hashing, or the load-balance-aware
  greedy assignment mirroring the paper's Fig. 10 concern).
* :mod:`repro.shard.backends` — executor backends that run the shards:
  ``serial`` (in-process loop), ``thread`` (a thread pool), ``process``
  (persistent worker processes; state round-trips through the
  ``state_to_dict`` snapshot protocol).
* :mod:`repro.shard.engine` — :class:`ShardedEstimator`, a regular
  :class:`~repro.core.base.ButterflyEstimator` that owns the
  partitioner and the backend, so every facility of the session layer
  (checkpoint offsets, observers, snapshot/restore) applies unchanged.

The usual entry point is the session facade::

    from repro.api import open_session

    with open_session("abacus:budget=1000,seed=7", shards=4,
                      backend="process") as session:
        session.ingest(stream)
        print(session.estimate)
"""

from repro.shard.backends import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ShardBackend,
    ThreadBackend,
)
from repro.shard.autoscale import Autoscaler, AutoscaleDecision
from repro.shard.engine import ReshardReport, ShardedEstimator
from repro.shard.partition import (
    PARTITIONER_NAMES,
    BalancedPartitioner,
    HashPartitioner,
    Partitioner,
    make_partitioner,
    partitioner_from_state,
    shard_seed,
)

__all__ = [
    "BACKEND_NAMES",
    "PARTITIONER_NAMES",
    "AutoscaleDecision",
    "Autoscaler",
    "BalancedPartitioner",
    "HashPartitioner",
    "Partitioner",
    "ProcessBackend",
    "ReshardReport",
    "SerialBackend",
    "ShardBackend",
    "ShardedEstimator",
    "ThreadBackend",
    "make_partitioner",
    "partitioner_from_state",
    "shard_seed",
]
