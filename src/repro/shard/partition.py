"""Stream partitioners: which shard owns a stream element.

Both partitioners shipped here are **left-vertex** partitioners: every
edge ``{u, v}`` routes by its left endpoint ``u``, so the complete
neighbourhood of a left vertex — and therefore every insertion *and*
the matching deletion of each of its edges — lands on one shard.  That
choice is what makes the cross-shard correction of
:class:`repro.shard.engine.ShardedEstimator` a clean factor ``K``: a
butterfly ``(u1, u2, v1, v2)`` survives partitioning exactly when its
two left vertices collide, which a uniform vertex hash does with
probability ``1/K`` (see ``docs/architecture.md``).

Partitioners are deterministic and serialisable: the stateless
:class:`HashPartitioner` reconstructs from ``(num_shards, salt,
epoch)``, and the stateful :class:`BalancedPartitioner` round-trips
its assignment table through :meth:`Partitioner.state_to_dict`, so a
restored session routes every future element exactly as the original
would have.

Two facilities added for elastic resharding (``docs/resharding.md``):

* Every partitioner carries an **epoch** — a version counter bumped by
  each :meth:`repro.shard.engine.ShardedEstimator.reshard`.  Epoch 0
  routes exactly as the pre-epoch code did (bit-compatible with every
  existing snapshot); epoch ``e > 0`` folds ``e`` into the routing
  salt, so even a ``K → K`` reshard draws a fresh independent
  partition map.
* Every partitioner counts per-shard routed elements in a public load
  table (:meth:`Partitioner.load_table`), which the autoscaler's
  hysteresis bands and the Fig. 10 balance tests read instead of
  reaching into :class:`BalancedPartitioner` internals.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, List, Tuple, Type

from repro.errors import SpecError
from repro.sketch.hashing import mix64
from repro.types import (  # noqa: F401  (insertion used in doctests)
    StreamElement,
    Vertex,
    insertion,
)

__all__ = [
    "PARTITIONER_NAMES",
    "BalancedPartitioner",
    "HashPartitioner",
    "Partitioner",
    "make_partitioner",
    "partitioner_from_state",
    "shard_seed",
    "stable_vertex_key",
]

_MASK64 = (1 << 64) - 1


def stable_vertex_key(vertex: Vertex) -> int:
    """A process-independent integer key for a vertex identifier.

    Integers map to themselves and strings fold byte-by-byte through
    :func:`~repro.sketch.hashing.mix64`, so the common vertex types are
    routed identically across interpreter runs and worker processes
    (``PYTHONHASHSEED`` never enters the picture).  Any other hashable
    type falls back to the built-in ``hash``, which is stable only
    within one process — fine for routing (the partitioner always runs
    in the coordinating process) but such vertices will not route
    identically after a cross-process snapshot/restore.

    >>> stable_vertex_key(41)
    41
    >>> stable_vertex_key("user-41") == stable_vertex_key("user-41")
    True
    """
    if isinstance(vertex, bool):
        return int(vertex)
    if isinstance(vertex, int):
        return vertex
    if isinstance(vertex, str):
        key = len(vertex)
        for byte in vertex.encode("utf-8"):
            key = mix64(key, byte)
        return key
    return hash(vertex)


def shard_seed(base_seed: int, shard_index: int, num_shards: int) -> int:
    """Derive the RNG seed for one shard from the base seed.

    A single shard keeps the base seed unchanged (``shards=1`` is
    literally the unsharded estimator); multiple shards get independent
    streams via salted splitmix64 mixing.

    >>> shard_seed(42, 0, 1)
    42
    >>> shard_seed(42, 0, 4) != shard_seed(42, 1, 4)
    True
    """
    if num_shards == 1:
        return base_seed
    return mix64(base_seed & _MASK64, shard_index + 1) % (1 << 31)


class Partitioner(abc.ABC):
    """Maps stream elements to shard indices, deterministically.

    Subclasses register themselves in :data:`PARTITIONER_NAMES` via
    ``name``; :func:`make_partitioner` builds by name and
    :func:`partitioner_from_state` restores from a state dict.
    """

    #: Registry name ("hash", "balanced").
    name: str = ""

    def __init__(
        self, num_shards: int, salt: int = 0, epoch: int = 0
    ) -> None:
        if num_shards < 1:
            raise SpecError(f"num_shards must be >= 1, got {num_shards}")
        if epoch < 0:
            raise SpecError(f"epoch must be >= 0, got {epoch}")
        self.num_shards = num_shards
        self.salt = salt
        self.epoch = epoch
        # Epoch 0 routes with the raw salt — bit-compatible with every
        # snapshot written before epochs existed; later epochs fold the
        # counter in so each reshard draws an independent map.
        self._route_salt = salt if epoch == 0 else mix64(salt, epoch)
        self.loads: List[int] = [0] * num_shards

    @abc.abstractmethod
    def shard_of(self, vertex: Vertex) -> int:
        """The shard owning edges whose left endpoint is ``vertex``."""

    def assign(self, element: StreamElement) -> int:
        """Route one stream element, counting it in the load table."""
        shard = self.shard_of(element.u)
        self.loads[shard] += 1
        return shard

    def load_table(self) -> Tuple[int, ...]:
        """Elements routed to each shard since this partitioner began.

        The counters start at zero when the partitioner is built —
        including the fresh partitioner a reshard installs — so the
        table doubles as the autoscaler's per-epoch load window.
        """
        return tuple(self.loads)

    @property
    def collision_probability(self) -> float:
        """Modelled probability that two distinct left vertices collide.

        ``1 / num_shards`` under the uniform-hash model; the engine's
        cross-shard correction is its reciprocal.
        """
        return 1.0 / self.num_shards

    def state_to_dict(self) -> Dict[str, Any]:
        """JSON-ready state; ``partitioner_from_state`` inverts it."""
        return {
            "name": self.name,
            "num_shards": self.num_shards,
            "salt": self.salt,
            "epoch": self.epoch,
            "loads": list(self.loads),
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "Partitioner":
        # .get defaults keep pre-epoch snapshots restorable.
        partitioner = cls(
            int(state["num_shards"]),
            int(state["salt"]),
            int(state.get("epoch", 0)),
        )
        loads = state.get("loads")
        if loads is not None:
            partitioner.loads = [int(x) for x in loads]
        return partitioner

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashPartitioner(Partitioner):
    """Stateless salted-hash partitioner (the default).

    Routes by ``mix64(salt, stable_vertex_key(u)) % num_shards`` (with
    the reshard epoch folded into the salt for epochs > 0).  Collision
    probability between distinct left vertices is modelled as ``1/K``;
    varying ``salt`` — or the epoch — draws an independent partition
    map, which is how the unbiasedness tests average over
    partitionings.

    >>> p = HashPartitioner(2)
    >>> p.shard_of(0), p.shard_of(1), p.shard_of(2), p.shard_of(3)
    (0, 1, 0, 1)
    >>> p.shard_of(0) == HashPartitioner(2).shard_of(0)   # deterministic
    True
    >>> q = HashPartitioner(2, epoch=1)      # a reshard's fresh map
    >>> any(p.shard_of(u) != q.shard_of(u) for u in range(100))
    True
    """

    name = "hash"

    def shard_of(self, vertex: Vertex) -> int:
        return (
            mix64(self._route_salt, stable_vertex_key(vertex))
            % self.num_shards
        )


class BalancedPartitioner(Partitioner):
    """Greedy load-balance-aware partitioner (mirrors Fig. 10's concern).

    The first time a left vertex appears it is pinned to the currently
    least-loaded shard (ties break to the lowest index); afterwards
    every element routed to a shard increments that shard's load.  This
    evens out skewed left-degree distributions — the exact imbalance
    PARABACUS's dynamic scheduling addresses for threads in Fig. 10 —
    at a price stated in ``docs/architecture.md``: the assignment
    depends on arrival order, so the ``K`` correction is exact only
    under the exchangeable-arrival approximation, not Theorem-1
    unbiased.

    >>> p = BalancedPartitioner(2)
    >>> [p.assign(e) for e in [insertion(10, 0), insertion(10, 1),
    ...                        insertion(20, 0), insertion(30, 0)]]
    [0, 0, 1, 1]
    >>> p.loads
    [2, 2]
    """

    name = "balanced"

    def __init__(
        self, num_shards: int, salt: int = 0, epoch: int = 0
    ) -> None:
        super().__init__(num_shards, salt, epoch)
        self._assignment: Dict[Hashable, int] = {}

    def shard_of(self, vertex: Vertex) -> int:
        shard = self._assignment.get(vertex)
        if shard is None:
            shard = min(
                range(self.num_shards), key=lambda s: (self.loads[s], s)
            )
            self._assignment[vertex] = shard
        return shard

    @property
    def assignment(self) -> Dict[Hashable, int]:
        """The pinned vertex→shard map accumulated so far (a copy)."""
        return dict(self._assignment)

    def state_to_dict(self) -> Dict[str, Any]:
        state = super().state_to_dict()
        # Pairs, not a dict: JSON objects would stringify int vertices.
        state["assignment"] = [[v, s] for v, s in self._assignment.items()]
        return state

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "BalancedPartitioner":
        partitioner = super().from_state_dict(state)
        assert isinstance(partitioner, cls)
        partitioner._assignment = {
            _as_vertex(v): int(s) for v, s in state.get("assignment", [])
        }
        return partitioner


def _as_vertex(value: Any) -> Hashable:
    """JSON round-trip normalisation for vertex identifiers.

    ``json.dump`` turns tuple vertices into lists, which cannot key the
    assignment dict on restore; convert them (recursively) back.  Note
    that routing for such vertices still relies on the in-process
    ``hash`` — see :func:`stable_vertex_key` for the restore caveat.
    """
    if isinstance(value, list):
        return tuple(_as_vertex(item) for item in value)
    return value


_PARTITIONERS: Dict[str, Type[Partitioner]] = {
    HashPartitioner.name: HashPartitioner,
    BalancedPartitioner.name: BalancedPartitioner,
}

#: The accepted ``partitioner=`` names, sorted.
PARTITIONER_NAMES = tuple(sorted(_PARTITIONERS))


def make_partitioner(
    name: str, num_shards: int, salt: int = 0, epoch: int = 0
) -> Partitioner:
    """Build a partitioner by registry name.

    Raises:
        SpecError: unknown name.
    """
    try:
        cls = _PARTITIONERS[name.strip().lower()]
    except KeyError:
        raise SpecError(
            f"unknown partitioner {name!r}; "
            f"available: {', '.join(PARTITIONER_NAMES)}"
        ) from None
    return cls(num_shards, salt, epoch)


def partitioner_from_state(state: Dict[str, Any]) -> Partitioner:
    """Rebuild a partitioner from :meth:`Partitioner.state_to_dict`."""
    try:
        cls = _PARTITIONERS[state["name"]]
    except KeyError:
        raise SpecError(
            f"unknown partitioner state {state.get('name')!r}"
        ) from None
    return cls.from_state_dict(state)
