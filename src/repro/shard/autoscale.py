"""Hysteresis-banded autoscaling policy for elastic resharding.

The :class:`Autoscaler` watches a :class:`~repro.shard.engine
.ShardedEstimator`'s per-shard load table (the public
:meth:`~repro.shard.partition.Partitioner.load_table` accessor — the
same signal ``bench_fig10_load_balance.py`` studies for threads) and
decides when the topology should split (double ``K``) or merge (halve
``K``).  It is a pure policy object: it never calls ``reshard``
itself, so the same instance drives a session loop, the serving
layer's ``--autoscale`` flag, or a test harness feeding it synthetic
observations.

Thrash is kept out with three classic guards (``docs/resharding.md``):

* **Hysteresis bands** — mean per-shard load per observation must
  leave the ``[low_load, high_load]`` band before anything happens;
  inside the band both dwell counters reset.
* **Dwell** — the load must stay out of band for ``dwell``
  *consecutive* observations; one spiky poll never triggers.
* **Settle** — after a reshard (any epoch change, including manual
  ones) at least ``settle_elements`` elements must flow before the
  next split/merge, because the replayed residue makes the first
  post-reshard observations unrepresentative.

>>> from repro.shard.engine import ShardedEstimator
>>> from repro.types import insertion
>>> engine = ShardedEstimator("exact", shards=1, backend="serial")
>>> scaler = Autoscaler(max_shards=4, high_load=10, low_load=1,
...                     dwell=2, settle_elements=0)
>>> scaler.observe(engine).action      # first poll opens the window
'hold'
>>> _ = engine.process_batch([insertion(u, f"r{v}")
...                           for u in range(8) for v in range(4)])
>>> scaler.observe(engine).action      # out of band once: dwell
'hold'
>>> _ = engine.process_batch([insertion(u, f"r{v}")
...                           for u in range(8) for v in range(4, 8)])
>>> decision = scaler.observe(engine)  # twice in a row: act
>>> decision.action, decision.target_shards
('split', 2)
>>> engine.close()
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import SpecError
from repro.shard.engine import ShardedEstimator

__all__ = ["AutoscaleDecision", "Autoscaler"]


@dataclasses.dataclass(frozen=True)
class AutoscaleDecision:
    """One :meth:`Autoscaler.observe` verdict.

    Attributes:
        action: ``"hold"``, ``"split"``, or ``"merge"``.
        current_shards: the topology ``K`` at observation time.
        target_shards: the recommended ``K'`` (equals
            ``current_shards`` on hold).
        mean_load: mean per-shard elements routed since the previous
            observation.
        reason: one human-readable line explaining the verdict.
    """

    action: str
    current_shards: int
    target_shards: int
    mean_load: float
    reason: str

    @property
    def should_reshard(self) -> bool:
        return self.action != "hold"


class Autoscaler:
    """Split/merge policy over a sharded engine's load table.

    Args:
        min_shards: never merge below this ``K``.
        max_shards: never split above this ``K``.
        high_load: mean per-shard elements per observation above which
            the topology is overloaded.
        low_load: mean per-shard load below which it is over-provisioned
            (only meaningful when ``K > min_shards``).  Keep
            ``low_load * 2 < high_load`` or a merge would immediately
            re-trigger a split at the same traffic.
        dwell: consecutive out-of-band observations required to act.
        settle_elements: elements that must flow after an epoch change
            before the next split/merge is allowed.
    """

    def __init__(
        self,
        *,
        min_shards: int = 1,
        max_shards: int = 8,
        high_load: float = 4096.0,
        low_load: float = 512.0,
        dwell: int = 3,
        settle_elements: int = 1024,
    ) -> None:
        if not 1 <= min_shards <= max_shards:
            raise SpecError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{min_shards}..{max_shards}"
            )
        if low_load < 0 or high_load <= low_load:
            raise SpecError(
                f"need 0 <= low_load < high_load, got "
                f"low={low_load}, high={high_load}"
            )
        if dwell < 1:
            raise SpecError(f"dwell must be >= 1, got {dwell}")
        if settle_elements < 0:
            raise SpecError(
                f"settle_elements must be >= 0, got {settle_elements}"
            )
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.high_load = high_load
        self.low_load = low_load
        self.dwell = dwell
        self.settle_elements = settle_elements
        self._epoch: Optional[int] = None
        self._last_total = 0
        self._since_epoch = 0
        self._high_streak = 0
        self._low_streak = 0

    def _reset_window(self, epoch: int, total: int) -> None:
        self._epoch = epoch
        self._last_total = total
        self._since_epoch = 0
        self._high_streak = 0
        self._low_streak = 0

    def observe(self, engine: ShardedEstimator) -> AutoscaleDecision:
        """Poll ``engine`` once; return the split/merge/hold verdict.

        Call at a roughly steady cadence — the bands are calibrated in
        elements per observation interval.
        """
        shards = engine.num_shards
        table = engine.partitioner.load_table()
        total = sum(table)
        if self._epoch != engine.epoch:
            # New topology (ours or a manual reshard): the load table
            # restarted (seeded with the replayed residue), so start a
            # fresh window and a fresh settle period.
            self._reset_window(engine.epoch, total)
            return self._hold(
                shards, 0.0, "new epoch: settling after reshard"
            )
        delta = total - self._last_total
        self._last_total = total
        self._since_epoch += delta
        mean_load = delta / shards

        if mean_load > self.high_load:
            self._high_streak += 1
            self._low_streak = 0
        elif mean_load < self.low_load:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0

        if self._since_epoch < self.settle_elements:
            return self._hold(
                shards,
                mean_load,
                f"settling: {self._since_epoch}/{self.settle_elements} "
                "elements since last epoch",
            )
        if self._high_streak >= self.dwell:
            if shards >= self.max_shards:
                return self._hold(
                    shards, mean_load, "overloaded but at max_shards"
                )
            target = min(shards * 2, self.max_shards)
            return AutoscaleDecision(
                action="split",
                current_shards=shards,
                target_shards=target,
                mean_load=mean_load,
                reason=(
                    f"mean load {mean_load:.0f} > {self.high_load:.0f} "
                    f"for {self._high_streak} observations"
                ),
            )
        if self._low_streak >= self.dwell:
            if shards <= self.min_shards:
                return self._hold(
                    shards, mean_load, "underloaded but at min_shards"
                )
            target = max(shards // 2, self.min_shards)
            return AutoscaleDecision(
                action="merge",
                current_shards=shards,
                target_shards=target,
                mean_load=mean_load,
                reason=(
                    f"mean load {mean_load:.0f} < {self.low_load:.0f} "
                    f"for {self._low_streak} observations"
                ),
            )
        return self._hold(shards, mean_load, "inside hysteresis band")

    @staticmethod
    def _hold(
        shards: int, mean_load: float, reason: str
    ) -> AutoscaleDecision:
        return AutoscaleDecision(
            action="hold",
            current_shards=shards,
            target_shards=shards,
            mean_load=mean_load,
            reason=reason,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Autoscaler(min={self.min_shards}, max={self.max_shards}, "
            f"band=[{self.low_load}, {self.high_load}], "
            f"dwell={self.dwell})"
        )
