"""The sharded ingestion engine: ``ShardedEstimator``.

Hash-partitions a fully dynamic stream across ``K`` independent
estimator shards and merges their estimates into one global estimate
with an explicit cross-shard correction.

**The shard-merge contract** (derivation in ``docs/architecture.md``):
with a left-vertex partitioner, a butterfly ``(u1, u2, v1, v2)`` lands
entirely inside one shard exactly when its two left vertices collide,
which the uniform-hash model puts at probability ``1/K``.  Each shard
runs an unbiased estimator over a valid fully-dynamic substream (a
deletion always follows its insertion to the same shard), so

    E[ sum_s  estimate_s ]  =  |B| / K
    global estimate         =  K * sum_s estimate_s      (unbiased)

The correction is exposed as :attr:`ShardedEstimator.correction`; the
identity behind it is verified *exactly* against the oracle in
``tests/shard/test_engine.py`` (sharded-exact equals the brute-force
count of left-collision butterflies) and *statistically* over many hash
salts for unbiasedness.

``ShardedEstimator`` is itself a regular
:class:`~repro.core.base.ButterflyEstimator` registered under the name
``"sharded"``, so everything the session layer provides — checkpoint
offsets, observers, auto-chunked ``ingest``, snapshot/restore — applies
to sharded ingestion unchanged.

>>> from repro.types import insertion
>>> engine = ShardedEstimator("exact", shards=2, backend="serial")
>>> engine.process_batch([insertion(0, 10), insertion(0, 11),
...                       insertion(2, 10), insertion(2, 11)])
2.0
>>> engine.shard_estimates()   # left vertices 0 and 2 share shard 0
(1.0, 0.0)
>>> engine.estimate            # K * sum: corrects for lost cross-shard butterflies
2.0
>>> engine.close()
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.registry import (
    EstimatorSpec,
    Param,
    SpecLike,
    build_estimator,
    get_registration,
    parse_spec,
    register_estimator,
)
from repro.core.base import ButterflyEstimator
from repro.errors import EstimatorError, SpecError
from repro.faults import fault_point
from repro.shard.backends import BACKEND_NAMES, ShardBackend, make_backend
from repro.shard.partition import (
    Partitioner,
    _as_vertex,
    make_partitioner,
    partitioner_from_state,
    shard_seed,
)
from repro.types import StreamElement, Vertex, insertion

__all__ = ["ReshardReport", "ShardedEstimator"]


@dataclasses.dataclass(frozen=True)
class ReshardReport:
    """What one :meth:`ShardedEstimator.reshard` did.

    Attributes:
        old_shards: partition count before the reshard.
        new_shards: partition count after it.
        epoch: the partitioner epoch now in force.
        replayed_edges: live edges replayed into the new topology
            (the whole residue — every live edge re-routes, because
            per-shard sampler state cannot be split or merged).
        moved_edges: replayed edges whose owning shard index changed.
        backend: backend name running the new topology.
        seconds: wall-clock cost of the transition.
    """

    old_shards: int
    new_shards: int
    epoch: int
    replayed_edges: int
    moved_edges: int
    backend: str
    seconds: float


class ShardedEstimator(ButterflyEstimator):
    """K independent estimator shards behind one estimator interface.

    Args:
        inner: spec (string/dict/:class:`EstimatorSpec`) of the
            per-shard estimator.  The registration must declare
            ``supports_sharding``; its memory budget applies **per
            shard** (total memory is ``shards`` times it).
        shards: number of partitions ``K``.
        backend: ``"serial"``, ``"thread"``, or ``"process"`` (see
            :mod:`repro.shard.backends`).
        partitioner: ``"hash"`` (stateless, unbiased) or ``"balanced"``
            (greedy load-balancing, Fig. 10 style).
        salt: partitioner salt — varies the partition map without
            touching estimator seeds.
        seed: base RNG seed; shard ``i`` samples with
            :func:`~repro.shard.partition.shard_seed` ``(seed, i, K)``.
            Defaults to the inner spec's own ``seed`` when present.
            With ``shards=1`` the base seed passes through unchanged,
            so a 1-sharded estimator is bit-identical to the plain one.

    The per-shard estimates are merged as ``correction * sum`` with
    ``correction = 1 / collision_probability = K`` (module docstring).
    All three backends are bit-identical for a fixed seed and partition
    map; the suite enforces it in ``tests/shard/test_backends.py``.
    """

    name = "Sharded"
    supports_batch = True
    #: Shards of shards are not supported (the correction would not
    #: compose), and nothing is gained by nesting.
    supports_sharding = False

    def __init__(
        self,
        inner: SpecLike = "abacus",
        shards: int = 4,
        backend: str = "serial",
        partitioner: str = "hash",
        salt: int = 0,
        seed: Optional[int] = None,
        _restore_states: Optional[Sequence[Dict[str, Any]]] = None,
        _partitioner_state: Optional[Dict[str, Any]] = None,
        _restore_residue: Optional[Sequence[Sequence[Any]]] = None,
        _restore_arrival: int = 0,
    ) -> None:
        if shards < 1:
            raise SpecError(f"shards must be >= 1, got {shards}")
        self._inner_spec = parse_spec(inner)
        registration = get_registration(self._inner_spec.name)
        if not registration.supports_sharding:
            raise SpecError(
                f"estimator {registration.name!r} does not support "
                "sharding (Registration.supports_sharding is false)"
            )
        self._registration = registration
        self._num_shards = shards
        self._backend_name = backend.strip().lower()
        if self._backend_name not in BACKEND_NAMES:
            raise SpecError(
                f"unknown shard backend {backend!r}; "
                f"available: {', '.join(BACKEND_NAMES)}"
            )
        self._salt = salt
        self._seed = seed
        if _partitioner_state is not None:
            self._partitioner = partitioner_from_state(_partitioner_state)
            if self._partitioner.num_shards != shards:
                raise EstimatorError(
                    "partitioner state disagrees with shard count"
                )
        else:
            self._partitioner = make_partitioner(partitioner, shards, salt)
        self._shard_specs = self._derive_shard_specs(shards)
        self._backend = self._build_backend(_restore_states)
        self._metrics_cache: Optional[List[Tuple[float, int]]] = None
        self._closed = False
        # The residue: every live edge with its arrival index, the
        # replay set a reshard re-routes through the next topology
        # (``docs/resharding.md``).  Restored snapshots written before
        # residue tracking existed leave it incomplete, which only
        # forbids resharding — everything else works as before.
        self._residue: Dict[Tuple[Vertex, Vertex], int] = {}
        self._arrival = int(_restore_arrival)
        self._residue_complete = True
        if _restore_residue is not None:
            for entry in _restore_residue:
                u, v, index = entry
                self._residue[(_as_vertex(u), _as_vertex(v))] = int(index)
        elif _restore_states is not None:
            self._residue_complete = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _derive_shard_specs(self, num_shards: int) -> List[EstimatorSpec]:
        """Per-shard specs: the inner spec with independent seeds.

        Parameterised by the shard count so a reshard derives the
        specs for its *target* topology with the same rule.
        """
        spec = self._inner_spec
        if "seed" not in self._registration.param_names:
            return [spec] * num_shards
        base = self._seed
        if base is None:
            base = spec.params.get("seed")
        if base is None:
            return [spec] * num_shards
        return [
            spec.with_overrides(
                seed=shard_seed(int(base), index, num_shards)
            )
            for index in range(num_shards)
        ]

    def _build_backend(
        self, states: Optional[Sequence[Dict[str, Any]]]
    ) -> ShardBackend:
        if states is not None and len(states) != self._num_shards:
            raise EstimatorError(
                f"expected {self._num_shards} shard states, got {len(states)}"
            )
        if states is None:
            return self._build_fresh_backend(
                self._shard_specs, self._backend_name
            )
        if self._backend_name == "process":
            payloads = [
                {"restore": {"name": self._registration.name, "state": s}}
                for s in states
            ]
            return make_backend("process", payloads=payloads)
        estimators = [self._registration.restore(s) for s in states]
        return make_backend(self._backend_name, estimators=estimators)

    def _build_fresh_backend(
        self, specs: Sequence[EstimatorSpec], backend_name: str
    ) -> ShardBackend:
        """Empty estimators from ``specs`` on a new ``backend_name``."""
        if backend_name == "process":
            payloads = [{"spec": s.to_dict()} for s in specs]
            return make_backend("process", payloads=payloads)
        estimators = [build_estimator(s) for s in specs]
        return make_backend(backend_name, estimators=estimators)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """The partition count ``K``."""
        return self._num_shards

    @property
    def backend(self) -> ShardBackend:
        """The executor backend running the shards."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """The registry name of the running backend."""
        return self._backend_name

    @property
    def partitioner(self) -> Partitioner:
        """The element router (shared, stateful for ``balanced``)."""
        return self._partitioner

    @property
    def inner_spec(self) -> EstimatorSpec:
        """The per-shard estimator spec (without per-shard seeds)."""
        return self._inner_spec

    @property
    def shard_specs(self) -> Tuple[EstimatorSpec, ...]:
        """The seeded per-shard specs actually built."""
        return tuple(self._shard_specs)

    @property
    def epoch(self) -> int:
        """The topology version: 0 at birth, +1 per :meth:`reshard`."""
        return self._partitioner.epoch

    @property
    def live_edges(self) -> int:
        """Edges currently alive (insertions minus their deletions)."""
        return len(self._residue)

    @property
    def correction(self) -> float:
        """The cross-shard correction ``1 / collision_probability``.

        Multiplies the summed per-shard estimates; equals ``K`` for the
        shipped left-vertex partitioners.
        """
        return 1.0 / self._partitioner.collision_probability

    def _metrics(self) -> List[Tuple[float, int]]:
        if self._metrics_cache is None:
            self._metrics_cache = self._backend.metrics()
        return self._metrics_cache

    def shard_estimates(self) -> Tuple[float, ...]:
        """Raw (uncorrected) per-shard estimates, indexed by shard."""
        return tuple(estimate for estimate, _ in self._metrics())

    @property
    def estimate(self) -> float:
        """``correction * sum`` of per-shard estimates (shard order)."""
        return self.correction * sum(e for e, _ in self._metrics())

    @property
    def memory_edges(self) -> int:
        """Total edges held across all shards."""
        return sum(edges for _, edges in self._metrics())

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise EstimatorError("sharded estimator is closed")

    def _note_element(self, element: StreamElement) -> None:
        """Track ``element`` in the residue (call only after the
        backend accepted it, mirroring the session's WAL rollback
        rule: a refused batch must not desynchronise the replay set).
        """
        key = (element.u, element.v)
        if element.is_insertion:
            self._residue[key] = self._arrival
        else:
            self._residue.pop(key, None)
        self._arrival += 1

    def process(self, element: StreamElement) -> float:
        """Route one element to its shard; return the *corrected* delta."""
        self._check_open()
        shard = self._partitioner.assign(element)
        batches: List[Optional[List[StreamElement]]] = [
            None
        ] * self._num_shards
        batches[shard] = [element]
        deltas = self._backend.process_batches(batches)
        self._metrics_cache = None
        self._note_element(element)
        return self.correction * deltas[shard]

    def process_batch(self, batch: Sequence[StreamElement]) -> float:
        """Partition ``batch`` and fan it out; return the corrected delta.

        Each shard receives its elements in stream order, so for any
        chunking of a stream the per-shard element sequences — and
        therefore the per-shard states — are identical, which is what
        makes sharded ingestion inherit the session layer's
        batched-vs-per-element equivalence guarantees.
        """
        self._check_open()
        if not batch:
            return 0.0
        assign = self._partitioner.assign
        batches: List[Optional[List[StreamElement]]] = [
            None
        ] * self._num_shards
        for element in batch:
            shard = assign(element)
            bucket = batches[shard]
            if bucket is None:
                bucket = batches[shard] = []
            bucket.append(element)
        deltas = self._backend.process_batches(batches)
        self._metrics_cache = None
        for element in batch:
            self._note_element(element)
        return self.correction * sum(deltas)

    def flush(self) -> float:
        """Flush buffered work on every shard; corrected delta.

        A no-op (0.0) once the engine is closed — closing already
        flushed or discarded the shards, and the session facade calls
        ``flush`` during its own cleanup.
        """
        if self._closed:
            return 0.0
        deltas = self._backend.flush()
        self._metrics_cache = None
        return self.correction * sum(deltas)

    # ------------------------------------------------------------------
    # Elastic resharding
    # ------------------------------------------------------------------
    def reshard(
        self,
        shards: int,
        *,
        backend: Optional[str] = None,
        partitioner: Optional[str] = None,
        salt: Optional[int] = None,
    ) -> ReshardReport:
        """Live split/merge to a ``shards``-way topology.

        Per-shard sampler state cannot be split or merged without
        breaking the inner estimator's sampling invariants, so the
        transition replays the **residue** — every live edge, in
        arrival order — into freshly seeded estimators behind a new
        partitioner at epoch ``+1``.  The K-correction identity holds
        on both sides of the swap: before it the old ``K`` corrects
        the old shards, after it the new ``K'`` corrects the new ones,
        and the replay is itself a valid stream (insertions only), so
        the merged estimate stays unbiased for the same live graph
        (``docs/resharding.md`` walks through the argument).

        The swap is atomic from the caller's view: until every new
        shard has absorbed its residue the old topology keeps
        answering, and any failure while building the new one tears it
        down and leaves the engine exactly as it was.  ``shards`` may
        equal the current count — the epoch bump still remixes the
        partition map, which is the "rebalance in place" case.

        Args:
            shards: the target partition count ``K'`` (>= 1).
            backend: optional backend switch for the new topology.
            partitioner: optional partitioner switch.
            salt: optional new partition-map salt (the epoch bump
                already remixes routing; pass a salt only to make the
                new map reproducible independently of epoch history).

        Returns:
            A :class:`ReshardReport` describing the transition.

        Raises:
            EstimatorError: if the engine was restored from a snapshot
                written before residue tracking existed (the replay
                set would be incomplete), or is closed.
        """
        self._check_open()
        if shards < 1:
            raise SpecError(f"shards must be >= 1, got {shards}")
        if not self._residue_complete:
            raise EstimatorError(
                "cannot reshard: this engine was restored from a "
                "snapshot written before residue tracking existed, so "
                "the live-edge replay set is incomplete; re-ingest "
                "through a current snapshot first"
            )
        backend_name = (backend or self._backend_name).strip().lower()
        if backend_name not in BACKEND_NAMES:
            raise SpecError(
                f"unknown shard backend {backend!r}; "
                f"available: {', '.join(BACKEND_NAMES)}"
            )
        partitioner_name = partitioner or self._partitioner.name
        new_salt = self._salt if salt is None else salt
        started = time.perf_counter()

        # 1. Order the replay set.  The old topology stays fully live
        #    (and keeps answering queries) until the swap below.
        ordered = sorted(self._residue.items(), key=lambda item: item[1])
        fault_point("reshard.prepared")

        # 2. Build the target topology and replay the residue into it.
        epoch = self._partitioner.epoch + 1
        new_partitioner = make_partitioner(
            partitioner_name, shards, new_salt, epoch
        )
        new_specs = self._derive_shard_specs(shards)
        new_backend = self._build_fresh_backend(new_specs, backend_name)
        try:
            moved = 0
            batches: List[Optional[List[StreamElement]]] = [None] * shards
            for (u, v), _index in ordered:
                element = insertion(u, v)
                shard = new_partitioner.assign(element)
                if shard != self._partitioner.shard_of(u):
                    moved += 1
                bucket = batches[shard]
                if bucket is None:
                    bucket = batches[shard] = []
                bucket.append(element)
            if ordered:
                new_backend.process_batches(batches)
            # Drain inner buffers (PARABACUS mini-batches) so the
            # post-swap state is bit-identical to a fresh engine that
            # ingested the residue and flushed — the twin the chaos
            # harness compares against.
            new_backend.flush()
            fault_point("reshard.built")
        except BaseException:
            # Includes SimulatedCrash: the half-built topology must
            # not leak workers, and the engine stays on the old one.
            new_backend.close()
            raise

        # 3. Atomic swap, then tear down the old topology.
        old_backend = self._backend
        old_shards = self._num_shards
        self._partitioner = new_partitioner
        self._num_shards = shards
        self._backend_name = backend_name
        self._salt = new_salt
        self._shard_specs = new_specs
        self._backend = new_backend
        self._metrics_cache = None
        old_backend.close()
        fault_point("reshard.swapped")
        return ReshardReport(
            old_shards=old_shards,
            new_shards=shards,
            epoch=epoch,
            replayed_edges=len(ordered),
            moved_edges=moved,
            backend=backend_name,
            seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # StatefulEstimator protocol
    # ------------------------------------------------------------------
    def state_to_dict(self) -> Dict[str, Any]:
        """Full engine state: configuration, partitioner, shard states.

        Requires the inner estimator to support the snapshot protocol;
        shard states round-trip through the workers for the process
        backend (the only way state ever leaves a worker).
        """
        self._check_open()
        if not self._registration.supports_snapshot:
            raise SpecError(
                f"inner estimator {self._registration.name!r} does not "
                "support snapshot/restore, so the sharded engine cannot "
                "either"
            )
        state: Dict[str, Any] = {
            "inner": self._inner_spec.to_string(),
            "shards": self._num_shards,
            "backend": self._backend_name,
            "salt": self._salt,
            "seed": self._seed,
            "partitioner": self._partitioner.state_to_dict(),
            "shard_states": self._backend.states(),
            "arrival": self._arrival,
        }
        if self._residue_complete:
            # Arrival order, so restore + reshard replays identically.
            state["residue"] = [
                [u, v, index]
                for (u, v), index in sorted(
                    self._residue.items(), key=lambda item: item[1]
                )
            ]
        return state

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "ShardedEstimator":
        """Rebuild the engine (and its workers) from a state dict."""
        try:
            return cls(
                inner=state["inner"],
                shards=int(state["shards"]),
                backend=state["backend"],
                salt=int(state.get("salt", 0)),
                seed=state.get("seed"),
                _restore_states=state["shard_states"],
                _partitioner_state=state["partitioner"],
                _restore_residue=state.get("residue"),
                _restore_arrival=int(state.get("arrival", 0)),
            )
        except KeyError as exc:
            raise EstimatorError(
                f"sharded estimator state is missing field {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the backend (terminates process workers); idempotent.

        The final per-shard metrics are cached first, so ``estimate``,
        ``shard_estimates`` and ``memory_edges`` keep answering with the
        closing values on every backend (process workers are gone after
        this); only ingestion and snapshots are refused once closed.
        """
        if self._closed:
            return
        try:
            self._metrics()
        except Exception:  # pragma: no cover - backend already dead
            # Dead workers surface as EstimatorError or raw pipe errors
            # (BrokenPipeError from send); either way the backend must
            # still be torn down below, so never let this escape.
            self._metrics_cache = [(0.0, 0)] * self._num_shards
        self._closed = True
        self._backend.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEstimator({self._inner_spec.to_string()!r}, "
            f"shards={self._num_shards}, backend={self._backend_name!r})"
        )


@register_estimator(
    "sharded",
    params=(
        Param("inner", str, "abacus", doc="per-shard estimator spec"),
        Param("shards", int, 4, doc="partition count K"),
        Param("backend", str, "serial", doc="serial | thread | process"),
        Param("partitioner", str, "hash", doc="hash | balanced"),
        Param("salt", int, 0, doc="partition-map salt"),
        Param(
            "seed",
            int,
            doc="base RNG seed (per-shard seeds derive from it)",
        ),
    ),
    description=(
        "Sharded fan-out over K independent estimator shards "
        "(K-corrected merge; serial/thread/process backends)"
    ),
    cls=ShardedEstimator,
)
def _build_sharded(**params: Any) -> ButterflyEstimator:
    return ShardedEstimator(**params)
