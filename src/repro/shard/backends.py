"""Executor backends that run the estimator shards.

A backend owns ``K`` independent shard estimators and executes batches
against them.  The engine guarantees each shard always receives its
elements in stream order; backends guarantee each shard's work runs in
exactly one place, so all three produce **bit-identical** per-shard
results for a fixed seed and partition map:

* :class:`SerialBackend` — plain in-process loop (zero overhead, the
  reference semantics).
* :class:`ThreadBackend` — one thread-pool task per shard batch.
  Python's GIL means little wall-clock gain for the pure-Python
  counting kernels, but shard work overlaps any NumPy/IO release
  points and the backend doubles as the concurrency-correctness
  reference for the process backend.
* :class:`ProcessBackend` — one persistent worker process per shard,
  fed over pipes.  Workers build their estimator from the spec (or
  restore it from a ``state_to_dict`` payload) and hold it for the
  backend's lifetime; state leaves a worker only through the same
  snapshot protocol (:meth:`ShardBackend.states`), which is how
  sharded sessions checkpoint and how ``close`` keeps nothing behind.

Backends expose a deliberately small surface —
``process_batches / flush / metrics / states / close`` — so a future
multi-machine backend (the ROADMAP north star) only has to speak this
protocol plus serialisation.
"""

from __future__ import annotations

import abc
import multiprocessing
import multiprocessing.connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.base import ButterflyEstimator
from repro.errors import EstimatorError, SpecError
from repro.types import Op, StreamElement

__all__ = [
    "BACKEND_NAMES",
    "ProcessBackend",
    "SerialBackend",
    "ShardBackend",
    "ThreadBackend",
    "make_backend",
]

#: The accepted ``backend=`` names, sorted.
BACKEND_NAMES = ("process", "serial", "thread")

#: Wire format for one element: (u, v, op symbol).
_WireElement = Tuple[Any, Any, str]


def _encode_batch(batch: Sequence[StreamElement]) -> List[_WireElement]:
    return [(e.u, e.v, e.op.value) for e in batch]


def _decode_batch(wire: Sequence[_WireElement]) -> List[StreamElement]:
    insert, delete = Op.INSERT, Op.DELETE
    return [
        StreamElement(u, v, insert if symbol == "+" else delete)
        for u, v, symbol in wire
    ]


class ShardBackend(abc.ABC):
    """The execution protocol shared by serial/thread/process backends."""

    #: Registry name ("serial", "thread", "process").
    name: str = ""

    @property
    @abc.abstractmethod
    def num_shards(self) -> int:
        """How many shards this backend runs."""

    @abc.abstractmethod
    def process_batches(
        self, batches: Sequence[Optional[Sequence[StreamElement]]]
    ) -> List[float]:
        """Run one batch per shard (``None``/empty skips that shard).

        Returns the per-shard estimate deltas, indexed by shard.
        """

    @abc.abstractmethod
    def flush(self) -> List[float]:
        """Flush buffered work on every shard; per-shard deltas."""

    @abc.abstractmethod
    def metrics(self) -> List[Tuple[float, int]]:
        """Per-shard ``(estimate, memory_edges)`` pairs."""

    @abc.abstractmethod
    def states(self) -> List[Dict[str, Any]]:
        """Per-shard ``state_to_dict`` payloads (snapshot protocol)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release executor resources; idempotent."""


class _InProcessBackend(ShardBackend):
    """Shared plumbing for backends holding live estimator instances."""

    def __init__(self, estimators: Sequence[ButterflyEstimator]) -> None:
        if not estimators:
            raise SpecError("a shard backend needs at least one estimator")
        self._estimators = list(estimators)

    @property
    def num_shards(self) -> int:
        return len(self._estimators)

    @property
    def estimators(self) -> Tuple[ButterflyEstimator, ...]:
        """The live shard estimators (shared, not copies)."""
        return tuple(self._estimators)

    def flush(self) -> List[float]:
        deltas = []
        for estimator in self._estimators:
            flusher = getattr(estimator, "flush", None)
            deltas.append(float(flusher()) if flusher is not None else 0.0)
        return deltas

    def metrics(self) -> List[Tuple[float, int]]:
        return [(e.estimate, e.memory_edges) for e in self._estimators]

    def states(self) -> List[Dict[str, Any]]:
        states = []
        for estimator in self._estimators:
            if not hasattr(estimator, "state_to_dict"):
                raise SpecError(
                    f"shard estimator {type(estimator).__name__} does not "
                    "support snapshot (no state_to_dict)"
                )
            states.append(estimator.state_to_dict())
        return states

    def close(self) -> None:
        for estimator in self._estimators:
            closer = getattr(estimator, "close", None)
            if closer is not None:
                closer()


class SerialBackend(_InProcessBackend):
    """Run every shard in the calling thread, in shard order."""

    name = "serial"

    def process_batches(
        self, batches: Sequence[Optional[Sequence[StreamElement]]]
    ) -> List[float]:
        deltas = [0.0] * len(self._estimators)
        for shard, batch in enumerate(batches):
            if batch:
                deltas[shard] = self._estimators[shard].process_batch(batch)
        return deltas


class ThreadBackend(_InProcessBackend):
    """Run shard batches as concurrent thread-pool tasks.

    Each shard's batch is a single task, so per-shard sequencing — the
    property the bit-identical guarantee rests on — is preserved by
    construction; only cross-shard work interleaves.
    """

    name = "thread"

    def __init__(self, estimators: Sequence[ButterflyEstimator]) -> None:
        super().__init__(estimators)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=len(self._estimators),
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def process_batches(
        self, batches: Sequence[Optional[Sequence[StreamElement]]]
    ) -> List[float]:
        pool = self._ensure_pool()
        deltas = [0.0] * len(self._estimators)
        futures = {
            shard: pool.submit(self._estimators[shard].process_batch, batch)
            for shard, batch in enumerate(batches)
            if batch
        }
        for shard, future in futures.items():
            deltas[shard] = future.result()
        return deltas

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


# ----------------------------------------------------------------------
# Process backend
# ----------------------------------------------------------------------
def _shard_worker(
    conn: multiprocessing.connection.Connection, payload: Dict[str, Any]
) -> None:
    """Worker-process main loop: build/restore one estimator, serve it.

    Runs until a ``("close",)`` message or EOF.  Every reply is a
    ``("ok", value)`` or ``("error", message)`` pair so estimator
    exceptions surface in the coordinator instead of killing the pipe.
    """
    import repro.api.builtin  # noqa: F401  (populate the registry under spawn)
    from repro.api.registry import build_estimator, get_registration

    try:
        if "restore" in payload:
            registration = get_registration(payload["restore"]["name"])
            estimator = registration.restore(payload["restore"]["state"])
        else:
            estimator = build_estimator(payload["spec"])
    except Exception as exc:  # pragma: no cover - defensive
        conn.send(("error", f"shard worker failed to build estimator: {exc}"))
        return
    def reply(payload: Tuple[str, Any]) -> bool:
        # Best-effort: a vanished coordinator must end the worker
        # quietly, not with a BrokenPipeError traceback on stderr.
        try:
            conn.send(payload)
            return True
        except (OSError, ValueError):
            return False

    reply(("ok", None))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        command = message[0]
        try:
            if command == "batch":
                result: Any = estimator.process_batch(
                    _decode_batch(message[1])
                )
            elif command == "flush":
                flusher = getattr(estimator, "flush", None)
                result = float(flusher()) if flusher is not None else 0.0
            elif command == "metrics":
                result = (estimator.estimate, estimator.memory_edges)
            elif command == "state":
                if not hasattr(estimator, "state_to_dict"):
                    raise SpecError(
                        f"shard estimator {type(estimator).__name__} does "
                        "not support snapshot (no state_to_dict)"
                    )
                result = estimator.state_to_dict()
            elif command == "close":
                reply(("ok", None))
                return
            else:  # pragma: no cover - protocol misuse
                raise EstimatorError(f"unknown shard command {command!r}")
        except Exception as exc:
            if not reply(("error", f"{type(exc).__name__}: {exc}")):
                return
        else:
            if not reply(("ok", result)):
                return


class ProcessBackend(ShardBackend):
    """One persistent worker process per shard, fed over pipes.

    Workers are started eagerly from build payloads — either
    ``{"spec": <spec dict>}`` (fresh estimator, built in the worker via
    the registry) or ``{"restore": {"name": ..., "state": ...}}`` (the
    snapshot protocol, used when a sharded session is restored).  The
    coordinator encodes batches as plain ``(u, v, op)`` tuples; full
    estimator state only ever crosses the pipe through
    ``state_to_dict`` payloads.

    Uses the ``fork`` start method where available (cheap, inherits the
    registry) and falls back to the platform default elsewhere; either
    way results are bit-identical to :class:`SerialBackend` because the
    worker runs the same estimator code on the same element sequence
    with the same seed.
    """

    name = "process"

    def __init__(self, payloads: Sequence[Dict[str, Any]]) -> None:
        if not payloads:
            raise SpecError("a shard backend needs at least one estimator")
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._connections: List[Any] = []
        self._processes: List[Any] = []
        try:
            for payload in payloads:
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_shard_worker,
                    args=(child_end, payload),
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._connections.append(parent_end)
                self._processes.append(process)
            # Wait for every worker to confirm its estimator built.
            for connection in self._connections:
                self._read_reply(connection)
        except BaseException:
            self.close()
            raise

    @property
    def num_shards(self) -> int:
        return len(self._processes)

    @property
    def processes(self) -> Tuple[Any, ...]:
        """The live worker process handles, indexed by shard.

        Exposed for fault injection (``tests/chaos/``): killing one of
        these simulates a shard worker dying mid-stream, which must
        surface as :class:`~repro.errors.EstimatorError` on the next
        command rather than a hang or a silent wrong answer.
        """
        return tuple(self._processes)

    @staticmethod
    def _read_reply(connection) -> Any:
        try:
            status, value = connection.recv()
        except (EOFError, OSError):
            # EOF for a worker that exited; ECONNRESET for one that
            # was killed with its pipe still carrying data.
            raise EstimatorError(
                "shard worker exited unexpectedly (broken pipe)"
            ) from None
        if status == "error":
            raise EstimatorError(f"shard worker failed: {value}")
        return value

    def _gather(self, shards: Sequence[int]) -> List[Any]:
        """Collect one reply per listed shard, in shard order.

        Every pending reply is drained before any error is raised —
        leaving replies unread would desynchronise the pipes and make
        every later command read the wrong reply.
        """
        replies: List[Any] = []
        failure: Optional[BaseException] = None
        for shard in shards:
            try:
                replies.append(self._read_reply(self._connections[shard]))
            except EstimatorError as exc:
                replies.append(None)
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return replies

    def _send(self, shard: int, message: Tuple[Any, ...]) -> bool:
        """Send to one worker; False when its pipe is already dead.

        A killed worker (chaos, OOM, operator) surfaces here as a
        broken pipe — callers turn that into a loud
        :class:`EstimatorError` *after* draining the replies the
        still-living workers owe, so the surviving pipes never
        desynchronise.
        """
        try:
            self._connections[shard].send(message)
            return True
        except (OSError, ValueError):
            return False

    def _scatter_gather(self, per_shard) -> List[Any]:
        """Send ``per_shard[shard]`` (None skips), gather, fail loud."""
        sent: List[int] = []
        dead: List[int] = []
        for shard, message in enumerate(per_shard):
            if message is None:
                continue
            (sent if self._send(shard, message) else dead).append(shard)
        failure: Optional[EstimatorError] = None
        replies: List[Any] = [None] * len(per_shard)
        try:
            for shard, reply in zip(sent, self._gather(sent)):
                replies[shard] = reply
        except EstimatorError as exc:
            failure = exc
        if dead:
            raise EstimatorError(
                f"shard worker {dead[0]} died (broken pipe); the "
                "sharded state is no longer trustworthy — recover the "
                "durable directory or rebuild the engine"
            )
        if failure is not None:
            raise failure
        return replies

    def _broadcast(self, message: Tuple[Any, ...]) -> List[Any]:
        """Send one message to all workers, then gather in shard order."""
        if not self._connections:
            raise EstimatorError("process backend is closed")
        return self._scatter_gather(
            [message] * len(self._connections)
        )

    def process_batches(
        self, batches: Sequence[Optional[Sequence[StreamElement]]]
    ) -> List[float]:
        if not self._connections:
            raise EstimatorError("process backend is closed")
        replies = self._scatter_gather([
            ("batch", _encode_batch(batch)) if batch else None
            for batch in batches
        ])
        return [
            reply if reply is not None else 0.0 for reply in replies
        ]

    def flush(self) -> List[float]:
        return self._broadcast(("flush",))

    def metrics(self) -> List[Tuple[float, int]]:
        return [tuple(pair) for pair in self._broadcast(("metrics",))]

    def states(self) -> List[Dict[str, Any]]:
        return self._broadcast(("state",))

    def close(self) -> None:
        connections, self._connections = self._connections, []
        processes, self._processes = self._processes, []
        for connection in connections:
            try:
                connection.send(("close",))
            except (OSError, ValueError):
                pass
        for connection in connections:
            # Drain the close acknowledgement so the worker's final
            # send never races the pipe teardown below.
            try:
                connection.recv()
            except (EOFError, OSError):
                pass
        for connection in connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def make_backend(
    name: str,
    *,
    estimators: Optional[Sequence[ButterflyEstimator]] = None,
    payloads: Optional[Sequence[Dict[str, Any]]] = None,
) -> ShardBackend:
    """Build a backend by name.

    Serial/thread backends take live ``estimators``; the process
    backend takes build ``payloads`` (see :class:`ProcessBackend`).
    The engine supplies the right one for the chosen name.

    Raises:
        SpecError: unknown backend name or missing inputs.
    """
    key = name.strip().lower()
    if key == "serial":
        if estimators is None:
            raise SpecError("serial backend needs estimator instances")
        return SerialBackend(estimators)
    if key == "thread":
        if estimators is None:
            raise SpecError("thread backend needs estimator instances")
        return ThreadBackend(estimators)
    if key == "process":
        if payloads is None:
            raise SpecError("process backend needs build payloads")
        return ProcessBackend(payloads)
    raise SpecError(
        f"unknown shard backend {name!r}; "
        f"available: {', '.join(BACKEND_NAMES)}"
    )
