"""Core value types shared by the whole library.

The stream model follows Definition 1 of the paper: a fully dynamic
bipartite graph stream is a sequence of elements ``({u, v}, delta)``
where ``delta`` is ``+`` (insertion) or ``-`` (deletion).  Vertices are
plain hashable identifiers; by convention the generators and loaders in
this repository produce integers for speed, but nothing below requires
that.

An (undirected) edge is canonicalised as a tuple ``(left_vertex,
right_vertex)`` so that the same physical edge always hashes equally no
matter which endpoint the caller mentions first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Hashable, List, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class Side(enum.Enum):
    """Which bipartition a vertex belongs to."""

    LEFT = "left"
    RIGHT = "right"

    def other(self) -> "Side":
        """Return the opposite side of the bipartition."""
        return Side.RIGHT if self is Side.LEFT else Side.LEFT


class Op(enum.Enum):
    """Stream operation: edge insertion (``+``) or deletion (``-``)."""

    INSERT = "+"
    DELETE = "-"

    @property
    def sign(self) -> int:
        """``sgn(delta)`` from Algorithm 1: +1 for insert, -1 for delete."""
        return 1 if self is Op.INSERT else -1

    @classmethod
    def from_symbol(cls, symbol: str) -> "Op":
        """Parse ``'+'`` / ``'-'`` (as used in stream files) into an Op."""
        if symbol == "+":
            return cls.INSERT
        if symbol == "-":
            return cls.DELETE
        raise ValueError(f"unknown stream operation symbol: {symbol!r}")


@dataclass(frozen=True, slots=True)
class StreamElement:
    """One element ``e(t) = ({u, v}, delta)`` of a fully dynamic stream.

    Attributes:
        u: the left-partition endpoint of the edge.
        v: the right-partition endpoint of the edge.
        op: whether the edge is being inserted or deleted.
    """

    u: Vertex
    v: Vertex
    op: Op = Op.INSERT

    @property
    def edge(self) -> Edge:
        """The edge as a canonical ``(left, right)`` tuple."""
        return (self.u, self.v)

    @property
    def is_insertion(self) -> bool:
        return self.op is Op.INSERT

    @property
    def is_deletion(self) -> bool:
        return self.op is Op.DELETE

    def inverted(self) -> "StreamElement":
        """The element that undoes this one (insert <-> delete)."""
        flipped = Op.DELETE if self.op is Op.INSERT else Op.INSERT
        return StreamElement(self.u, self.v, flipped)

    def to_record(self) -> List[Any]:
        """The element as a durable wire/log record.

        The record grammar — shared by the write-ahead log
        (:mod:`repro.store.wal`) and the serving wire protocol
        (:mod:`repro.serve.protocol`) — is a JSON-ready list::

            [op, u, v]          # StreamElement
            [op, u, v, time]    # TimedEdge

        where ``op`` is the stream symbol (``"+"`` / ``"-"``).
        Durability restricts vertices to the JSON-representable
        identifiers (``int``/``str``) that the snapshot protocol
        already requires; :meth:`from_record` rebuilds the exact
        element, :class:`TimedEdge` subclass included.  The packed
        binary codec (:mod:`repro.store.codec`, WAL format 2 and the
        opt-in wire batch payload) is a lossless re-encoding of this
        same grammar — ``tests/store/test_codec_conformance.py``
        proves the two interchangeable for every record shape.

        >>> insertion("alice", "matrix").to_record()
        ['+', 'alice', 'matrix']
        >>> timed_deletion(3, 7, 2.5).to_record()
        ['-', 3, 7, 2.5]
        """
        return [self.op.value, self.u, self.v]

    @staticmethod
    def from_record(record: List[Any]) -> "StreamElement":
        """Rebuild an element from :meth:`to_record` output.

        A 4-field record carries a timestamp and yields a
        :class:`TimedEdge`; a 3-field record yields a plain
        :class:`StreamElement`.  Malformed records raise ValueError
        (the store and serve layers wrap it into their own errors).

        >>> StreamElement.from_record(["+", "alice", "matrix"])
        StreamElement(u='alice', v='matrix', op=<Op.INSERT: '+'>)
        >>> element = StreamElement.from_record(["-", 3, 7, 2.5])
        >>> type(element).__name__, element.time
        ('TimedEdge', 2.5)
        """
        if not isinstance(record, (list, tuple)) or len(record) not in (
            3,
            4,
        ):
            raise ValueError(
                f"stream-element record must be [op, u, v(, time)], "
                f"got {record!r}"
            )
        op = Op.from_symbol(record[0])
        if len(record) == 4:
            try:
                time = float(record[3])
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"bad timestamp {record[3]!r} in element record"
                ) from exc
            return TimedEdge(record[1], record[2], op, time)
        return StreamElement(record[1], record[2], op)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.u}, {self.v}, {self.op.value})"


def insertion(u: Vertex, v: Vertex) -> StreamElement:
    """Convenience constructor for an insertion element."""
    return StreamElement(u, v, Op.INSERT)


def deletion(u: Vertex, v: Vertex) -> StreamElement:
    """Convenience constructor for a deletion element."""
    return StreamElement(u, v, Op.DELETE)


@dataclass(frozen=True, slots=True)
class TimedEdge(StreamElement):
    """A :class:`StreamElement` carrying an application timestamp.

    Time-based sliding windows (:mod:`repro.window`) need to know *when*
    an edge arrived, not just in what order; ``TimedEdge`` extends the
    stream element with a ``time`` field measured in arbitrary
    application units (seconds, ticks, ...).  Because it subclasses
    :class:`StreamElement`, every existing estimator and stream utility
    accepts it unchanged — the timestamp is simply ignored outside the
    windowing layer.

    Timestamps within one stream must be non-decreasing; the windowing
    engine enforces that at ingest time.

    >>> e = TimedEdge("alice", "matrix", time=12.5)
    >>> e.is_insertion, e.edge, e.time
    (True, ('alice', 'matrix'), 12.5)
    """

    time: float = 0.0

    def inverted(self) -> "TimedEdge":
        """The element that undoes this one, at the same timestamp."""
        flipped = Op.DELETE if self.op is Op.INSERT else Op.INSERT
        return TimedEdge(self.u, self.v, flipped, self.time)

    def to_record(self) -> List[Any]:
        """The 4-field ``[op, u, v, time]`` record (see base method).

        >>> timed_insertion("alice", "matrix", 12.5).to_record()
        ['+', 'alice', 'matrix', 12.5]
        """
        return [self.op.value, self.u, self.v, self.time]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.u}, {self.v}, {self.op.value}, t={self.time})"


def timed_insertion(u: Vertex, v: Vertex, time: float) -> TimedEdge:
    """Convenience constructor for a timestamped insertion element."""
    return TimedEdge(u, v, Op.INSERT, time)


def timed_deletion(u: Vertex, v: Vertex, time: float) -> TimedEdge:
    """Convenience constructor for a timestamped deletion element."""
    return TimedEdge(u, v, Op.DELETE, time)
