"""Fault-injection points for the chaos harness.

Production code marks the crash-critical instants of a multi-step
operation — the moments where a kill must leave recoverable state —
with a named :func:`fault_point` call.  In normal operation the call
is a dictionary-emptiness check and nothing more; the chaos suite
(``tests/chaos/``) *arms* a point with a handler that raises (or kills
a worker, or tears a file) exactly there, which is how the matrix
"every fault point × every reshardable spec" is enumerated instead of
guessed at.

The registry is deliberately global and process-local: chaos tests run
the system in-process and simulate the crash by abandoning the live
objects, then re-opening the durable directory — the same observable
sequence a real ``kill -9`` produces (PR-5's kill-at-every-byte tests
cover the torn-file side; fault points cover the torn-*operation*
side).

Every name callable from production code must be declared in
:data:`FAULT_POINTS` so the chaos matrix can enumerate the full set
and fail when a new point appears without coverage.

>>> fired = []
>>> with armed("reshard.prepared", lambda name: fired.append(name)):
...     fault_point("reshard.prepared")
>>> fired
['reshard.prepared']
>>> fault_point("reshard.prepared")   # disarmed again: a no-op
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator

__all__ = [
    "FAULT_POINTS",
    "SimulatedCrash",
    "arm",
    "armed",
    "crash_at",
    "disarm",
    "fault_point",
    "reset",
]

#: Every fault point the production code declares, with where it sits.
#: The chaos suite iterates this registry; adding a ``fault_point``
#: call site without listing it here fails
#: ``tests/chaos/test_fault_points.py``.
FAULT_POINTS: Dict[str, str] = {
    # ShardedEstimator.reshard — the live split/merge.
    "reshard.prepared": (
        "shards flushed and the residue ordered, before the new "
        "topology is built (old topology fully live)"
    ),
    "reshard.built": (
        "new shard estimators built and the residue replayed into "
        "them, before the engine swaps topologies"
    ),
    "reshard.swapped": (
        "new topology installed and the old backend closed, before "
        "the caller regains control"
    ),
    # Session.reshard — the durable epoch cut.
    "reshard.pre_checkpoint": (
        "engine resharded in memory, before the durable checkpoint "
        "that commits the new epoch to disk"
    ),
    # TenantCatalog.create / TenantCatalog.drop — the catalog.json
    # commit is the atomic instant of both operations.
    "tenant.create_committed": (
        "catalog.json committed with the new tenant, before its "
        "durable directory is materialised"
    ),
    "tenant.drop_committed": (
        "catalog.json committed without the tenant, before its "
        "durable directory is removed"
    ),
    # DurableStore.checkpoint — the snapshot/rotate/prune sequence.
    "checkpoint.synced": (
        "WAL synced, before the snapshot file is written"
    ),
    "checkpoint.snapshotted": (
        "snapshot written and durable, before the log rotates to a "
        "fresh segment"
    ),
    "checkpoint.rotated": (
        "log rotated, before old snapshots and their segments are "
        "pruned"
    ),
}


class SimulatedCrash(BaseException):
    """Raised by an armed fault point to simulate ``kill -9``.

    Derives from ``BaseException`` so no production ``except
    Exception`` handler can swallow it: the crash must unwind exactly
    like a process death would, leaving only the on-disk state behind.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


_handlers: Dict[str, Callable[[str], None]] = {}


def fault_point(name: str) -> None:
    """Fire the handler armed for ``name``; a no-op when unarmed.

    Production call sites must name a key of :data:`FAULT_POINTS`.
    The emptiness check keeps the disarmed cost to one truthiness
    test, so fault points may sit on operational (non-per-element)
    paths freely.
    """
    if not _handlers:
        return
    handler = _handlers.get(name)
    if handler is not None:
        handler(name)


def arm(name: str, handler: Callable[[str], None]) -> None:
    """Arm ``name`` with ``handler`` (chaos tests only).

    Raises:
        KeyError: for names not declared in :data:`FAULT_POINTS` —
            a typo here would silently test nothing.
    """
    if name not in FAULT_POINTS:
        raise KeyError(
            f"unknown fault point {name!r}; declared points: "
            f"{', '.join(sorted(FAULT_POINTS))}"
        )
    _handlers[name] = handler


def disarm(name: str) -> None:
    """Remove the handler for ``name`` (missing is fine)."""
    _handlers.pop(name, None)


def reset() -> None:
    """Disarm every fault point (chaos-test teardown)."""
    _handlers.clear()


@contextlib.contextmanager
def armed(name: str, handler: Callable[[str], None]) -> Iterator[None]:
    """Context manager: arm ``name`` for the block, then disarm."""
    arm(name, handler)
    try:
        yield
    finally:
        disarm(name)


@contextlib.contextmanager
def crash_at(name: str) -> Iterator[None]:
    """Arm ``name`` to raise :class:`SimulatedCrash` for the block."""

    def _crash(point: str) -> None:
        raise SimulatedCrash(point)

    with armed(name, _crash):
        yield
