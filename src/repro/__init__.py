"""repro — ABACUS / PARABACUS butterfly counting reproduction.

A from-scratch Python implementation of "Counting Butterflies in Fully
Dynamic Bipartite Graph Streams" (ICDE 2024): approximate butterfly
counting over bipartite edge streams with both insertions and deletions,
plus every substrate the paper depends on (bipartite graphs, exact
counting, Random Pairing sampling, AMS sketches, the FLEET and CAS
insert-only baselines, applications, and the full experiment harness).

The single public entry point is the session API: describe an estimator
with a spec, open a session, ingest, observe, snapshot::

    from repro import open_session, insertion, deletion

    with open_session("abacus:budget=1000,seed=42") as session:
        session.ingest(insertion("alice", "matrix"))
        session.ingest(deletion("alice", "matrix"))
        print(session.estimate, session.metrics.throughput_eps)

Specs name any registered estimator (``abacus``, ``parabacus``,
``ensemble``, ``fleet``, ``cas``, ``sgrapp``, ``exact``) with typed
parameters — ``parse_spec("parabacus:budget=2000,batch_size=500")`` —
and :func:`build_estimator` returns the bare estimator when the facade
is not wanted.  Sessions of snapshot-capable estimators round-trip
through ``session.snapshot()`` / :func:`restore_session` with
bit-identical continuation.

The estimator classes remain importable for direct construction::

    from repro import Abacus

    counter = Abacus(budget=1000, seed=42)
    counter.process(insertion("alice", "matrix"))
"""

from repro.api import (
    EstimatorSpec,
    Session,
    SessionMetrics,
    ShardedEstimator,
    WindowedEstimator,
    build_estimator,
    open_session,
    parse_spec,
    register_estimator,
    registered_estimators,
    restore_session,
)
from repro.baselines import CoAffiliationSampling, Fleet
from repro.serve import ServeClient, serve_in_background
from repro.store import DurableStore, SnapshotStore, WalWriter
from repro.tenancy import SharedStreamFanout, TenantCatalog
from repro.core import (
    Abacus,
    AbacusSupport,
    ButterflyEstimator,
    EnsembleEstimator,
    ExactStreamingCounter,
    Parabacus,
    StatefulEstimator,
)
from repro.graph import BipartiteGraph, count_butterflies
from repro.streams import EdgeStream, make_fully_dynamic, stream_from_edges
from repro.types import (
    Op,
    StreamElement,
    TimedEdge,
    deletion,
    insertion,
    timed_deletion,
    timed_insertion,
)

__version__ = "1.7.0"

__all__ = [
    "Abacus",
    "DurableStore",
    "ServeClient",
    "SharedStreamFanout",
    "SnapshotStore",
    "TenantCatalog",
    "WalWriter",
    "serve_in_background",
    "AbacusSupport",
    "EnsembleEstimator",
    "Parabacus",
    "Fleet",
    "CoAffiliationSampling",
    "ExactStreamingCounter",
    "ButterflyEstimator",
    "StatefulEstimator",
    "EstimatorSpec",
    "Session",
    "SessionMetrics",
    "ShardedEstimator",
    "WindowedEstimator",
    "build_estimator",
    "open_session",
    "parse_spec",
    "register_estimator",
    "registered_estimators",
    "restore_session",
    "BipartiteGraph",
    "count_butterflies",
    "EdgeStream",
    "make_fully_dynamic",
    "stream_from_edges",
    "StreamElement",
    "TimedEdge",
    "Op",
    "insertion",
    "deletion",
    "timed_insertion",
    "timed_deletion",
    "__version__",
]
