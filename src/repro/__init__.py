"""repro — ABACUS / PARABACUS butterfly counting reproduction.

A from-scratch Python implementation of "Counting Butterflies in Fully
Dynamic Bipartite Graph Streams" (ICDE 2024): approximate butterfly
counting over bipartite edge streams with both insertions and deletions,
plus every substrate the paper depends on (bipartite graphs, exact
counting, Random Pairing sampling, AMS sketches, the FLEET and CAS
insert-only baselines, applications, and the full experiment harness).

Quickstart::

    from repro import Abacus, insertion, deletion

    counter = Abacus(budget=1000, seed=42)
    counter.process(insertion("alice", "matrix"))
    counter.process(deletion("alice", "matrix"))
    print(counter.estimate)
"""

from repro.baselines import CoAffiliationSampling, Fleet
from repro.core import (
    Abacus,
    AbacusSupport,
    ButterflyEstimator,
    EnsembleEstimator,
    ExactStreamingCounter,
    Parabacus,
)
from repro.graph import BipartiteGraph, count_butterflies
from repro.streams import EdgeStream, make_fully_dynamic, stream_from_edges
from repro.types import Op, StreamElement, deletion, insertion

__version__ = "1.0.0"

__all__ = [
    "Abacus",
    "AbacusSupport",
    "EnsembleEstimator",
    "Parabacus",
    "Fleet",
    "CoAffiliationSampling",
    "ExactStreamingCounter",
    "ButterflyEstimator",
    "BipartiteGraph",
    "count_butterflies",
    "EdgeStream",
    "make_fully_dynamic",
    "stream_from_edges",
    "StreamElement",
    "Op",
    "insertion",
    "deletion",
    "__version__",
]
