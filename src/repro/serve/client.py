"""``ServeClient`` — a blocking stdlib client for the serving protocol.

Wraps a TCP connection to an :class:`~repro.serve.server
.EstimatorServer` behind plain method calls; every method sends one
line-delimited JSON request (auto-numbered ``id``), reads one
response, and either returns the ``result`` object or raises
:class:`~repro.errors.ServeError` carrying the server's error type and
message.  The client is intentionally synchronous — benchmark drivers,
tests, and shell tooling want straight-line code; concurrency comes
from running many clients (threads or processes), which the server is
built for.

A client is **not** thread-safe; give each thread its own (they are
cheap — one socket).

>>> from repro.api import open_session
>>> from repro.serve.server import serve_in_background
>>> from repro.types import insertion, deletion
>>> with serve_in_background(open_session("exact")) as background:
...     with ServeClient(*background.address) as client:
...         client.ping()["pong"]
...         _ = client.ingest([insertion(u, v)
...                            for u in ("u1", "u2")
...                            for v in ("v1", "v2")])
...         _ = client.ingest(deletion("u2", "v2"))
...         client.estimate()["estimate"]
...         client.stats()["elements"]
True
0.0
5
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.errors import ServeError
from repro.serve.protocol import (
    decode_message,
    elements_to_records,
    encode_message,
    payload_fields,
)
from repro.store.codec import PACKED_FORMAT
from repro.types import StreamElement

__all__ = ["ServeClient", "connect_with_backoff"]


def connect_with_backoff(
    address: Tuple[str, int],
    *,
    connect_timeout: Optional[float],
    retries: int = 2,
    backoff: float = 0.05,
    backoff_cap: float = 1.0,
) -> socket.socket:
    """Connect to ``address``, retrying with exponential backoff.

    A dead or still-starting server surfaces as ``ConnectionRefused``
    or a connect timeout; both are retried up to ``retries`` extra
    attempts, sleeping ``backoff`` doubling up to ``backoff_cap``
    between them.  The final failure wraps into
    :class:`~repro.errors.ServeError` naming the attempt count, so
    callers never see a raw socket exception or an indefinite hang.
    """
    delay = backoff
    attempts = retries + 1
    for attempt in range(attempts):
        try:
            return socket.create_connection(
                address, timeout=connect_timeout
            )
        except OSError as exc:
            if attempt == attempts - 1:
                raise ServeError(
                    f"could not connect to {address} after "
                    f"{attempts} attempt(s): {exc}"
                ) from exc
        time.sleep(delay)
        delay = min(delay * 2.0, backoff_cap)
    raise AssertionError("unreachable")  # pragma: no cover


class ServeClient:
    """One blocking connection to an estimator server.

    Connecting retries with bounded exponential backoff (a server
    still binding its port answers on a later attempt), and every call
    runs under the read timeout — a server that accepts but never
    answers, or a connection dropped mid-response, surfaces as
    :class:`~repro.errors.ServeError` instead of a hang.

    Args:
        host: server host.
        port: server port.
        timeout: per-call socket timeout in seconds (None blocks
            forever).
        connect_timeout: timeout for each connection attempt; defaults
            to ``timeout``.
        connect_retries: extra connection attempts after the first
            fails (0 disables retrying).
        backoff: sleep before the first retry, doubling per attempt.
        backoff_cap: upper bound on the backoff sleep.
        binary: opt in to the packed binary batch payload for ingest
            (``docs/serving.md``).  The first binary-eligible ingest
            pings the server once and checks its advertised
            ``"codecs"``; a server that never heard of codec 2 keeps
            receiving the JSON record lists it always did, so the
            option is safe against any server version.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 30.0,
        connect_timeout: Optional[float] = None,
        connect_retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        binary: bool = False,
    ) -> None:
        if connect_retries < 0:
            raise ServeError(
                f"connect_retries must be >= 0, got {connect_retries}"
            )
        self._address: Tuple[str, int] = (host, port)
        self._sock = connect_with_backoff(
            self._address,
            connect_timeout=(
                timeout if connect_timeout is None else connect_timeout
            ),
            retries=connect_retries,
            backoff=backoff,
            backoff_cap=backoff_cap,
        )
        self._sock.settimeout(timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        self._binary = binary
        # None until the first binary ingest negotiates via ping.
        self._peer_packs: Optional[bool] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._address

    # ------------------------------------------------------------------
    # The call primitive
    # ------------------------------------------------------------------
    def call(self, op: str, **fields: Any) -> Any:
        """Send one request; return its result or raise ServeError."""
        self._next_id += 1
        request = {"id": self._next_id, "op": op, **fields}
        try:
            self._sock.sendall(encode_message(request))
            line = self._reader.readline()
        except socket.timeout as exc:
            raise ServeError(
                f"request to {self._address} timed out waiting for a "
                f"response: {exc}"
            ) from exc
        except OSError as exc:
            raise ServeError(
                f"connection to {self._address} failed: {exc}"
            ) from exc
        if not line:
            raise ServeError(
                f"server at {self._address} closed the connection"
            )
        if not line.endswith(b"\n"):
            raise ServeError(
                f"server at {self._address} dropped the connection "
                "mid-response"
            )
        response = decode_message(line)
        if response.get("id") != self._next_id:
            raise ServeError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        failure = ServeError(
            f"{error.get('type', 'error')}: "
            f"{error.get('message', 'request failed')}"
        )
        failure.remote_type = error.get("type")
        raise failure

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Liveness + protocol version."""
        return self.call("ping")

    def _read_fields(
        self, read_mode: Optional[str], min_offset: Optional[int]
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {}
        if read_mode is not None:
            fields["read_mode"] = read_mode
        if min_offset is not None:
            fields["min_offset"] = min_offset
        return fields

    @staticmethod
    def _target_fields(
        tenant: Optional[str], stream: Optional[str]
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {}
        if tenant is not None:
            fields["tenant"] = tenant
        if stream is not None:
            fields["stream"] = stream
        return fields

    def estimate(
        self,
        *,
        read_mode: Optional[str] = None,
        min_offset: Optional[int] = None,
        tenant: Optional[str] = None,
        stream: Optional[str] = None,
    ) -> Dict[str, Any]:
        """The published view: ``{seq, elements, estimate}``.

        Answered from the server's immutable current view — consistent
        by construction, never blocked by concurrent ingest.  Pass
        ``read_mode="read_your_writes"`` with the ``min_offset``
        watermark of your last write to refuse (or, on a follower,
        wait out) views older than that write (``docs/serving.md``).
        On a multi-tenant server, ``tenant`` reads one tenant's view
        and ``stream`` reads a shared fan-out's per-member estimates
        (``docs/multitenancy.md``).
        """
        return self.call(
            "estimate",
            **self._read_fields(read_mode, min_offset),
            **self._target_fields(tenant, stream),
        )

    def stats(
        self,
        *,
        read_mode: Optional[str] = None,
        min_offset: Optional[int] = None,
        tenant: Optional[str] = None,
        stream: Optional[str] = None,
    ) -> Dict[str, Any]:
        """The full view plus server counters and session identity."""
        return self.call(
            "stats",
            **self._read_fields(read_mode, min_offset),
            **self._target_fields(tenant, stream),
        )

    def ingest(
        self,
        elements: Union[StreamElement, Iterable[StreamElement]],
        *,
        tenant: Optional[str] = None,
        stream: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Ingest one element or an iterable of them.

        Returns the server's ``{accepted, delta, seq, elements,
        estimate}`` summary after the whole batch applied.  ``tenant``
        routes the batch to that tenant's session through its
        fair-share lane; ``stream`` drives a shared fan-out (all bound
        tenants in one pass).
        """
        if isinstance(elements, StreamElement):
            elements = [elements]
        return self.call(
            "ingest",
            **self._batch_fields(elements),
            **self._target_fields(tenant, stream),
        )

    def _batch_fields(
        self, elements: Iterable[StreamElement]
    ) -> Dict[str, Any]:
        """The batch body: packed payload when negotiated, else records.

        Negotiation is lazy and happens at most once per connection:
        the first binary ingest pings and remembers whether the
        server's ``"codecs"`` include the packed format.
        """
        if self._binary:
            if self._peer_packs is None:
                codecs = self.call("ping").get("codecs") or []
                self._peer_packs = PACKED_FORMAT in codecs
            if self._peer_packs:
                return payload_fields(list(elements))
        return {"elements": elements_to_records(elements)}

    def flush(
        self,
        *,
        tenant: Optional[str] = None,
        stream: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Flush estimator-buffered work (PARABACUS mini-batches)."""
        return self.call(
            "flush", **self._target_fields(tenant, stream)
        )

    def snapshot(
        self, *, tenant: Optional[str] = None
    ) -> Dict[str, Any]:
        """The session's full snapshot envelope (consistent)."""
        return self.call(
            "snapshot", **self._target_fields(tenant, None)
        )["snapshot"]

    def checkpoint(
        self,
        *,
        tenant: Optional[str] = None,
        stream: Optional[str] = None,
    ) -> int:
        """Durable checkpoint; returns the covered element offset."""
        return self.call(
            "checkpoint", **self._target_fields(tenant, stream)
        )["offset"]

    # ------------------------------------------------------------------
    # Tenant catalog administration (docs/multitenancy.md)
    # ------------------------------------------------------------------
    def create_tenant(
        self,
        name: str,
        spec: str,
        *,
        quota: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Create a named tenant in the hosted catalog."""
        fields: Dict[str, Any] = {"name": name, "spec": spec}
        if quota is not None:
            fields["quota"] = quota
        return self.call("create_tenant", **fields)

    def drop_tenant(self, name: str) -> Dict[str, Any]:
        """Drop a tenant and its durable directory, atomically."""
        return self.call("drop_tenant", name=name)

    def list_tenants(self) -> Dict[str, Any]:
        """Every tenant (name, spec, quota, stream) plus stream
        bindings."""
        return self.call("list_tenants")

    def bind_stream(
        self, stream: str, tenants: Iterable[str]
    ) -> Dict[str, Any]:
        """Bind tenants to one shared stream (single-pass ingest)."""
        return self.call(
            "bind_stream", name=stream, tenants=list(tenants)
        )

    def drop_stream(self, stream: str) -> Dict[str, Any]:
        """Unbind a shared stream and discard its shared log."""
        return self.call("drop_stream", name=stream)

    def reshard(
        self,
        shards: int,
        *,
        backend: Optional[str] = None,
        partitioner: Optional[str] = None,
        salt: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Live-reshard the served (sharded) session to ``shards``.

        Runs on the server's writer thread like any other mutation;
        reads keep answering from the pre-reshard view until the new
        topology publishes.  Returns the reshard report plus the
        freshly published ``topology``.
        """
        fields: Dict[str, Any] = {"shards": shards}
        if backend is not None:
            fields["backend"] = backend
        if partitioner is not None:
            fields["partitioner"] = partitioner
        if salt is not None:
            fields["salt"] = salt
        return self.call("reshard", **fields)

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server process to wind down."""
        return self.call("shutdown")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say goodbye and close the socket."""
        try:
            self.call("close")
        except ServeError:
            pass
        finally:
            self._reader.close()
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServeClient{self._address!r}"
