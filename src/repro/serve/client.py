"""``ServeClient`` — a blocking stdlib client for the serving protocol.

Wraps a TCP connection to an :class:`~repro.serve.server
.EstimatorServer` behind plain method calls; every method sends one
line-delimited JSON request (auto-numbered ``id``), reads one
response, and either returns the ``result`` object or raises
:class:`~repro.errors.ServeError` carrying the server's error type and
message.  The client is intentionally synchronous — benchmark drivers,
tests, and shell tooling want straight-line code; concurrency comes
from running many clients (threads or processes), which the server is
built for.

A client is **not** thread-safe; give each thread its own (they are
cheap — one socket).

>>> from repro.api import open_session
>>> from repro.serve.server import serve_in_background
>>> from repro.types import insertion, deletion
>>> with serve_in_background(open_session("exact")) as background:
...     with ServeClient(*background.address) as client:
...         client.ping()["pong"]
...         _ = client.ingest([insertion(u, v)
...                            for u in ("u1", "u2")
...                            for v in ("v1", "v2")])
...         _ = client.ingest(deletion("u2", "v2"))
...         client.estimate()["estimate"]
...         client.stats()["elements"]
True
0.0
5
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.errors import ServeError
from repro.serve.protocol import (
    decode_message,
    elements_to_records,
    encode_message,
)
from repro.types import StreamElement

__all__ = ["ServeClient"]


class ServeClient:
    """One blocking connection to an estimator server.

    Args:
        host: server host.
        port: server port.
        timeout: per-call socket timeout in seconds (None blocks
            forever).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self._address: Tuple[str, int] = (host, port)
        self._sock = socket.create_connection(self._address, timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    @property
    def address(self) -> Tuple[str, int]:
        return self._address

    # ------------------------------------------------------------------
    # The call primitive
    # ------------------------------------------------------------------
    def call(self, op: str, **fields: Any) -> Any:
        """Send one request; return its result or raise ServeError."""
        self._next_id += 1
        request = {"id": self._next_id, "op": op, **fields}
        try:
            self._sock.sendall(encode_message(request))
            line = self._reader.readline()
        except OSError as exc:
            raise ServeError(
                f"connection to {self._address} failed: {exc}"
            ) from exc
        if not line:
            raise ServeError(
                f"server at {self._address} closed the connection"
            )
        response = decode_message(line)
        if response.get("id") != self._next_id:
            raise ServeError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServeError(
            f"{error.get('type', 'error')}: "
            f"{error.get('message', 'request failed')}"
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Liveness + protocol version."""
        return self.call("ping")

    def estimate(self) -> Dict[str, Any]:
        """The published view: ``{seq, elements, estimate}``.

        Answered from the server's immutable current view — consistent
        by construction, never blocked by concurrent ingest.
        """
        return self.call("estimate")

    def stats(self) -> Dict[str, Any]:
        """The full view plus server counters and session identity."""
        return self.call("stats")

    def ingest(
        self,
        elements: Union[StreamElement, Iterable[StreamElement]],
    ) -> Dict[str, Any]:
        """Ingest one element or an iterable of them.

        Returns the server's ``{accepted, delta, seq, elements,
        estimate}`` summary after the whole batch applied.
        """
        if isinstance(elements, StreamElement):
            elements = [elements]
        return self.call("ingest", elements=elements_to_records(elements))

    def flush(self) -> Dict[str, Any]:
        """Flush estimator-buffered work (PARABACUS mini-batches)."""
        return self.call("flush")

    def snapshot(self) -> Dict[str, Any]:
        """The session's full snapshot envelope (consistent)."""
        return self.call("snapshot")["snapshot"]

    def checkpoint(self) -> int:
        """Durable checkpoint; returns the covered element offset."""
        return self.call("checkpoint")["offset"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server process to wind down."""
        return self.call("shutdown")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say goodbye and close the socket."""
        try:
            self.call("close")
        except ServeError:
            pass
        finally:
            self._reader.close()
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServeClient{self._address!r}"
