"""The serving wire protocol: line-delimited JSON over a socket.

One request per line, one response per line, UTF-8 JSON, ``\\n``
terminated (``docs/serving.md`` is the full protocol reference)::

    -> {"id": 1, "op": "estimate"}
    <- {"id": 1, "ok": true,
        "result": {"seq": 7, "elements": 4096, "estimate": 1234.0}}

A request is an object with an ``"op"`` and an optional ``"id"`` the
server echoes back verbatim (clients use it to match pipelined
responses).  A response is either ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {"type": ..., "message": ...}}``.

Stream elements travel as the shared record grammar of
:meth:`repro.types.StreamElement.to_record` — ``[op, u, v]`` with an
optional fourth timestamp field — so the wire, the write-ahead log,
and the snapshot files all speak the same element encoding.  Peers
that both support it may instead ship a batch as the **packed binary
payload** of :mod:`repro.store.codec` (base64 inside the JSON line):
the server's ``ping`` response advertises ``"codecs"``, a client that
saw codec 2 there sends ``{"codec": 2, "payload": "<base64>"}`` in
place of ``"elements"``, and a peer that never negotiated sees the
byte-identical protocol it always spoke.

>>> request = decode_message(
...     encode_message({"id": 1, "op": "ingest",
...                     "elements": [["+", "alice", "matrix"]]}))
>>> [str(e) for e in elements_from_request(request)]
['(alice, matrix, +)']
>>> from repro.types import insertion
>>> packed = {"op": "ingest", **payload_fields([insertion(3, 7)])}
>>> sorted(packed)
['codec', 'op', 'payload']
>>> [str(e) for e in elements_from_request(packed)]
['(3, 7, +)']
>>> error_response(1, "SpecError", "no such estimator")["error"]["type"]
'SpecError'
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import CodecError, ServeError
from repro.store import codec
from repro.types import StreamElement

__all__ = [
    "MAX_LINE",
    "PROTOCOL_VERSION",
    "SUPPORTED_CODECS",
    "decode_message",
    "decode_payload",
    "elements_from_request",
    "elements_to_records",
    "encode_message",
    "error_response",
    "payload_fields",
    "records_to_elements",
    "result_response",
]

#: Wire protocol version, echoed by the ``ping`` operation.
PROTOCOL_VERSION = 1

#: Batch encodings this build can decode, newest first.  Codec 1 is
#: the JSON record grammar (``"elements"``), codec 2 the packed binary
#: payload (``"codec"``/``"payload"``).  ``ping`` advertises the tuple
#: so clients negotiate without a dedicated handshake round-trip.
SUPPORTED_CODECS = (2, 1)

#: Upper bound on one protocol line (requests *and* responses).  Ingest
#: batches larger than this must be split client-side; the server
#: refuses longer lines instead of buffering unboundedly.
MAX_LINE = 1 << 20


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one protocol message to its wire line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises ServeError when it is not a message.

    >>> decode_message(b'{"op": "ping"}\\n')
    {'op': 'ping'}
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ServeError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return message


def elements_to_records(
    elements: Iterable[StreamElement],
) -> List[List[Any]]:
    """Encode stream elements for an ``ingest`` request body."""
    return [element.to_record() for element in elements]


def records_to_elements(records: Any) -> List[StreamElement]:
    """Decode an ``ingest`` request body back into stream elements."""
    if not isinstance(records, list):
        raise ServeError(
            f"'elements' must be a list of records, got {records!r}"
        )
    elements = []
    for record in records:
        try:
            elements.append(StreamElement.from_record(record))
        except ValueError as exc:
            raise ServeError(str(exc)) from exc
    return elements


def payload_fields(
    elements: Sequence[StreamElement],
) -> Dict[str, Any]:
    """The packed-batch request fields: ``{"codec": 2, "payload": ...}``.

    The payload is the :func:`repro.store.codec.encode_batch` bytes,
    base64-encoded so it embeds in the line-delimited JSON transport.
    Merge the fields into an ``ingest``-family request in place of
    ``"elements"`` — only after the peer advertised codec 2.
    """
    batch = codec.encode_batch(elements)
    return {
        "codec": codec.PACKED_FORMAT,
        "payload": base64.b64encode(batch).decode("ascii"),
    }


def decode_payload(codec_id: Any, payload: Any) -> List[StreamElement]:
    """Decode a ``"codec"``/``"payload"`` pair back into elements."""
    if codec_id != codec.PACKED_FORMAT:
        raise ServeError(
            f"unsupported batch codec {codec_id!r} "
            f"(supported: {list(SUPPORTED_CODECS)})"
        )
    if not isinstance(payload, str):
        raise ServeError(
            f"'payload' must be a base64 string, got {payload!r}"
        )
    try:
        raw = base64.b64decode(payload, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ServeError(f"'payload' is not valid base64: {exc}") from exc
    try:
        return codec.decode_batch(raw)
    except CodecError as exc:
        raise ServeError(f"packed batch failed to decode: {exc}") from exc


def elements_from_request(request: Dict[str, Any]) -> List[StreamElement]:
    """The stream elements of an ``ingest``-family request body.

    Dispatches on the request shape: a ``"payload"`` field is a packed
    batch (with its ``"codec"`` tag), anything else is the JSON record
    list in ``"elements"``.  A request carrying *both* is ambiguous
    and refused — a batch must have exactly one source of truth.
    """
    if "payload" in request:
        if "elements" in request:
            raise ServeError(
                "request carries both 'elements' and 'payload'; "
                "send exactly one batch encoding"
            )
        return decode_payload(request.get("codec"), request["payload"])
    return records_to_elements(request.get("elements"))


def result_response(
    request_id: Optional[Any], result: Any
) -> Dict[str, Any]:
    """A success response echoing the request's id."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Optional[Any], kind: str, message: str
) -> Dict[str, Any]:
    """A failure response echoing the request's id."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": kind, "message": message},
    }
