"""The serving wire protocol: line-delimited JSON over a socket.

One request per line, one response per line, UTF-8 JSON, ``\\n``
terminated (``docs/serving.md`` is the full protocol reference)::

    -> {"id": 1, "op": "estimate"}
    <- {"id": 1, "ok": true,
        "result": {"seq": 7, "elements": 4096, "estimate": 1234.0}}

A request is an object with an ``"op"`` and an optional ``"id"`` the
server echoes back verbatim (clients use it to match pipelined
responses).  A response is either ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {"type": ..., "message": ...}}``.

Stream elements travel as the shared record grammar of
:meth:`repro.types.StreamElement.to_record` — ``[op, u, v]`` with an
optional fourth timestamp field — so the wire, the write-ahead log,
and the snapshot files all speak the same element encoding.

>>> request = decode_message(
...     encode_message({"id": 1, "op": "ingest",
...                     "elements": [["+", "alice", "matrix"]]}))
>>> [str(e) for e in records_to_elements(request["elements"])]
['(alice, matrix, +)']
>>> error_response(1, "SpecError", "no such estimator")["error"]["type"]
'SpecError'
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ServeError
from repro.types import StreamElement

__all__ = [
    "MAX_LINE",
    "PROTOCOL_VERSION",
    "decode_message",
    "elements_to_records",
    "encode_message",
    "error_response",
    "records_to_elements",
    "result_response",
]

#: Wire protocol version, echoed by the ``ping`` operation.
PROTOCOL_VERSION = 1

#: Upper bound on one protocol line (requests *and* responses).  Ingest
#: batches larger than this must be split client-side; the server
#: refuses longer lines instead of buffering unboundedly.
MAX_LINE = 1 << 20


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one protocol message to its wire line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises ServeError when it is not a message.

    >>> decode_message(b'{"op": "ping"}\\n')
    {'op': 'ping'}
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ServeError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return message


def elements_to_records(
    elements: Iterable[StreamElement],
) -> List[List[Any]]:
    """Encode stream elements for an ``ingest`` request body."""
    return [element.to_record() for element in elements]


def records_to_elements(records: Any) -> List[StreamElement]:
    """Decode an ``ingest`` request body back into stream elements."""
    if not isinstance(records, list):
        raise ServeError(
            f"'elements' must be a list of records, got {records!r}"
        )
    elements = []
    for record in records:
        try:
            elements.append(StreamElement.from_record(record))
        except ValueError as exc:
            raise ServeError(str(exc)) from exc
    return elements


def result_response(
    request_id: Optional[Any], result: Any
) -> Dict[str, Any]:
    """A success response echoing the request's id."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Optional[Any], kind: str, message: str
) -> Dict[str, Any]:
    """A failure response echoing the request's id."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": kind, "message": message},
    }
