"""Concurrent query serving for estimator sessions.

The serving layer puts one :class:`~repro.api.session.Session` behind
a TCP server speaking line-delimited JSON, with a concurrency model
that keeps queries consistent *and* off the ingest hot path:

* :mod:`repro.serve.protocol` — the wire grammar (requests,
  responses, the shared stream-element record encoding).
* :mod:`repro.serve.server` — :class:`EstimatorServer` (asyncio,
  stdlib only): a single writer thread applies mutations in request
  order while reads answer from immutable, atomically published
  :class:`ServingView` objects — no locks on the query path, no torn
  reads, ever.  :func:`serve_in_background` runs one on a daemon
  thread for embedding in tests and benchmarks.
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  stdlib client helper.

CLI: ``repro serve --estimator SPEC [--durable-dir DIR]``.  The full
protocol and consistency contract live in ``docs/serving.md``.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import (
    MAX_LINE,
    PROTOCOL_VERSION,
    SUPPORTED_CODECS,
)
from repro.serve.server import (
    BackgroundServer,
    EstimatorServer,
    ServingView,
    serve_in_background,
)

__all__ = [
    "BackgroundServer",
    "EstimatorServer",
    "MAX_LINE",
    "PROTOCOL_VERSION",
    "SUPPORTED_CODECS",
    "ServeClient",
    "ServingView",
    "serve_in_background",
]
