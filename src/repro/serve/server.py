"""The asyncio query-serving layer: ``EstimatorServer``.

One server owns one :class:`~repro.api.session.Session` and serves
concurrent clients over the line-delimited JSON protocol of
:mod:`repro.serve.protocol`.  The concurrency model keeps queries off
the ingest hot path and makes torn reads impossible by construction:

* **One writer.**  Every mutating operation (``ingest``, ``flush``,
  ``snapshot``, ``checkpoint``, ``reshard``) is submitted to a
  single-thread executor, so session state only ever changes in one
  thread, in request order, while the asyncio loop stays free to
  answer reads.  A bounded semaphore in front of the executor
  backpressures writers that outrun it — waiting, never dropping —
  with the stalls surfaced as the ``backpressure`` stats counter.
* **Immutable views.**  After each mutation the writer thread builds a
  frozen :class:`ServingView` (estimate, element count, memory, a
  monotonically increasing ``seq``) and publishes it with one atomic
  reference assignment.  ``estimate`` and ``stats`` requests read the
  *current view* — never the live session — so a query observes one
  consistent (elements, estimate) pair from a single publish, no
  matter how much ingest is in flight.  A view can be *stale* by at
  most the running mutation; it can never be torn.  The
  concurrent-consistency assertion lives in
  ``benchmarks/bench_serve_queries.py`` and
  ``tests/serve/test_server.py``.
* **Snapshot consistency.**  ``snapshot``/``checkpoint`` run on the
  writer thread too, so they serialise against ingest and capture a
  state at an exact request boundary.

Start one with :func:`serve_in_background` (tests, benchmarks,
embedding) or ``repro serve`` on the CLI (``docs/serving.md``).

>>> from repro.api import open_session
>>> from repro.serve.client import ServeClient
>>> from repro.types import insertion
>>> with serve_in_background(open_session("exact")) as server:
...     with ServeClient(*server.address) as client:
...         _ = client.ingest([insertion(u, v)
...                            for u in ("u1", "u2")
...                            for v in ("v1", "v2")])
...         client.estimate()["estimate"]
1.0
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.api.session import Session
from repro.errors import ReproError, ServeError, StaleReadError
from repro.serve.protocol import (
    MAX_LINE,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    error_response,
    records_to_elements,
    result_response,
)

__all__ = [
    "BackgroundServer",
    "EstimatorServer",
    "READ_MODES",
    "ServingView",
    "serve_in_background",
]

#: Operations answered straight from the published view (no executor).
READ_OPS = frozenset({"ping", "estimate", "stats"})

#: Operations serialised through the single writer thread.
WRITE_OPS = frozenset(
    {"ingest", "flush", "snapshot", "checkpoint", "reshard"}
)

#: Default bound on write requests queued for the writer thread.
#: Beyond it new writes *wait* (they are never dropped) and the
#: ``backpressure`` stats counter increments — the signal that ingest
#: is outrunning the writer (e.g. during a reshard pause).
DEFAULT_MAX_PENDING_WRITES = 64

#: Consistency modes a read request may carry (``docs/serving.md``).
#: ``eventual`` answers from whatever view is published;
#: ``read_your_writes`` additionally honours the request's
#: ``min_offset`` — the element offset of the client's last write —
#: and refuses (or, on a follower, waits) rather than serve a view
#: older than it.
READ_MODES = frozenset({"eventual", "read_your_writes"})


class _OversizedLine(Exception):
    """A request line exceeded MAX_LINE; ``recovered`` says whether the
    rest of the offending line was drained so the connection can keep
    serving."""

    def __init__(self, recovered: bool) -> None:
        super().__init__("request line exceeds the protocol cap")
        self.recovered = recovered


async def _discard_through_newline(reader: asyncio.StreamReader) -> bool:
    """Consume the remainder of an oversized line, newline included.

    Returns True when the line's terminator was found (the connection
    is back on a message boundary), False on EOF.  Pipelined requests
    already buffered behind the newline are preserved.
    """
    while True:
        try:
            await reader.readuntil(b"\n")
            return True
        except asyncio.IncompleteReadError:
            return False
        except asyncio.LimitOverrunError as exc:
            pending = exc.consumed
            while pending > 0:
                chunk = await reader.read(min(pending, 1 << 16))
                if not chunk:
                    return False
                pending -= len(chunk)


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    """Read one ``\\n``-terminated protocol line.

    Returns ``b""`` at EOF (and a trailing unterminated fragment as-is,
    matching ``readline``).  Raises :class:`_OversizedLine` — after
    draining through the offending line's newline — when the line
    exceeds the stream's limit, so the caller can answer with a
    structured error and keep the connection alive.
    """
    try:
        return await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        return exc.partial
    except asyncio.LimitOverrunError:
        raise _OversizedLine(await _discard_through_newline(reader))


@dataclass(frozen=True)
class ServingView:
    """One immutable, atomically published snapshot of serving state.

    Attributes:
        seq: publish sequence number (0 is the pre-ingest state;
            strictly increasing afterwards).
        elements: elements ingested when the view was published.
        estimate: the estimate at publish time.
        memory_edges: sample size at publish time.
        processing_seconds: cumulative estimator processing time.
    """

    seq: int
    elements: int
    estimate: float
    memory_edges: int
    processing_seconds: float
    #: The sharded topology at publish time (None for unsharded
    #: sessions).  Built on the writer thread like every other field,
    #: so a reader can never see a half-switched topology.
    topology: Optional[Dict[str, Any]] = None

    def as_result(self) -> Dict[str, Any]:
        """The view as an ``estimate`` response body."""
        return {
            "seq": self.seq,
            "elements": self.elements,
            "estimate": self.estimate,
        }


class EstimatorServer:
    """Serve one session's estimates over line-delimited JSON.

    Args:
        session: the session to own.  The server becomes the only
            writer: after :meth:`start`, touch the session through the
            protocol only.
        host: interface to bind (default loopback).
        port: TCP port; 0 picks a free one (see :attr:`address`).
        max_pending_writes: bound on queued writes before new writers
            wait (see :data:`DEFAULT_MAX_PENDING_WRITES`).
        autoscaler: optional :class:`~repro.shard.Autoscaler`; when
            given, the server periodically feeds it the session's
            sharded engine and applies any split/merge it recommends
            on the writer thread (``docs/resharding.md``).  Requires a
            sharded session.
        autoscale_interval: seconds between autoscaler observations.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending_writes: int = DEFAULT_MAX_PENDING_WRITES,
        autoscaler: Optional[Any] = None,
        autoscale_interval: float = 2.0,
    ) -> None:
        if max_pending_writes < 1:
            raise ServeError(
                f"max_pending_writes must be >= 1, "
                f"got {max_pending_writes}"
            )
        if autoscale_interval <= 0:
            raise ServeError(
                f"autoscale_interval must be > 0, "
                f"got {autoscale_interval}"
            )
        if autoscaler is not None and session.topology is None:
            raise ServeError(
                "autoscaling needs a sharded session "
                "(open it with shards=K)"
            )
        self._session = session
        self._host = host
        self._port = port
        self._server: Optional[asyncio.Server] = None
        self._writer_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-writer"
        )
        self._stopping = asyncio.Event()
        self._closed = False
        self._counters: Dict[str, int] = {}
        self._connections = 0
        self._max_pending_writes = max_pending_writes
        self._write_slots = asyncio.Semaphore(max_pending_writes)
        self._backpressure = 0
        self._autoscaler = autoscaler
        self._autoscale_interval = autoscale_interval
        self._autoscale_task: Optional[asyncio.Task] = None
        self._autoscale_reshards = 0
        self._view = self._build_view(0)

    # ------------------------------------------------------------------
    # The published view
    # ------------------------------------------------------------------
    def _build_view(self, seq: int) -> ServingView:
        session = self._session
        return ServingView(
            seq=seq,
            elements=session.elements,
            estimate=session.estimate,
            memory_edges=session.memory_edges,
            processing_seconds=session._processing_seconds,
            topology=session.topology,
        )

    def _publish(self) -> ServingView:
        """Build and atomically publish a fresh view (writer thread)."""
        view = self._build_view(self._view.seq + 1)
        self._view = view
        return view

    @property
    def view(self) -> ServingView:
        """The currently published view."""
        return self._view

    @property
    def session(self) -> Session:
        return self._session

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        if self._autoscaler is not None:
            self._autoscale_task = asyncio.create_task(
                self._autoscale_loop()
            )

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` — the bound port once started."""
        return (self._host, self._port)

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to wind the server down."""
        self._stopping.set()

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown`, then close."""
        if self._server is None:
            await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, drain the writer, close the session."""
        if self._closed:
            return
        self._closed = True
        if self._autoscale_task is not None:
            self._autoscale_task.cancel()
            try:
                await self._autoscale_task
            except asyncio.CancelledError:
                pass
            self._autoscale_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Run the (possibly busy) writer dry, then close the session
        # on it so buffered estimator work lands before we return.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._writer_pool, self._session.close)
        self._writer_pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    async def _autoscale_loop(self) -> None:
        """Feed the autoscaler on a timer; reshard when it says so.

        Each observation (and any reshard it triggers) runs on the
        writer thread under a write slot, so it serialises against
        ingest exactly like a client-issued ``reshard`` — readers keep
        the old view until the new topology publishes atomically.
        Policy errors are swallowed: a failed observation must never
        take the serving loop down.
        """
        while not self._closed:
            await asyncio.sleep(self._autoscale_interval)
            try:
                async with self._write_slots:
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(
                        self._writer_pool, self._autoscale_step
                    )
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - keep serving
                continue

    def _autoscale_step(self) -> None:
        """One autoscaler observation (writer thread)."""
        if self._autoscaler is None:
            return
        engine = self._session._sharded_engine()
        if engine is None:
            return
        decision = self._autoscaler.observe(engine)
        if decision.should_reshard:
            self._session.reshard(decision.target_shards)
            self._autoscale_reshards += 1
            self._publish()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._connections += 1
        try:
            while True:
                try:
                    line = await _read_line(reader)
                except _OversizedLine as oversized:
                    writer.write(encode_message(error_response(
                        None,
                        "ServeError",
                        f"request line exceeds {MAX_LINE} bytes",
                    )))
                    await writer.drain()
                    if not oversized.recovered:
                        return
                    continue
                if not line:
                    return
                if line.strip() == b"":
                    continue
                if not await self._handle_line(line, reader, writer):
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Serve one request line; False ends the connection.

        The request/response cycle lives in this overridable hook so
        subclasses (the replication primary of
        :mod:`repro.cluster.primary`) can intercept handshakes that
        turn the connection into something other than request/response.
        """
        response = await self._respond(line)
        writer.write(encode_message(response))
        await writer.drain()
        result = response.get("result")
        return not (isinstance(result, dict) and result.get("goodbye"))

    async def _respond(self, line: bytes) -> Dict[str, Any]:
        request_id: Optional[Any] = None
        try:
            request = decode_message(line)
            request_id = request.get("id")
            result = await self._dispatch(request)
            return result_response(request_id, result)
        except ReproError as exc:
            return error_response(request_id, type(exc).__name__, str(exc))
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return error_response(request_id, type(exc).__name__, str(exc))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if not isinstance(op, str):
            raise ServeError("request needs a string 'op' field")
        self._counters[op] = self._counters.get(op, 0) + 1
        if op in READ_OPS:
            return await self._handle_read(op, request)
        if op == "close":
            return {"goodbye": True}
        if op == "shutdown":
            self.request_shutdown()
            return {"stopping": True}
        if op in WRITE_OPS:
            # Bounded writer queue: when every slot is taken the new
            # write *waits* here (never dropped, never rejected) and
            # the backpressure counter records the stall.  Reads never
            # touch the semaphore, so they stay unblocked throughout.
            if self._write_slots.locked():
                self._backpressure += 1
            async with self._write_slots:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    self._writer_pool, self._write, op, request
                )
        raise ServeError(
            f"unknown operation {op!r}; supported: "
            f"{', '.join(sorted(READ_OPS | WRITE_OPS))}, close, shutdown"
        )

    async def _handle_read(
        self, op: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Answer one read, honouring the request's consistency mode.

        On a single node ``read_your_writes`` can only fail when the
        watermark belongs to state this server never had (a client
        carrying an offset across a failover to a stale node) — then
        refusing with :class:`~repro.errors.StaleReadError` is the
        safe answer.  The follower of :mod:`repro.cluster.follower`
        overrides this to *wait* for replication to apply the offset
        instead.
        """
        self._check_freshness(op, request)
        return self._read(op, request)

    def _min_offset(self, request: Dict[str, Any]) -> Optional[int]:
        """The read-your-writes watermark of a request, validated."""
        mode = request.get("read_mode", "eventual")
        if mode not in READ_MODES:
            raise ServeError(
                f"unknown read_mode {mode!r}; supported: "
                f"{', '.join(sorted(READ_MODES))}"
            )
        if mode != "read_your_writes":
            return None
        min_offset = request.get("min_offset")
        if min_offset is None:
            return None
        if not isinstance(min_offset, int) or min_offset < 0:
            raise ServeError(
                f"min_offset must be a non-negative element offset, "
                f"got {min_offset!r}"
            )
        return min_offset

    def _check_freshness(self, op: str, request: Dict[str, Any]) -> None:
        if op == "ping":
            return
        min_offset = self._min_offset(request)
        if min_offset is not None and self._view.elements < min_offset:
            raise StaleReadError(
                f"view covers {self._view.elements} elements but the "
                f"client's last write is at offset {min_offset}"
            )

    def _read(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        view = self._view  # one atomic reference read — never torn
        if op == "ping":
            return {"pong": True, "version": PROTOCOL_VERSION}
        if op == "estimate":
            return view.as_result()
        spec = self._session.spec
        return {
            "seq": view.seq,
            "elements": view.elements,
            "estimate": view.estimate,
            "memory_edges": view.memory_edges,
            "processing_seconds": view.processing_seconds,
            "topology": view.topology,
            "spec": spec.to_string() if spec else None,
            "durable": self._session.durable,
            "durability": self._session.durability,
            "connections": self._connections,
            "operations": dict(self._counters),
            "backpressure": self._backpressure,
            "max_pending_writes": self._max_pending_writes,
            "autoscaling": self._autoscaler is not None,
            "autoscale_reshards": self._autoscale_reshards,
        }

    def _write(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one mutating operation (single writer thread)."""
        session = self._session
        if op == "ingest":
            elements = records_to_elements(request.get("elements"))
            return self._apply_ingest(elements)
        if op == "flush":
            delta = session.flush()
            view = self._publish()
            return {"delta": delta, "seq": view.seq}
        if op == "snapshot":
            return {"snapshot": session.snapshot()}
        if op == "reshard":
            return self._apply_reshard(request)
        # checkpoint
        offset = session.checkpoint()
        self._publish()
        return {"offset": offset}

    def _apply_reshard(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Reshard the session live (writer thread).

        Reads keep answering from the pre-reshard view for the whole
        transition; the post-reshard view (new topology included)
        publishes in one atomic assignment afterwards.
        """
        shards = request.get("shards")
        if not isinstance(shards, int) or isinstance(shards, bool):
            raise ServeError(
                f"reshard needs an integer 'shards' field, got {shards!r}"
            )
        salt = request.get("salt")
        if salt is not None and (
            not isinstance(salt, int) or isinstance(salt, bool)
        ):
            raise ServeError(f"salt must be an integer, got {salt!r}")
        report = self._session.reshard(
            shards,
            backend=request.get("backend"),
            partitioner=request.get("partitioner"),
            salt=salt,
        )
        view = self._publish()
        return {
            "old_shards": report.old_shards,
            "shards": report.new_shards,
            "epoch": report.epoch,
            "replayed_edges": report.replayed_edges,
            "moved_edges": report.moved_edges,
            "backend": report.backend,
            "seconds": report.seconds,
            "seq": view.seq,
            "topology": view.topology,
        }

    def _apply_ingest(self, elements: list) -> Dict[str, Any]:
        """Ingest one decoded batch and publish (writer thread).

        The replication primary overrides this to additionally fan the
        batch out to its followers after the session applied it.  The
        result's ``elements`` doubles as the client's read-your-writes
        watermark: the global element offset its write reached.
        """
        delta = self._session.ingest(elements)
        view = self._publish()
        return {
            "accepted": len(elements),
            "delta": delta,
            "seq": view.seq,
            "elements": view.elements,
            "estimate": view.estimate,
        }


class BackgroundServer:
    """An :class:`EstimatorServer` running on a private loop thread.

    Returned by :func:`serve_in_background`; use as a context manager
    or call :meth:`stop` explicitly.  ``address`` is the bound
    ``(host, port)``.
    """

    def __init__(
        self,
        server: EstimatorServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.address

    @property
    def server(self) -> EstimatorServer:
        return self._server

    def stop(self, timeout: float = 30.0) -> None:
        """Shut the server down and join its thread."""
        if not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServeError("serving thread failed to stop in time")

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()


def serve_in_background(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    server_factory: Any = None,
) -> BackgroundServer:
    """Start an :class:`EstimatorServer` on a daemon loop thread.

    Blocks until the server is bound (so ``.address`` is final), then
    returns a :class:`BackgroundServer` handle.  Stopping the handle
    closes the session.  ``server_factory`` swaps in a subclass — it
    is called as ``factory(session, host=host, port=port)``, which is
    how the cluster layer hosts its replication primary and followers
    on the same daemon-loop machinery.
    """
    started = threading.Event()
    holder: Dict[str, Any] = {}
    factory = server_factory if server_factory is not None else EstimatorServer

    async def _main() -> None:
        server = factory(session, host=host, port=port)
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await server.serve_forever()

    def _run() -> None:
        try:
            asyncio.run(_main())
        except Exception as exc:  # pragma: no cover - startup failures
            holder["error"] = exc
            started.set()

    thread = threading.Thread(
        target=_run, name="repro-serve-loop", daemon=True
    )
    thread.start()
    started.wait()
    if "error" in holder:
        raise ServeError(
            f"serving loop failed to start: {holder['error']}"
        ) from holder["error"]
    return BackgroundServer(holder["server"], holder["loop"], thread)
