"""The asyncio query-serving layer: ``EstimatorServer``.

One server owns one :class:`~repro.api.session.Session` and serves
concurrent clients over the line-delimited JSON protocol of
:mod:`repro.serve.protocol`.  The concurrency model keeps queries off
the ingest hot path and makes torn reads impossible by construction:

* **One writer.**  Every mutating operation (``ingest``, ``flush``,
  ``snapshot``, ``checkpoint``, ``reshard``) is submitted to a
  single-thread executor, so session state only ever changes in one
  thread, in request order, while the asyncio loop stays free to
  answer reads.  A bounded semaphore in front of the executor
  backpressures writers that outrun it — waiting, never dropping —
  with the stalls surfaced as the ``backpressure`` stats counter.
* **Immutable views.**  After each mutation the writer thread builds a
  frozen :class:`ServingView` (estimate, element count, memory, a
  monotonically increasing ``seq``) and publishes it with one atomic
  reference assignment.  ``estimate`` and ``stats`` requests read the
  *current view* — never the live session — so a query observes one
  consistent (elements, estimate) pair from a single publish, no
  matter how much ingest is in flight.  A view can be *stale* by at
  most the running mutation; it can never be torn.  The
  concurrent-consistency assertion lives in
  ``benchmarks/bench_serve_queries.py`` and
  ``tests/serve/test_server.py``.
* **Snapshot consistency.**  ``snapshot``/``checkpoint`` run on the
  writer thread too, so they serialise against ingest and capture a
  state at an exact request boundary.

Start one with :func:`serve_in_background` (tests, benchmarks,
embedding) or ``repro serve`` on the CLI (``docs/serving.md``).

>>> from repro.api import open_session
>>> from repro.serve.client import ServeClient
>>> from repro.types import insertion
>>> with serve_in_background(open_session("exact")) as server:
...     with ServeClient(*server.address) as client:
...         _ = client.ingest([insertion(u, v)
...                            for u in ("u1", "u2")
...                            for v in ("v1", "v2")])
...         client.estimate()["estimate"]
1.0
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.api.session import Session
from repro.errors import (
    ReproError,
    ServeError,
    StaleReadError,
    TenancyError,
)
from repro.metrics.tenancy import fair_share
from repro.serve.protocol import (
    MAX_LINE,
    PROTOCOL_VERSION,
    SUPPORTED_CODECS,
    decode_message,
    elements_from_request,
    encode_message,
    error_response,
    result_response,
)
from repro.tenancy.catalog import DEFAULT_TENANT_QUOTA, TenantCatalog

__all__ = [
    "BackgroundServer",
    "EstimatorServer",
    "READ_MODES",
    "ServingView",
    "TENANT_ADMIN_OPS",
    "serve_in_background",
]

#: Operations answered straight from the published view (no executor).
READ_OPS = frozenset({"ping", "estimate", "stats"})

#: Operations serialised through the single writer thread.
WRITE_OPS = frozenset(
    {"ingest", "flush", "snapshot", "checkpoint", "reshard"}
)

#: Default bound on write requests queued for the writer thread.
#: Beyond it new writes *wait* (they are never dropped) and the
#: ``backpressure`` stats counter increments — the signal that ingest
#: is outrunning the writer (e.g. during a reshard pause).
DEFAULT_MAX_PENDING_WRITES = 64

#: Consistency modes a read request may carry (``docs/serving.md``).
#: ``eventual`` answers from whatever view is published;
#: ``read_your_writes`` additionally honours the request's
#: ``min_offset`` — the element offset of the client's last write —
#: and refuses (or, on a follower, waits) rather than serve a view
#: older than it.
READ_MODES = frozenset({"eventual", "read_your_writes"})

#: Catalog-administration operations, available when the server hosts
#: a :class:`~repro.tenancy.catalog.TenantCatalog`.  They mutate the
#: catalog on the writer thread (so they serialise against every
#: tenant write) and are primary-only under replication.
TENANT_ADMIN_OPS = frozenset(
    {
        "create_tenant",
        "drop_tenant",
        "list_tenants",
        "bind_stream",
        "drop_stream",
    }
)


class _OversizedLine(Exception):
    """A request line exceeded MAX_LINE; ``recovered`` says whether the
    rest of the offending line was drained so the connection can keep
    serving."""

    def __init__(self, recovered: bool) -> None:
        super().__init__("request line exceeds the protocol cap")
        self.recovered = recovered


async def _discard_through_newline(reader: asyncio.StreamReader) -> bool:
    """Consume the remainder of an oversized line, newline included.

    Returns True when the line's terminator was found (the connection
    is back on a message boundary), False on EOF.  Pipelined requests
    already buffered behind the newline are preserved.
    """
    while True:
        try:
            await reader.readuntil(b"\n")
            return True
        except asyncio.IncompleteReadError:
            return False
        except asyncio.LimitOverrunError as exc:
            pending = exc.consumed
            while pending > 0:
                chunk = await reader.read(min(pending, 1 << 16))
                if not chunk:
                    return False
                pending -= len(chunk)


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    """Read one ``\\n``-terminated protocol line.

    Returns ``b""`` at EOF (and a trailing unterminated fragment as-is,
    matching ``readline``).  Raises :class:`_OversizedLine` — after
    draining through the offending line's newline — when the line
    exceeds the stream's limit, so the caller can answer with a
    structured error and keep the connection alive.
    """
    try:
        return await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        return exc.partial
    except asyncio.LimitOverrunError:
        raise _OversizedLine(await _discard_through_newline(reader))


@dataclass(frozen=True)
class ServingView:
    """One immutable, atomically published snapshot of serving state.

    Attributes:
        seq: publish sequence number (0 is the pre-ingest state;
            strictly increasing afterwards).
        elements: elements ingested when the view was published.
        estimate: the estimate at publish time.
        memory_edges: sample size at publish time.
        processing_seconds: cumulative estimator processing time.
    """

    seq: int
    elements: int
    estimate: float
    memory_edges: int
    processing_seconds: float
    #: The sharded topology at publish time (None for unsharded
    #: sessions).  Built on the writer thread like every other field,
    #: so a reader can never see a half-switched topology.
    topology: Optional[Dict[str, Any]] = None

    def as_result(self) -> Dict[str, Any]:
        """The view as an ``estimate`` response body."""
        return {
            "seq": self.seq,
            "elements": self.elements,
            "estimate": self.estimate,
        }


class _TenantLane:
    """One tenant's (or shared stream's) fair-share write lane.

    A bounded semaphore enforces the lane's ``max_pending_writes``
    quota — excess writers *wait* (never dropped) and the lane's
    backpressure counter records the stall — while a FIFO queue holds
    admitted writes until the round-robin drainer feeds them, one per
    lane per cycle, to the single writer thread.
    """

    __slots__ = (
        "key", "quota", "slots", "queue", "writes", "backpressure"
    )

    def __init__(self, key: Tuple[str, str], quota: int) -> None:
        self.key = key
        self.quota = quota
        self.slots = asyncio.Semaphore(quota)
        self.queue: Deque[
            Tuple[Callable[[], Dict[str, Any]], "asyncio.Future[Any]"]
        ] = deque()
        self.writes = 0
        self.backpressure = 0


class EstimatorServer:
    """Serve one session's estimates over line-delimited JSON.

    Args:
        session: the session to own (the single-tenant surface).  The
            server becomes the only writer: after :meth:`start`, touch
            the session through the protocol only.  May be None on a
            catalog-only server — then every ingest/estimate/stats
            request must name a tenant or stream.
        host: interface to bind (default loopback).
        port: TCP port; 0 picks a free one (see :attr:`address`).
        max_pending_writes: bound on queued writes before new writers
            wait (see :data:`DEFAULT_MAX_PENDING_WRITES`).
        autoscaler: optional :class:`~repro.shard.Autoscaler`; when
            given, the server periodically feeds it the session's
            sharded engine and applies any split/merge it recommends
            on the writer thread (``docs/resharding.md``).  Requires a
            sharded session.
        autoscale_interval: seconds between autoscaler observations.
        catalog: optional :class:`~repro.tenancy.catalog.TenantCatalog`
            to host.  Requests carrying a ``tenant`` (or ``stream``)
            field route to that tenant's durable session (or shared
            fan-out) through its fair-share lane, and the
            :data:`TENANT_ADMIN_OPS` become available.  Requests with
            no tenant field keep today's single-tenant protocol
            untouched (``docs/multitenancy.md``).
        tenant_quota: default per-tenant ``max_pending_writes`` for
            tenants that declared none at ``create`` time (and for
            shared-stream lanes).  Defaults to the catalog default.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending_writes: int = DEFAULT_MAX_PENDING_WRITES,
        autoscaler: Optional[Any] = None,
        autoscale_interval: float = 2.0,
        *,
        catalog: Optional[TenantCatalog] = None,
        tenant_quota: Optional[int] = None,
    ) -> None:
        if session is None and catalog is None:
            raise ServeError(
                "a server needs a session, a tenant catalog, or both"
            )
        if max_pending_writes < 1:
            raise ServeError(
                f"max_pending_writes must be >= 1, "
                f"got {max_pending_writes}"
            )
        if tenant_quota is not None and tenant_quota < 1:
            raise ServeError(
                f"tenant_quota must be >= 1, got {tenant_quota}"
            )
        if autoscale_interval <= 0:
            raise ServeError(
                f"autoscale_interval must be > 0, "
                f"got {autoscale_interval}"
            )
        if autoscaler is not None and (
            session is None or session.topology is None
        ):
            raise ServeError(
                "autoscaling needs a sharded session "
                "(open it with shards=K)"
            )
        self._session = session
        self._host = host
        self._port = port
        self._server: Optional[asyncio.Server] = None
        self._writer_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-writer"
        )
        self._stopping = asyncio.Event()
        self._closed = False
        self._counters: Dict[str, int] = {}
        self._connections = 0
        self._max_pending_writes = max_pending_writes
        self._write_slots = asyncio.Semaphore(max_pending_writes)
        self._backpressure = 0
        self._autoscaler = autoscaler
        self._autoscale_interval = autoscale_interval
        self._autoscale_task: Optional[asyncio.Task] = None
        self._autoscale_reshards = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._catalog = catalog
        self._tenant_quota = (
            tenant_quota
            if tenant_quota is not None
            else DEFAULT_TENANT_QUOTA
        )
        self._lanes: Dict[Tuple[str, str], _TenantLane] = {}
        self._lane_wake = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None
        #: Order the drainer dispatched lane writes, for fairness
        #: tests/telemetry; entries are ``(kind, name)`` lane keys.
        self._fair_trace: List[Tuple[str, str]] = []
        self._tenant_views: Dict[str, ServingView] = {}
        self._stream_views: Dict[str, Dict[str, Any]] = {}
        self._catalog_view: Optional[Dict[str, Any]] = (
            self._build_catalog_view() if catalog is not None else None
        )
        self._view: Optional[ServingView] = (
            self._build_view(0) if session is not None else None
        )

    # ------------------------------------------------------------------
    # The published view
    # ------------------------------------------------------------------
    def _build_view(self, seq: int) -> ServingView:
        session = self._session
        assert session is not None
        return ServingView(
            seq=seq,
            elements=session.elements,
            estimate=session.estimate,
            memory_edges=session.memory_edges,
            processing_seconds=session._processing_seconds,
            topology=session.topology,
        )

    def _publish(self) -> ServingView:
        """Build and atomically publish a fresh view (writer thread)."""
        view = self._build_view(self._view.seq + 1)
        self._view = view
        return view

    @property
    def view(self) -> Optional[ServingView]:
        """The currently published view (None on a catalog-only
        server)."""
        return self._view

    @property
    def session(self) -> Optional[Session]:
        return self._session

    @property
    def catalog(self) -> Optional[TenantCatalog]:
        return self._catalog

    # ------------------------------------------------------------------
    # Tenancy: views, lanes, and the round-robin drainer
    # ------------------------------------------------------------------
    def _build_catalog_view(self) -> Dict[str, Any]:
        """An immutable catalog summary for reads (writer thread)."""
        catalog = self._catalog
        assert catalog is not None
        return {
            "root": str(catalog.root),
            "tenants": {
                name: {
                    "spec": catalog.spec(name),
                    "quota": catalog.quota(name),
                    "stream": catalog.bound_stream(name),
                }
                for name in catalog.names()
            },
            "streams": {
                stream: list(members)
                for stream, members in catalog.streams().items()
            },
        }

    def _publish_tenant(self, name: str, session: Session) -> ServingView:
        """Publish one tenant's fresh view (writer thread)."""
        old = self._tenant_views.get(name)
        view = ServingView(
            seq=old.seq + 1 if old is not None else 1,
            elements=session.elements,
            estimate=session.estimate,
            memory_edges=session.memory_edges,
            processing_seconds=session._processing_seconds,
            topology=session.topology,
        )
        self._tenant_views[name] = view
        return view

    def _publish_stream(self, name: str, fanout: Any) -> Dict[str, Any]:
        """Publish one shared stream's frozen stats (writer thread)."""
        old = self._stream_views.get(name)
        view = dict(fanout.stats())
        view["seq"] = old["seq"] + 1 if old is not None else 1
        self._stream_views[name] = view
        for member in fanout.members:
            self._publish_tenant(member, fanout.session(member))
        return view

    def _require_catalog(self, op: str) -> TenantCatalog:
        if self._catalog is None:
            raise ServeError(
                f"{op!r} needs a tenant catalog but this server hosts "
                "none (start it with repro serve --tenant-root)"
            )
        return self._catalog

    def _target(
        self, request: Dict[str, Any]
    ) -> Optional[Tuple[str, str]]:
        """The request's tenant/stream routing key, validated."""
        tenant = request.get("tenant")
        stream = request.get("stream")
        if tenant is None and stream is None:
            return None
        if tenant is not None and stream is not None:
            raise ServeError(
                "a request may name a tenant or a stream, not both"
            )
        kind, name = (
            ("tenant", tenant) if tenant is not None else ("stream", stream)
        )
        if not isinstance(name, str) or not name:
            raise ServeError(
                f"{kind} must be a non-empty string, got {name!r}"
            )
        self._require_catalog(f"{kind}-scoped request")
        return (kind, name)

    def _lane(self, key: Tuple[str, str]) -> _TenantLane:
        """The target's lane, created on first use with its quota."""
        lane = self._lanes.get(key)
        if lane is not None:
            return lane
        catalog = self._catalog
        assert catalog is not None
        kind, name = key
        if kind == "tenant":
            declared = catalog.declared_quota(name)  # raises if unknown
            quota = declared if declared is not None else self._tenant_quota
        else:
            if name not in catalog.streams():
                raise TenancyError(
                    f"unknown stream {name!r}; bound: "
                    f"{', '.join(sorted(catalog.streams())) or '(none)'}"
                )
            quota = self._tenant_quota
        lane = _TenantLane(key, quota)
        self._lanes[key] = lane
        return lane

    def _retire_lane(self, key: Tuple[str, str]) -> None:
        """Drop a lane, failing whatever it still queued (loop
        thread)."""
        lane = self._lanes.pop(key, None)
        if lane is None:
            return
        kind, name = key
        while lane.queue:
            _fn, future = lane.queue.popleft()
            if not future.done():
                future.set_exception(TenancyError(
                    f"{kind} {name!r} was dropped before this write ran"
                ))

    async def _lane_submit(
        self, key: Tuple[str, str], fn: Callable[[], Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Queue one write on the target's lane and await its result.

        The lane's semaphore is the tenant's ``max_pending_writes``
        quota: a tenant at quota waits here — counted as that lane's
        backpressure — without taking a slot from any other tenant.
        """
        lane = self._lane(key)
        if lane.slots.locked():
            lane.backpressure += 1
        async with lane.slots:
            loop = asyncio.get_running_loop()
            future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
            lane.queue.append((fn, future))
            self._lane_wake.set()
            return await future

    async def _drain_lanes(self) -> None:
        """Feed queued lane writes to the writer thread, round-robin.

        Each cycle serves at most one write from every non-empty lane
        (in sorted key order), so a tenant flooding its own lane cannot
        delay another tenant by more than one in-flight write.
        """
        loop = asyncio.get_running_loop()
        while True:
            await self._lane_wake.wait()
            self._lane_wake.clear()
            while True:
                busy = [
                    key
                    for key in sorted(self._lanes)
                    if self._lanes[key].queue
                ]
                if not busy:
                    break
                for key in busy:
                    lane = self._lanes.get(key)
                    if lane is None or not lane.queue:
                        continue
                    fn, future = lane.queue.popleft()
                    self._fair_trace.append(key)
                    if len(self._fair_trace) > 8192:
                        del self._fair_trace[:4096]
                    lane.writes += 1
                    try:
                        result = await loop.run_in_executor(
                            self._writer_pool, fn
                        )
                    except Exception as exc:  # noqa: BLE001
                        if not future.done():
                            future.set_exception(exc)
                    else:
                        if not future.done():
                            future.set_result(result)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        if self._catalog is not None:
            self._drain_task = asyncio.create_task(self._drain_lanes())
        if self._autoscaler is not None:
            self._autoscale_task = asyncio.create_task(
                self._autoscale_loop()
            )

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` — the bound port once started."""
        return (self._host, self._port)

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to wind the server down."""
        self._stopping.set()

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown`, then close."""
        if self._server is None:
            await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, drain the writer, close the session."""
        if self._closed:
            return
        self._closed = True
        if self._autoscale_task is not None:
            self._autoscale_task.cancel()
            try:
                await self._autoscale_task
            except asyncio.CancelledError:
                pass
            self._autoscale_task = None
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        for key in list(self._lanes):
            self._retire_lane(key)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Run the (possibly busy) writer dry, then close the session
        # and catalog on it so buffered estimator work lands before we
        # return.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._writer_pool, self._close_owned)
        self._writer_pool.shutdown(wait=True)

    def _close_owned(self) -> None:
        """Close the owned session and catalog (writer thread)."""
        if self._session is not None:
            self._session.close()
        if self._catalog is not None:
            self._catalog.close()

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    async def _autoscale_loop(self) -> None:
        """Feed the autoscaler on a timer; reshard when it says so.

        Each observation (and any reshard it triggers) runs on the
        writer thread under a write slot, so it serialises against
        ingest exactly like a client-issued ``reshard`` — readers keep
        the old view until the new topology publishes atomically.
        Policy errors are swallowed: a failed observation must never
        take the serving loop down.
        """
        while not self._closed:
            await asyncio.sleep(self._autoscale_interval)
            try:
                async with self._write_slots:
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(
                        self._writer_pool, self._autoscale_step
                    )
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - keep serving
                continue

    def _autoscale_step(self) -> None:
        """One autoscaler observation (writer thread)."""
        if self._autoscaler is None:
            return
        engine = self._session._sharded_engine()
        if engine is None:
            return
        decision = self._autoscaler.observe(engine)
        if decision.should_reshard:
            self._session.reshard(decision.target_shards)
            self._autoscale_reshards += 1
            self._publish()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._connections += 1
        try:
            while True:
                try:
                    line = await _read_line(reader)
                except _OversizedLine as oversized:
                    writer.write(encode_message(error_response(
                        None,
                        "ServeError",
                        f"request line exceeds {MAX_LINE} bytes",
                    )))
                    await writer.drain()
                    if not oversized.recovered:
                        return
                    continue
                if not line:
                    return
                if line.strip() == b"":
                    continue
                if not await self._handle_line(line, reader, writer):
                    return
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Serve one request line; False ends the connection.

        The request/response cycle lives in this overridable hook so
        subclasses (the replication primary of
        :mod:`repro.cluster.primary`) can intercept handshakes that
        turn the connection into something other than request/response.
        """
        response = await self._respond(line)
        writer.write(encode_message(response))
        await writer.drain()
        result = response.get("result")
        return not (isinstance(result, dict) and result.get("goodbye"))

    async def _respond(self, line: bytes) -> Dict[str, Any]:
        request_id: Optional[Any] = None
        try:
            request = decode_message(line)
            request_id = request.get("id")
            result = await self._dispatch(request)
            return result_response(request_id, result)
        except ReproError as exc:
            return error_response(request_id, type(exc).__name__, str(exc))
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return error_response(request_id, type(exc).__name__, str(exc))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if not isinstance(op, str):
            raise ServeError("request needs a string 'op' field")
        self._counters[op] = self._counters.get(op, 0) + 1
        target = self._target(request)
        if op in TENANT_ADMIN_OPS:
            self._require_catalog(op)
            async with self._write_slots:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    self._writer_pool, self._tenant_admin, op, request
                )
        if op in READ_OPS:
            if target is not None and op != "ping":
                return await self._scoped_read(op, target, request)
            return await self._handle_read(op, request)
        if op == "close":
            return {"goodbye": True}
        if op == "shutdown":
            self.request_shutdown()
            return {"stopping": True}
        if op in WRITE_OPS:
            if target is not None:
                return await self._scoped_write(op, target, request)
            if self._session is None:
                raise ServeError(
                    f"this server hosts a tenant catalog only; name a "
                    f"tenant (or stream) on the {op!r} request"
                )
            # Bounded writer queue: when every slot is taken the new
            # write *waits* here (never dropped, never rejected) and
            # the backpressure counter records the stall.  Reads never
            # touch the semaphore, so they stay unblocked throughout.
            if self._write_slots.locked():
                self._backpressure += 1
            async with self._write_slots:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    self._writer_pool, self._write, op, request
                )
        raise ServeError(
            f"unknown operation {op!r}; supported: "
            f"{', '.join(sorted(READ_OPS | WRITE_OPS | TENANT_ADMIN_OPS))}"
            ", close, shutdown"
        )

    async def _handle_read(
        self, op: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Answer one read, honouring the request's consistency mode.

        On a single node ``read_your_writes`` can only fail when the
        watermark belongs to state this server never had (a client
        carrying an offset across a failover to a stale node) — then
        refusing with :class:`~repro.errors.StaleReadError` is the
        safe answer.  The follower of :mod:`repro.cluster.follower`
        overrides this to *wait* for replication to apply the offset
        instead.
        """
        self._check_freshness(op, request)
        return self._read(op, request)

    def _min_offset(self, request: Dict[str, Any]) -> Optional[int]:
        """The read-your-writes watermark of a request, validated."""
        mode = request.get("read_mode", "eventual")
        if mode not in READ_MODES:
            raise ServeError(
                f"unknown read_mode {mode!r}; supported: "
                f"{', '.join(sorted(READ_MODES))}"
            )
        if mode != "read_your_writes":
            return None
        min_offset = request.get("min_offset")
        if min_offset is None:
            return None
        if not isinstance(min_offset, int) or min_offset < 0:
            raise ServeError(
                f"min_offset must be a non-negative element offset, "
                f"got {min_offset!r}"
            )
        return min_offset

    def _check_freshness(self, op: str, request: Dict[str, Any]) -> None:
        if op == "ping":
            return
        min_offset = self._min_offset(request)
        elements = self._view.elements if self._view is not None else 0
        if min_offset is not None and elements < min_offset:
            raise StaleReadError(
                f"view covers {elements} elements but the "
                f"client's last write is at offset {min_offset}"
            )

    def _read(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        view = self._view  # one atomic reference read — never torn
        if op == "ping":
            return {
                "pong": True,
                "version": PROTOCOL_VERSION,
                "codecs": list(SUPPORTED_CODECS),
            }
        if op == "estimate":
            if view is None:
                raise ServeError(
                    "this server hosts a tenant catalog only; name a "
                    "tenant (or stream) on the 'estimate' request"
                )
            return view.as_result()
        session = self._session
        spec = session.spec if session is not None else None
        result = {
            "seq": view.seq if view is not None else 0,
            "elements": view.elements if view is not None else 0,
            "estimate": view.estimate if view is not None else None,
            "memory_edges": view.memory_edges if view is not None else 0,
            "processing_seconds": (
                view.processing_seconds if view is not None else 0.0
            ),
            "topology": view.topology if view is not None else None,
            "spec": spec.to_string() if spec else None,
            "durable": session.durable if session is not None else False,
            "durability": (
                session.durability if session is not None else None
            ),
            "connections": self._connections,
            "operations": dict(self._counters),
            "backpressure": self._backpressure,
            "max_pending_writes": self._max_pending_writes,
            "autoscaling": self._autoscaler is not None,
            "autoscale_reshards": self._autoscale_reshards,
        }
        if self._catalog is not None:
            result.update(self._catalog_stats())
        return result

    def _catalog_stats(self) -> Dict[str, Any]:
        """The multi-tenant additions to an untenanted ``stats`` read.

        Only present when a catalog is hosted, so tenant-less servers
        keep the exact pre-tenancy response shape.
        """
        catalog_view = self._catalog_view or {
            "root": None, "tenants": {}, "streams": {},
        }
        tenants: Dict[str, Any] = {}
        for name, entry in catalog_view["tenants"].items():
            lane = self._lanes.get(("tenant", name))
            tenants[name] = {
                "spec": entry["spec"],
                "stream": entry["stream"],
                "writes": lane.writes if lane is not None else 0,
                "backpressure": (
                    lane.backpressure if lane is not None else 0
                ),
                "max_pending_writes": (
                    lane.quota if lane is not None else entry["quota"]
                ),
            }
        streams: Dict[str, Any] = {}
        for name, members in catalog_view["streams"].items():
            lane = self._lanes.get(("stream", name))
            streams[name] = {
                "members": list(members),
                "writes": lane.writes if lane is not None else 0,
                "backpressure": (
                    lane.backpressure if lane is not None else 0
                ),
                "max_pending_writes": (
                    lane.quota
                    if lane is not None
                    else self._tenant_quota
                ),
            }
        shares = {
            name: entry["writes"] for name, entry in tenants.items()
        }
        shares.update({
            f"stream:{name}": entry["writes"]
            for name, entry in streams.items()
        })
        return {
            "catalog": catalog_view,
            "tenants": tenants,
            "streams": streams,
            "fairness": fair_share(shares).as_dict(),
        }

    # ------------------------------------------------------------------
    # Tenant-scoped requests
    # ------------------------------------------------------------------
    async def _scoped_read(
        self, op: str, target: Tuple[str, str], request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Answer a tenant/stream read from its published view.

        A target that was never written through this server has no
        view yet; the first read pays one lane round-trip to open it
        on the writer thread and publish its recovered state.
        """
        kind, name = target
        if (
            name not in self._tenant_views
            if kind == "tenant"
            else name not in self._stream_views
        ):
            await self._lane_submit(
                target, lambda: self._touch_target(target)
            )
        min_offset = self._min_offset(request)
        if kind == "stream":
            view = self._stream_views.get(name)
            if view is None:
                raise TenancyError(
                    f"stream {name!r} disappeared while reading it"
                )
            if min_offset is not None and view["elements"] < min_offset:
                raise StaleReadError(
                    f"stream {name!r} view covers {view['elements']} "
                    f"elements but the client's last write is at "
                    f"offset {min_offset}"
                )
            if op == "estimate":
                return {
                    "stream": name,
                    "seq": view["seq"],
                    "elements": view["elements"],
                    "estimates": {
                        member: entry["estimate"]
                        for member, entry in view["members"].items()
                    },
                }
            result = dict(view)
            result["stream"] = name
            lane = self._lanes.get(target)
            if lane is not None:
                result["writes"] = lane.writes
                result["backpressure"] = lane.backpressure
                result["max_pending_writes"] = lane.quota
            return result
        tenant_view = self._tenant_views.get(name)
        if tenant_view is None:
            raise TenancyError(
                f"tenant {name!r} disappeared while reading it"
            )
        if (
            min_offset is not None
            and tenant_view.elements < min_offset
        ):
            raise StaleReadError(
                f"tenant {name!r} view covers {tenant_view.elements} "
                f"elements but the client's last write is at offset "
                f"{min_offset}"
            )
        if op == "estimate":
            result = tenant_view.as_result()
            result["tenant"] = name
            return result
        catalog_view = self._catalog_view or {"tenants": {}}
        entry = catalog_view["tenants"].get(name, {})
        lane = self._lanes.get(target)
        return {
            "tenant": name,
            "seq": tenant_view.seq,
            "elements": tenant_view.elements,
            "estimate": tenant_view.estimate,
            "memory_edges": tenant_view.memory_edges,
            "processing_seconds": tenant_view.processing_seconds,
            "spec": entry.get("spec"),
            "stream": entry.get("stream"),
            "writes": lane.writes if lane is not None else 0,
            "backpressure": lane.backpressure if lane is not None else 0,
            "max_pending_writes": (
                lane.quota if lane is not None else entry.get("quota")
            ),
        }

    async def _scoped_write(
        self, op: str, target: Tuple[str, str], request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Route a tenant/stream write through its fair-share lane."""
        kind, name = target
        if op == "reshard":
            raise ServeError(
                "reshard is not supported per tenant; reshard the "
                "server's own session instead"
            )
        if kind == "tenant":
            return await self._lane_submit(
                target, lambda: self._tenant_write(op, name, request)
            )
        return await self._lane_submit(
            target, lambda: self._stream_write(op, name, request)
        )

    def _touch_target(self, target: Tuple[str, str]) -> Dict[str, Any]:
        """Open a never-yet-served target and publish its view
        (writer thread)."""
        catalog = self._catalog
        assert catalog is not None
        kind, name = target
        if kind == "stream":
            view = self._publish_stream(name, catalog.open_stream(name))
            return {"stream": name, "elements": view["elements"]}
        bound = catalog.bound_stream(name)
        if bound is not None:
            fanout = catalog.open_stream(bound)
            view = self._publish_tenant(name, fanout.session(name))
        else:
            view = self._publish_tenant(name, catalog.session(name))
        return {"tenant": name, "elements": view.elements}

    def _tenant_write(
        self, op: str, name: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Apply one tenant-scoped mutation (writer thread)."""
        catalog = self._catalog
        assert catalog is not None
        session = catalog.session(name)
        if op == "ingest":
            elements = elements_from_request(request)
            delta = session.ingest(elements)
            view = self._publish_tenant(name, session)
            return {
                "tenant": name,
                "accepted": len(elements),
                "delta": delta,
                "seq": view.seq,
                "elements": view.elements,
                "estimate": view.estimate,
            }
        if op == "flush":
            delta = session.flush()
            view = self._publish_tenant(name, session)
            return {"tenant": name, "delta": delta, "seq": view.seq}
        if op == "snapshot":
            return {"tenant": name, "snapshot": session.snapshot()}
        # checkpoint
        offset = session.checkpoint()
        self._publish_tenant(name, session)
        return {"tenant": name, "offset": offset}

    def _stream_write(
        self, op: str, name: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Apply one shared-stream mutation (writer thread)."""
        catalog = self._catalog
        assert catalog is not None
        fanout = catalog.open_stream(name)
        if op == "ingest":
            elements = elements_from_request(request)
            fanout.ingest(elements)
            view = self._publish_stream(name, fanout)
            return {
                "stream": name,
                "accepted": len(elements),
                "seq": view["seq"],
                "elements": view["elements"],
                "estimates": {
                    member: entry["estimate"]
                    for member, entry in view["members"].items()
                },
            }
        if op == "flush":
            fanout.flush()
            view = self._publish_stream(name, fanout)
            return {"stream": name, "seq": view["seq"]}
        if op == "snapshot":
            raise ServeError(
                "snapshot is not supported per stream; checkpoint the "
                "stream instead (one envelope covers every member)"
            )
        # checkpoint
        offset = fanout.checkpoint()
        self._publish_stream(name, fanout)
        return {"stream": name, "offset": offset}

    def _tenant_admin(
        self, op: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Apply one catalog-administration op (writer thread)."""
        catalog = self._catalog
        assert catalog is not None
        if op == "list_tenants":
            view = self._build_catalog_view()
            self._catalog_view = view
            return {
                "tenants": [
                    {"name": name, **entry}
                    for name, entry in view["tenants"].items()
                ],
                "streams": view["streams"],
            }
        if op == "create_tenant":
            name = self._required_str(request, "name")
            spec = self._required_str(request, "spec")
            quota = request.get("quota")
            catalog.create(name, spec, quota=quota)
            self._catalog_view = self._build_catalog_view()
            return {
                "tenant": name,
                "spec": catalog.spec(name),
                "quota": catalog.quota(name),
            }
        if op == "drop_tenant":
            name = self._required_str(request, "name")
            catalog.drop(name)
            self._tenant_views.pop(name, None)
            self._retire_lane_threadsafe(("tenant", name))
            self._catalog_view = self._build_catalog_view()
            return {"dropped": name, "tenants": list(catalog.names())}
        if op == "bind_stream":
            stream = self._required_str(request, "name")
            tenants = request.get("tenants")
            if not isinstance(tenants, list) or not all(
                isinstance(member, str) for member in tenants
            ):
                raise ServeError(
                    "bind_stream needs a 'tenants' list of tenant "
                    f"names, got {tenants!r}"
                )
            fanout = catalog.bind_stream(stream, tenants)
            self._publish_stream(stream, fanout)
            self._catalog_view = self._build_catalog_view()
            return {"stream": stream, "members": sorted(fanout.members)}
        # drop_stream
        stream = self._required_str(request, "name")
        catalog.drop_stream(stream)
        self._stream_views.pop(stream, None)
        self._retire_lane_threadsafe(("stream", stream))
        self._catalog_view = self._build_catalog_view()
        return {"dropped": stream, "streams": list(catalog.streams())}

    def _retire_lane_threadsafe(self, key: Tuple[str, str]) -> None:
        """Schedule a lane retirement onto the event loop.

        Admin ops run on the writer thread, but lanes (their queues
        and futures) belong to the loop thread — mutating them here
        would race the drainer.
        """
        loop = getattr(self, "_loop", None)
        if loop is None:
            self._retire_lane(key)
            return
        loop.call_soon_threadsafe(self._retire_lane, key)

    @staticmethod
    def _required_str(request: Dict[str, Any], field: str) -> str:
        value = request.get(field)
        if not isinstance(value, str) or not value:
            raise ServeError(
                f"this operation needs a non-empty string {field!r} "
                f"field, got {value!r}"
            )
        return value

    def _write(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one mutating operation (single writer thread)."""
        session = self._session
        if op == "ingest":
            elements = elements_from_request(request)
            return self._apply_ingest(elements)
        if op == "flush":
            delta = session.flush()
            view = self._publish()
            return {"delta": delta, "seq": view.seq}
        if op == "snapshot":
            return {"snapshot": session.snapshot()}
        if op == "reshard":
            return self._apply_reshard(request)
        # checkpoint
        offset = session.checkpoint()
        self._publish()
        return {"offset": offset}

    def _apply_reshard(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Reshard the session live (writer thread).

        Reads keep answering from the pre-reshard view for the whole
        transition; the post-reshard view (new topology included)
        publishes in one atomic assignment afterwards.
        """
        shards = request.get("shards")
        if not isinstance(shards, int) or isinstance(shards, bool):
            raise ServeError(
                f"reshard needs an integer 'shards' field, got {shards!r}"
            )
        salt = request.get("salt")
        if salt is not None and (
            not isinstance(salt, int) or isinstance(salt, bool)
        ):
            raise ServeError(f"salt must be an integer, got {salt!r}")
        report = self._session.reshard(
            shards,
            backend=request.get("backend"),
            partitioner=request.get("partitioner"),
            salt=salt,
        )
        view = self._publish()
        return {
            "old_shards": report.old_shards,
            "shards": report.new_shards,
            "epoch": report.epoch,
            "replayed_edges": report.replayed_edges,
            "moved_edges": report.moved_edges,
            "backend": report.backend,
            "seconds": report.seconds,
            "seq": view.seq,
            "topology": view.topology,
        }

    def _apply_ingest(self, elements: list) -> Dict[str, Any]:
        """Ingest one decoded batch and publish (writer thread).

        The replication primary overrides this to additionally fan the
        batch out to its followers after the session applied it.  The
        result's ``elements`` doubles as the client's read-your-writes
        watermark: the global element offset its write reached.
        """
        delta = self._session.ingest(elements)
        view = self._publish()
        return {
            "accepted": len(elements),
            "delta": delta,
            "seq": view.seq,
            "elements": view.elements,
            "estimate": view.estimate,
        }


class BackgroundServer:
    """An :class:`EstimatorServer` running on a private loop thread.

    Returned by :func:`serve_in_background`; use as a context manager
    or call :meth:`stop` explicitly.  ``address`` is the bound
    ``(host, port)``.
    """

    def __init__(
        self,
        server: EstimatorServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.address

    @property
    def server(self) -> EstimatorServer:
        return self._server

    def stop(self, timeout: float = 30.0) -> None:
        """Shut the server down and join its thread."""
        if not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServeError("serving thread failed to stop in time")

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()


def serve_in_background(
    session: Optional[Session],
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    server_factory: Any = None,
) -> BackgroundServer:
    """Start an :class:`EstimatorServer` on a daemon loop thread.

    Blocks until the server is bound (so ``.address`` is final), then
    returns a :class:`BackgroundServer` handle.  Stopping the handle
    closes the session.  ``server_factory`` swaps in a subclass — it
    is called as ``factory(session, host=host, port=port)``, which is
    how the cluster layer hosts its replication primary and followers
    on the same daemon-loop machinery, and how the CLI hosts a tenant
    catalog (``session`` may be None when the factory supplies a
    catalog instead).
    """
    started = threading.Event()
    holder: Dict[str, Any] = {}
    factory = server_factory if server_factory is not None else EstimatorServer

    async def _main() -> None:
        server = factory(session, host=host, port=port)
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await server.serve_forever()

    def _run() -> None:
        try:
            asyncio.run(_main())
        except Exception as exc:  # pragma: no cover - startup failures
            holder["error"] = exc
            started.set()

    thread = threading.Thread(
        target=_run, name="repro-serve-loop", daemon=True
    )
    thread.start()
    started.wait()
    if "error" in holder:
        raise ServeError(
            f"serving loop failed to start: {holder['error']}"
        ) from holder["error"]
    return BackgroundServer(holder["server"], holder["loop"], thread)
