"""Typed exceptions used across the library.

Every error raised by ``repro`` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Base class for errors raised by the bipartite-graph substrate."""


class PartitionError(GraphError):
    """A vertex was used on the wrong side of the bipartition.

    Bipartite graphs keep two disjoint vertex partitions (left and
    right).  Attempting to insert an edge whose endpoint already lives in
    the opposite partition raises this error instead of silently
    corrupting the bipartition.
    """


class DuplicateEdgeError(GraphError):
    """An edge insertion targeted an edge that already exists.

    The paper's stream model (Definition 1) explicitly excludes
    multigraphs: only edges that are currently absent may be inserted.
    """


class MissingEdgeError(GraphError):
    """An edge deletion targeted an edge that does not exist.

    The stream model only allows deleting edges that are currently
    present in the graph.
    """


class StreamError(ReproError):
    """A stream was malformed or violated the fully-dynamic contract."""


class SamplingError(ReproError):
    """A sampling scheme was misused (e.g. non-positive budget)."""


class EstimatorError(ReproError):
    """An estimator was configured or driven incorrectly."""


class SpecError(EstimatorError):
    """An estimator spec failed to parse or validate.

    Raised by the :mod:`repro.api` registry for malformed spec strings,
    unknown estimator names, undeclared parameters, and values that
    cannot be coerced to a parameter's declared type.  Subclasses
    :class:`EstimatorError` so callers that already guard estimator
    construction keep working.
    """


class ExperimentError(ReproError):
    """The experiment harness was asked for an unknown dataset/figure."""


class StoreError(ReproError):
    """The durable store (:mod:`repro.store`) hit unusable on-disk state.

    Raised for foreign or corrupt files in a durable session directory
    (bad WAL magic, a gap in the log's offset coverage, an unreadable
    meta file) and for misuse of the store API.  A *torn tail* — the
    partially written final record of a crash — is **not** an error:
    recovery truncates it by design.
    """


class ServeError(ReproError):
    """A serving request failed (:mod:`repro.serve`).

    Raised client-side when the server answers with an error response
    (malformed request, unknown operation, an estimator error while
    applying an ingest) or when the connection breaks mid-call.
    """
