"""Typed exceptions used across the library.

Every error raised by ``repro`` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Base class for errors raised by the bipartite-graph substrate."""


class PartitionError(GraphError):
    """A vertex was used on the wrong side of the bipartition.

    Bipartite graphs keep two disjoint vertex partitions (left and
    right).  Attempting to insert an edge whose endpoint already lives in
    the opposite partition raises this error instead of silently
    corrupting the bipartition.
    """


class DuplicateEdgeError(GraphError):
    """An edge insertion targeted an edge that already exists.

    The paper's stream model (Definition 1) explicitly excludes
    multigraphs: only edges that are currently absent may be inserted.
    """


class MissingEdgeError(GraphError):
    """An edge deletion targeted an edge that does not exist.

    The stream model only allows deleting edges that are currently
    present in the graph.
    """


class StreamError(ReproError):
    """A stream was malformed or violated the fully-dynamic contract."""


class SamplingError(ReproError):
    """A sampling scheme was misused (e.g. non-positive budget)."""


class EstimatorError(ReproError):
    """An estimator was configured or driven incorrectly."""


class SpecError(EstimatorError):
    """An estimator spec failed to parse or validate.

    Raised by the :mod:`repro.api` registry for malformed spec strings,
    unknown estimator names, undeclared parameters, and values that
    cannot be coerced to a parameter's declared type.  Subclasses
    :class:`EstimatorError` so callers that already guard estimator
    construction keep working.
    """


class ExperimentError(ReproError):
    """The experiment harness was asked for an unknown dataset/figure."""


class CodecError(ReproError):
    """A packed record failed to encode or decode (:mod:`repro.store.codec`).

    Raised when an element cannot be represented in the packed binary
    format (a vertex key that is not JSON-representable, a ``NaN`` or
    ``inf`` timestamp — refused loudly in both directions) and when a
    packed payload is malformed (truncated varint, a key length past
    the cap, reserved flag bits, trailing bytes).  The store and wire
    layers wrap it into their own errors at their boundaries.
    """


class StoreError(ReproError):
    """The durable store (:mod:`repro.store`) hit unusable on-disk state.

    Raised for foreign or corrupt files in a durable session directory
    (bad WAL magic, a gap in the log's offset coverage, an unreadable
    meta file) and for misuse of the store API.  A *torn tail* — the
    partially written final record of a crash — is **not** an error:
    recovery truncates it by design.
    """


class ServeError(ReproError):
    """A serving request failed (:mod:`repro.serve`).

    Raised client-side when the server answers with an error response
    (malformed request, unknown operation, an estimator error while
    applying an ingest) or when the connection breaks mid-call.
    Client-side instances carry the server's error type name in
    ``remote_type`` (``None`` for purely local failures), so callers
    can react to specific remote errors without string matching.
    """

    remote_type: "str | None" = None


class TenancyError(ReproError):
    """A tenant-catalog operation failed (:mod:`repro.tenancy`).

    Raised for invalid tenant names, unknown or duplicate tenants,
    dropping a tenant still bound to a shared stream, shared-stream
    membership mismatches on reopen, and further ingestion into a
    fan-out that refused a batch (``docs/multitenancy.md``).
    """


class ClusterError(ReproError):
    """A replicated-cluster operation failed (:mod:`repro.cluster`).

    Covers replication-protocol violations (a follower ahead of its
    primary, a gap in a replicated batch sequence), misconfiguration
    (replication without a durable session), and follower lifecycle
    misuse.  The two consistency-visible cases have dedicated
    subclasses: :class:`NotPrimaryError` and :class:`StaleReadError`.
    """


class NotPrimaryError(ClusterError):
    """A mutation was sent to a node that is not the primary.

    Followers serve reads only; the error message names the primary
    address so clients (``repro.cluster.client.ClusterClient``) can
    redirect the write instead of failing.
    """


class StaleReadError(ClusterError):
    """A ``read_your_writes`` read could not be served freshly enough.

    Raised when a node's applied offset stays below the client's
    ``min_offset`` watermark past the staleness timeout.  The read
    *failed safe*: no view older than the watermark was returned, and
    the client may retry here or on a more caught-up node.
    """
