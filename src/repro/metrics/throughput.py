"""Throughput measurement helpers.

Throughput is defined as in Section VI-C: elements processed per second
of pure processing time, ignoring any inter-arrival waiting (streams are
replayed from memory).
"""

from __future__ import annotations

import time

from repro.errors import ExperimentError


class Stopwatch:
    """Accumulating wall-clock timer with pause/resume semantics.

    Example:
        >>> watch = Stopwatch()
        >>> watch.start()
        >>> # ... work ...
        >>> watch.stop()  # doctest: +SKIP
        >>> watch.elapsed > 0
        True
    """

    __slots__ = ("_accumulated", "_started_at")

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise ExperimentError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Pause; return the total accumulated seconds."""
        if self._started_at is None:
            raise ExperimentError("stopwatch is not running")
        self._accumulated += time.perf_counter() - self._started_at
        self._started_at = None
        return self._accumulated

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Total seconds, including the in-flight segment if running."""
        extra = 0.0
        if self._started_at is not None:
            extra = time.perf_counter() - self._started_at
        return self._accumulated + extra

    def reset(self) -> None:
        self._accumulated = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def throughput_eps(elements: int, seconds: float) -> float:
    """Elements per second; guards against zero/negative durations."""
    if elements < 0:
        raise ExperimentError(f"element count must be >= 0, got {elements}")
    if seconds <= 0.0:
        raise ExperimentError(f"duration must be positive, got {seconds}")
    return elements / seconds
