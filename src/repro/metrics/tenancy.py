"""Fair-share metrics for multi-tenant write scheduling.

The serving layer's round-robin tenant lanes (``docs/multitenancy.md``)
promise that one hot tenant cannot starve the rest.  This module
quantifies how well a served workload kept that promise, using Jain's
fairness index over per-tenant write counts:

    J(x) = (sum x_i)^2 / (n * sum x_i^2)

J is 1.0 when every tenant got an equal share and approaches ``1/n``
as one tenant monopolises the writer.  The serving layer reports this
summary under ``stats.tenants`` so operators can watch fairness live.

>>> summary = fair_share({"alice": 10, "bob": 10})
>>> summary.jain_index
1.0
>>> skewed = fair_share({"hot": 99, "cold": 1})
>>> skewed.jain_index < 0.6
True
>>> skewed.max_share
0.99
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

__all__ = ["FairShareSummary", "fair_share"]


@dataclass(frozen=True)
class FairShareSummary:
    """How evenly the writer thread was shared across tenants.

    Attributes:
        tenants: number of tenants observed.
        writes: total writes applied across all tenants.
        min_share: smallest per-tenant fraction of the writes.
        max_share: largest per-tenant fraction of the writes.
        jain_index: Jain's fairness index in ``(0, 1]``; 1.0 is a
            perfectly even split, ``1/tenants`` is total monopoly.
    """

    tenants: int
    writes: int
    min_share: float
    max_share: float
    jain_index: float

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready form for stats surfaces."""
        return {
            "tenants": self.tenants,
            "writes": self.writes,
            "min_share": self.min_share,
            "max_share": self.max_share,
            "jain_index": self.jain_index,
        }


def fair_share(writes: Mapping[str, int]) -> FairShareSummary:
    """Summarise per-tenant write counts into a fairness report.

    Tenants with zero writes still count toward ``tenants`` (an idle
    tenant is not unfairness); an empty or all-zero mapping reports a
    perfect index of 1.0 — nothing was contended.
    """
    counts = [max(0, int(count)) for count in writes.values()]
    total = sum(counts)
    if not counts or total == 0:
        return FairShareSummary(
            tenants=len(counts),
            writes=0,
            min_share=0.0,
            max_share=0.0,
            jain_index=1.0,
        )
    squares = sum(count * count for count in counts)
    return FairShareSummary(
        tenants=len(counts),
        writes=total,
        min_share=min(counts) / total,
        max_share=max(counts) / total,
        jain_index=(total * total) / (len(counts) * squares),
    )
