"""Error trajectories: estimate-vs-truth over the course of a stream.

Final-count accuracy (Figs. 3, 5) summarises a whole run in one number;
streaming deployments care how the error *evolves* — an estimator that
is accurate at the end but wild in the middle is useless for the
anomaly-detection applications the paper motivates.  This module
records synchronised (elements_processed, truth, estimate) checkpoints
and derives trajectory-level metrics (mean/max relative error, error at
each checkpoint, MAPE).

Typical use::

    tracker = TrajectoryTracker()
    oracle = ExactStreamingCounter()
    estimator = Abacus(budget=1500, seed=7)
    for t, element in enumerate(stream, start=1):
        oracle.process(element)
        estimator.process(element)
        if t % 1000 == 0:
            tracker.record(t, oracle.estimate, estimator.estimate)
    print(tracker.mean_relative_error())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.metrics.accuracy import relative_error


@dataclass(frozen=True)
class TrajectoryPoint:
    """One synchronised checkpoint along a stream."""

    elements_processed: int
    truth: float
    estimate: float

    @property
    def error(self) -> float:
        """Relative error at this checkpoint (0 when truth is 0 and the
        estimate agrees; infinite when only the truth is 0)."""
        if self.truth == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return relative_error(self.truth, self.estimate)

    @property
    def signed_deviation(self) -> float:
        """``estimate - truth`` (positive = overestimate)."""
        return self.estimate - self.truth


class TrajectoryTracker:
    """Accumulates checkpoints and summarises the error trajectory."""

    __slots__ = ("_points",)

    def __init__(self) -> None:
        self._points: List[TrajectoryPoint] = []

    def record(
        self, elements_processed: int, truth: float, estimate: float
    ) -> TrajectoryPoint:
        """Append a checkpoint; checkpoints must arrive in stream order."""
        if (
            self._points
            and elements_processed <= self._points[-1].elements_processed
        ):
            raise ExperimentError(
                "checkpoints must be recorded in increasing stream order "
                f"(got {elements_processed} after "
                f"{self._points[-1].elements_processed})"
            )
        point = TrajectoryPoint(elements_processed, truth, estimate)
        self._points.append(point)
        return point

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self._points)

    @property
    def points(self) -> List[TrajectoryPoint]:
        return list(self._points)

    def errors(self) -> List[float]:
        """Relative error at every checkpoint with non-zero truth."""
        return [p.error for p in self._points if p.truth != 0]

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def mean_relative_error(self) -> float:
        """MAPE over checkpoints with non-zero truth (nan if none)."""
        errors = self.errors()
        if not errors:
            return float("nan")
        return sum(errors) / len(errors)

    def max_relative_error(self) -> float:
        """Worst checkpoint error (nan if no checkpoint had truth)."""
        errors = self.errors()
        if not errors:
            return float("nan")
        return max(errors)

    def final_relative_error(self) -> float:
        """Error at the last checkpoint (the Figs. 3/5 quantity)."""
        if not self._points:
            raise ExperimentError("no checkpoints recorded")
        return self._points[-1].error

    def mean_signed_deviation(self) -> float:
        """Average of ``estimate - truth`` — a drift/bias indicator."""
        if not self._points:
            raise ExperimentError("no checkpoints recorded")
        deviations = [p.signed_deviation for p in self._points]
        return sum(deviations) / len(deviations)

    def series(self) -> Tuple[List[int], List[float], List[float]]:
        """``(xs, truths, estimates)`` for plotting."""
        xs = [p.elements_processed for p in self._points]
        truths = [p.truth for p in self._points]
        estimates = [p.estimate for p in self._points]
        return xs, truths, estimates

    def worst_window(
        self, width: int = 5
    ) -> Optional[Tuple[int, int, float]]:
        """The contiguous checkpoint window with the largest mean error.

        Returns ``(start_elements, end_elements, mean_error)`` or None
        when fewer than ``width`` checkpoints carry non-zero truth.
        """
        scored = [
            (p.elements_processed, p.error)
            for p in self._points
            if p.truth != 0
        ]
        if len(scored) < width:
            return None
        best: Optional[Tuple[int, int, float]] = None
        for i in range(len(scored) - width + 1):
            window = scored[i: i + width]
            mean_error = sum(e for _, e in window) / width
            if best is None or mean_error > best[2]:
                best = (window[0][0], window[-1][0], mean_error)
        return best


def track_against_oracle(
    stream,
    estimator,
    oracle,
    checkpoints: Optional[List[int]] = None,
    every: Optional[int] = None,
) -> TrajectoryTracker:
    """Drive ``estimator`` and ``oracle`` over ``stream``, recording
    synchronised checkpoints.

    Args:
        stream: the stream to replay (consumed once).
        estimator: any :class:`~repro.core.base.ButterflyEstimator`.
        oracle: the ground-truth estimator (usually
            :class:`~repro.core.exact.ExactStreamingCounter`).
        checkpoints: explicit sorted element counts to record at; or
        every: record every ``every`` elements (mutually exclusive).

    Returns:
        The populated :class:`TrajectoryTracker`.
    """
    if (checkpoints is None) == (every is None):
        raise ExperimentError(
            "pass exactly one of 'checkpoints' or 'every'"
        )
    marks = set(checkpoints or [])
    tracker = TrajectoryTracker()
    processed = 0
    for element in stream:
        oracle.process(element)
        estimator.process(element)
        processed += 1
        hit = (
            processed in marks
            if every is None
            else processed % every == 0
        )
        if hit:
            tracker.record(processed, oracle.estimate, estimator.estimate)
    return tracker
