"""Replication-lag accounting for the replicated serving cluster.

Lag is measured in **elements**, not seconds: a follower that acked
offset ``a`` while the primary has logged ``p`` elements is ``p - a``
elements behind, and that number is exactly how much estimate history
an ``eventual`` read from it may be missing (``docs/replication.md``).
The primary of :mod:`repro.cluster.primary` reports a
:func:`lag_summary` under its ``stats`` operation; the replicated-read
benchmark gates on the same numbers.

>>> summary = lag_summary(100, {"f1": 100, "f2": 93})
>>> summary["max_lag"], summary["min_acked_offset"]
(7, 93)
>>> summary["followers"]["f2"]["lag"]
7
>>> lag_summary(5, {})["max_lag"] is None
True
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

__all__ = ["lag_summary"]


def lag_summary(
    primary_offset: int,
    acked_offsets: Mapping[str, int],
) -> Dict[str, Any]:
    """Summarise per-follower replication lag against a primary offset.

    Args:
        primary_offset: elements the primary has logged (its WAL
            element offset).
        acked_offsets: last offset each follower acknowledged as
            applied, keyed by follower id.

    Returns:
        A dict with ``primary_offset``, per-follower
        ``{acked_offset, lag}`` under ``followers``, and the
        aggregates ``max_lag`` / ``mean_lag`` / ``min_acked_offset``
        (``None`` when no followers are connected).  A follower acked
        past the primary offset (impossible under the protocol, but
        stats must never lie by clamping silently) reports negative
        lag rather than being hidden.
    """
    followers = {
        name: {
            "acked_offset": acked,
            "lag": primary_offset - acked,
        }
        for name, acked in sorted(acked_offsets.items())
    }
    lags = [info["lag"] for info in followers.values()]
    return {
        "primary_offset": primary_offset,
        "followers": followers,
        "max_lag": max(lags) if lags else None,
        "mean_lag": (sum(lags) / len(lags)) if lags else None,
        "min_acked_offset": (
            min(info["acked_offset"] for info in followers.values())
            if followers
            else None
        ),
    }
