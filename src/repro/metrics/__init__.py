"""Evaluation metrics: accuracy, throughput, balance, replication
lag, and multi-tenant fair-share summaries."""

from repro.metrics.accuracy import (
    mean,
    percentile,
    relative_error,
    summarize_errors,
)
from repro.metrics.replication import lag_summary
from repro.metrics.tenancy import FairShareSummary, fair_share
from repro.metrics.throughput import Stopwatch, throughput_eps
from repro.metrics.timeseries import (
    TrajectoryPoint,
    TrajectoryTracker,
    track_against_oracle,
)
from repro.metrics.workload import workload_balance

__all__ = [
    "FairShareSummary",
    "TrajectoryPoint",
    "TrajectoryTracker",
    "track_against_oracle",
    "relative_error",
    "mean",
    "percentile",
    "summarize_errors",
    "Stopwatch",
    "fair_share",
    "lag_summary",
    "throughput_eps",
    "workload_balance",
]
