"""Accuracy metrics.

The paper's accuracy metric (Section VI-A) is the relative error
``|x - x_hat| / x`` for a true count ``x > 0``; experiments report the
mean over 10 independent trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError


def relative_error(truth: float, estimate: float) -> float:
    """``|truth - estimate| / truth``; requires ``truth > 0``."""
    if truth <= 0:
        raise ExperimentError(
            f"relative error undefined for non-positive truth {truth}"
        )
    return abs(truth - estimate) / truth


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input rather than returning NaN."""
    if not values:
        raise ExperimentError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ExperimentError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ExperimentError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass(frozen=True, slots=True)
class ErrorSummary:
    """Aggregate of per-trial relative errors."""

    mean: float
    stdev: float
    minimum: float
    maximum: float
    trials: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean * 100:.2f}% ± {self.stdev * 100:.2f}% "
            f"(min {self.minimum * 100:.2f}%, max {self.maximum * 100:.2f}%, "
            f"n={self.trials})"
        )


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Mean/stdev/min/max summary of a sequence of relative errors."""
    if not errors:
        raise ExperimentError("cannot summarize an empty error sequence")
    m = mean(errors)
    if len(errors) > 1:
        variance = sum((e - m) ** 2 for e in errors) / (len(errors) - 1)
    else:
        variance = 0.0
    return ErrorSummary(
        mean=m,
        stdev=math.sqrt(variance),
        minimum=min(errors),
        maximum=max(errors),
        trials=len(errors),
    )
