"""Per-element processing latency distribution.

Throughput (elements/second) hides tail behaviour: a streaming system
cares whether the occasional element stalls the pipeline.  ABACUS's
per-element cost is data-dependent (hub endpoints mean larger
neighbourhood intersections), so the tail matters.
:class:`LatencyRecorder` wraps any estimator and records per-element
wall-clock latencies into a fixed set of histogram buckets (constant
memory, no per-element allocation), from which percentiles are
interpolated.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Iterable, List, Sequence

from repro.core.base import ButterflyEstimator
from repro.errors import ExperimentError
from repro.types import StreamElement

# Default bucket boundaries in seconds: 1us .. 1s, log-spaced (factor ~2).
_DEFAULT_BOUNDARIES = tuple(
    1e-6 * (2.0**i) for i in range(21)
)


class LatencyRecorder:
    """Wraps an estimator; records per-element latency into a histogram.

    Args:
        estimator: the estimator to drive and time.
        boundaries: ascending bucket upper bounds in seconds; latencies
            above the last boundary land in an overflow bucket.

    Example:
        >>> from repro.core.exact import ExactStreamingCounter
        >>> from repro.types import insertion
        >>> recorder = LatencyRecorder(ExactStreamingCounter())
        >>> recorder.process(insertion(1, 2))
        0.0
        >>> recorder.count
        1
    """

    def __init__(
        self,
        estimator: ButterflyEstimator,
        boundaries: Sequence[float] = _DEFAULT_BOUNDARIES,
    ) -> None:
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ExperimentError("boundaries must be ascending and non-empty")
        self.estimator = estimator
        self._boundaries: List[float] = list(boundaries)
        # One bucket per boundary plus an overflow bucket.
        self._counts: List[int] = [0] * (len(self._boundaries) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def process(self, element: StreamElement) -> float:
        """Time one ``estimator.process`` call; return its delta."""
        start = time.perf_counter()
        delta = self.estimator.process(element)
        elapsed = time.perf_counter() - start
        self._record(elapsed)
        return delta

    def process_stream(self, stream: Iterable[StreamElement]) -> float:
        for element in stream:
            self.process(element)
        return self.estimator.estimate

    def _record(self, elapsed: float) -> None:
        self.count += 1
        self.total_seconds += elapsed
        if elapsed > self.max_seconds:
            self.max_seconds = elapsed
        self._counts[bisect_left(self._boundaries, elapsed)] += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mean_seconds(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total_seconds / self.count

    def percentile(self, q: float) -> float:
        """Approximate latency percentile (upper bucket boundary).

        Args:
            q: percentile in [0, 100].

        Returns:
            The upper boundary of the bucket containing the q-th
            percentile observation (``max_seconds`` for the overflow
            bucket) — a conservative estimate.
        """
        if not 0.0 <= q <= 100.0:
            raise ExperimentError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            raise ExperimentError("no latencies recorded")
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if i < len(self._boundaries):
                    return self._boundaries[i]
                return self.max_seconds
        return self.max_seconds

    def summary(self) -> dict:
        """p50/p90/p99/max/mean, in microseconds for readability."""
        to_us = 1e6
        return {
            "count": self.count,
            "mean_us": self.mean_seconds * to_us,
            "p50_us": self.percentile(50) * to_us,
            "p90_us": self.percentile(90) * to_us,
            "p99_us": self.percentile(99) * to_us,
            "max_us": self.max_seconds * to_us,
        }
