"""Workload-balance statistics for PARABACUS (Figure 10).

The paper measures per-thread workload as the number of element checks
performed inside set intersections during butterfly counting and shows
that PARABACUS assigns near-equal workloads to all threads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError


@dataclass(frozen=True, slots=True)
class WorkloadBalance:
    """Summary of a per-thread workload vector."""

    workloads: tuple
    total: int
    mean: float
    maximum: int
    minimum: int
    imbalance: float
    """``max / mean`` — 1.0 is perfect balance."""
    coefficient_of_variation: float
    """stdev / mean — 0.0 is perfect balance."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"threads={len(self.workloads)} total={self.total} "
            f"mean={self.mean:.0f} max={self.maximum} "
            f"imbalance={self.imbalance:.3f} "
            f"cv={self.coefficient_of_variation:.3f}"
        )


def workload_balance(workloads: Sequence[int]) -> WorkloadBalance:
    """Compute balance statistics of a per-thread workload vector."""
    if not workloads:
        raise ExperimentError("workload vector is empty")
    total = sum(workloads)
    n = len(workloads)
    average = total / n
    if average > 0:
        variance = sum((w - average) ** 2 for w in workloads) / n
        cv = math.sqrt(variance) / average
        imbalance = max(workloads) / average
    else:
        cv = 0.0
        imbalance = 1.0
    return WorkloadBalance(
        workloads=tuple(workloads),
        total=total,
        mean=average,
        maximum=max(workloads),
        minimum=min(workloads),
        imbalance=imbalance,
        coefficient_of_variation=cv,
    )
