"""(alpha, beta)-core decomposition of bipartite graphs.

The (alpha, beta)-core is the bipartite analogue of the k-core: the
maximal subgraph in which every left vertex has degree at least
``alpha`` and every right vertex degree at least ``beta``.  Community
search on bipartite graphs (one of the applications the paper cites in
Section I) is usually posed as finding dense (alpha, beta)-cores, and
cores are also the cheap pre-filter static butterfly counters use:
vertices outside the (2, 2)-core can join no butterfly at all.

Provided operations:

* :func:`ab_core` — the (alpha, beta)-core itself by cascading peeling.
* :func:`alpha_beta_core_numbers` — for a fixed ``alpha``, each right
  vertex's maximum ``beta`` (and vice versa via ``from_side``).
* :func:`butterfly_core_prefilter` — the (2, 2)-core, with the
  guarantee (asserted in tests) that butterfly counts are preserved.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.types import Side, Vertex


def ab_core(
    graph: BipartiteGraph, alpha: int, beta: int
) -> BipartiteGraph:
    """The (alpha, beta)-core of ``graph``.

    Repeatedly deletes left vertices with degree < ``alpha`` and right
    vertices with degree < ``beta`` until none remain.  The result is
    the unique maximal subgraph satisfying both constraints (possibly
    empty).  The input graph is not modified.

    Raises:
        GraphError: if ``alpha`` or ``beta`` is not positive (a zero
            threshold would keep zero-degree vertices, which the graph
            model forbids).
    """
    if alpha <= 0 or beta <= 0:
        raise GraphError(
            f"core thresholds must be positive, got ({alpha}, {beta})"
        )
    work = graph.copy()
    pending = deque()
    for u in list(work.left_vertices()):
        if work.degree(u) < alpha:
            pending.append((u, Side.LEFT))
    for v in list(work.right_vertices()):
        if work.degree(v) < beta:
            pending.append((v, Side.RIGHT))
    queued = {vertex for vertex, _ in pending}
    while pending:
        vertex, side = pending.popleft()
        queued.discard(vertex)
        if not work.has_vertex(vertex):
            continue
        neighbours = list(work.neighbors(vertex))
        for other in neighbours:
            if side is Side.LEFT:
                work.remove_edge(vertex, other)
            else:
                work.remove_edge(other, vertex)
        for other in neighbours:
            if not work.has_vertex(other) or other in queued:
                continue
            threshold = beta if side is Side.LEFT else alpha
            if work.degree(other) < threshold:
                pending.append((other, side.other()))
                queued.add(other)
    return work


def alpha_beta_core_numbers(
    graph: BipartiteGraph, alpha: int, from_side: Side = Side.RIGHT
) -> Dict[Vertex, int]:
    """For fixed ``alpha``, the max ``beta`` placing each vertex in core.

    With ``from_side=RIGHT`` (default) returns, for every right vertex
    ``v``, the largest ``beta`` such that ``v`` survives in the
    (alpha, beta)-core; symmetric for LEFT (then ``alpha`` constrains
    the right side).  Vertices that leave the core even at threshold 1
    get 0.

    Computed by peeling with increasing ``beta``; overall cost is the
    classic O(sum of degrees) per level.
    """
    if alpha <= 0:
        raise GraphError(f"alpha must be positive, got {alpha}")
    numbers: Dict[Vertex, int] = {}
    if from_side is Side.RIGHT:
        targets = list(graph.right_vertices())
    else:
        targets = list(graph.left_vertices())
    for vertex in targets:
        numbers[vertex] = 0

    def core_at(base: BipartiteGraph, beta: int) -> BipartiteGraph:
        if from_side is Side.RIGHT:
            return ab_core(base, alpha, beta)
        return ab_core(base, beta, alpha)

    beta = 1
    core = core_at(graph, beta) if targets else BipartiteGraph()
    while core.num_edges:
        survivors = (
            core.right_vertices()
            if from_side is Side.RIGHT
            else core.left_vertices()
        )
        for vertex in survivors:
            numbers[vertex] = beta
        beta += 1
        core = core_at(core, beta)
    return numbers


def butterfly_core_prefilter(graph: BipartiteGraph) -> BipartiteGraph:
    """The (2, 2)-core — the smallest subgraph containing all butterflies.

    Every butterfly vertex has two neighbours inside the butterfly, so
    cascading removal of degree-<2 vertices can never break one.  Static
    exact counters run on this core to skip pendant structure.
    """
    return ab_core(graph, 2, 2)
