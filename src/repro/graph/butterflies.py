"""Exact butterfly counting on static bipartite graphs.

A butterfly (Definition 2) is a 2x2 biclique: vertices ``u, x`` on the
left, ``v, w`` on the right, with all four edges ``(u,v), (u,w), (x,v),
(x,w)`` present.

Three exact counters are provided:

* :func:`count_butterflies` — the wedge-aggregation algorithm used by
  exact static counters (Wang et al.); chooses the cheaper side to
  iterate, runs in O(sum of wedge checks) time.
* :func:`count_butterflies_brute_force` — enumerates vertex pairs
  directly; O(|L|^2 * d) reference used only in tests.
* :func:`butterflies_containing_edge` — the per-edge count needed by
  the exact streaming oracle and by per-edge support in the bitruss
  decomposition.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Dict, Optional

from repro.graph.bipartite import BipartiteGraph
from repro.types import Side, Vertex


def count_butterflies(
    graph: BipartiteGraph, iterate_side: Optional[Side] = None
) -> int:
    """Exact number of butterflies in ``graph``.

    The algorithm aggregates wedges: for every vertex ``u`` on the
    iteration side, it walks the two-hop neighbourhood and counts, for
    each same-side vertex ``w != u``, the number ``c`` of common
    neighbours encountered.  Each unordered pair ``{u, w}`` then closes
    ``C(c, 2)`` butterflies.  To count every pair once, each pair is
    credited to the iteration of its lexicographically smaller member
    (by ``id`` ordering on the per-call index, not by value, so any
    hashable vertex type works).

    Args:
        graph: the bipartite graph to count in.
        iterate_side: side whose vertex pairs are enumerated.  Defaults
            to the side with the smaller total wedge work (cheapest-side
            heuristic from the paper's Section III-B).

    Returns:
        The exact butterfly count ``|B|``.
    """
    if iterate_side is None:
        iterate_side = _cheaper_side(graph)
    if iterate_side is Side.LEFT:
        outer = list(graph.left_vertices())
    else:
        outer = list(graph.right_vertices())
    # Assign each vertex a dense index so "count each pair once" can use
    # integer comparison regardless of the vertex type.
    order: Dict[Vertex, int] = {u: i for i, u in enumerate(outer)}
    total = 0
    for u in outer:
        rank = order[u]
        common: Counter = Counter()
        for v in graph.neighbors(u):
            for w in graph.neighbors(v):
                if order[w] > rank:
                    common[w] += 1
        for c in common.values():
            total += c * (c - 1) // 2
    return total


def count_butterflies_brute_force(graph: BipartiteGraph) -> int:
    """Reference O(|L|^2)-pair counter used to validate the fast one."""
    total = 0
    left = list(graph.left_vertices())
    for u, x in combinations(left, 2):
        nu = graph.neighbors(u)
        nx = graph.neighbors(x)
        if len(nu) > len(nx):
            nu, nx = nx, nu
        c = sum(1 for v in nu if v in nx)
        total += c * (c - 1) // 2
    return total


def butterflies_containing_edge(
    graph: BipartiteGraph, u: Vertex, v: Vertex
) -> int:
    """Number of butterflies that contain edge ``(u, v)``.

    ``u`` must be a left vertex and ``v`` a right vertex.  A butterfly
    through ``(u, v)`` picks another left vertex ``x`` adjacent to ``v``
    and another right vertex ``w`` adjacent to both ``u`` and ``x``:

        count = sum over x in N(v)\\{u} of |N(x) ∩ N(u) \\ {v}|

    The edge itself need not currently exist in the graph — this is what
    the exact streaming oracle exploits to compute the count delta
    *before* applying an insertion (or *after* removing the edge for a
    deletion).
    """
    nu = graph.neighbors(u)
    result = 0
    for x in graph.neighbors(v):
        if x == u:
            continue
        nx = graph.neighbors(x)
        small, large = (nu, nx) if len(nu) <= len(nx) else (nx, nu)
        for w in small:
            if w != v and w in large:
                result += 1
    return result


def butterfly_counts_per_vertex(graph: BipartiteGraph) -> Dict[Vertex, int]:
    """Exact per-vertex butterfly participation counts.

    Every butterfly ``{u, v, w, x}`` contributes one to each of its four
    vertices.  Used by the clustering-coefficient application.
    """
    counts: Counter = Counter()
    for side in (Side.LEFT, Side.RIGHT):
        vertices = (
            list(graph.left_vertices())
            if side is Side.LEFT
            else list(graph.right_vertices())
        )
        order: Dict[Vertex, int] = {u: i for i, u in enumerate(vertices)}
        for u in vertices:
            rank = order[u]
            common: Counter = Counter()
            for v in graph.neighbors(u):
                for w in graph.neighbors(v):
                    if order[w] > rank:
                        common[w] += 1
            for w, c in common.items():
                pairs = c * (c - 1) // 2
                if pairs:
                    counts[u] += pairs
                    counts[w] += pairs
    # The loop above counts butterflies per same-side pair on both
    # sides, so each vertex already accumulated its full participation.
    return dict(counts)


def butterfly_density(
    graph: BipartiteGraph, butterflies: Optional[int] = None
) -> float:
    """Butterflies per possible 2x2 cell pair, as reported in Table II.

    Defined as ``|B| / (C(|L|, 2) * C(|R|, 2))`` — the fraction of
    potential butterflies that are realised.
    """
    if butterflies is None:
        butterflies = count_butterflies(graph)
    nl, nr = graph.num_left, graph.num_right
    cells = (nl * (nl - 1) // 2) * (nr * (nr - 1) // 2)
    if cells == 0:
        return 0.0
    return butterflies / cells


def _cheaper_side(graph: BipartiteGraph) -> Side:
    """Side with the smaller wedge workload ``sum_v d(v)^2``."""
    left_work = sum(
        graph.degree(v) ** 2 for v in graph.right_vertices()
    )
    right_work = sum(
        graph.degree(u) ** 2 for u in graph.left_vertices()
    )
    # Iterating LEFT pairs walks through RIGHT centres, whose work is
    # left_work; pick the smaller.
    return Side.LEFT if left_work <= right_work else Side.RIGHT
