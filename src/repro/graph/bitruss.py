"""k-bitruss decomposition built on per-edge butterfly support.

The paper motivates butterfly counting partly through k-bitruss
computation (Section I): the k-bitruss of a bipartite graph is the
maximal subgraph in which every edge is contained in at least ``k``
butterflies *within the subgraph*.  The *bitruss number* of an edge is
the largest ``k`` such that the edge survives in the k-bitruss.

This module implements the standard peeling algorithm: repeatedly remove
the edge with minimum butterfly support, updating the supports of the
edges that shared butterflies with it.
"""

from __future__ import annotations

import heapq
from typing import Dict, Set, Tuple

from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import butterflies_containing_edge
from repro.types import Edge, Vertex


def butterfly_support(graph: BipartiteGraph) -> Dict[Edge, int]:
    """Per-edge butterfly counts ``sup(e)`` for every edge in ``graph``."""
    return {
        (u, v): butterflies_containing_edge(graph, u, v)
        for u, v in graph.edges()
    }


def bitruss_decomposition(graph: BipartiteGraph) -> Dict[Edge, int]:
    """Bitruss number for every edge of ``graph``.

    Peels edges in non-decreasing order of remaining butterfly support.
    When an edge ``(u, v)`` with current support ``s`` is peeled, its
    bitruss number is ``max(s, previous maximum)`` (supports are
    monotone under peeling), and the supports of all edges that formed a
    butterfly with it are decremented.

    Runs on a private copy; the input graph is left untouched.

    Returns:
        dict mapping each edge (as ``(left, right)``) to its bitruss
        number.  Edges in no butterfly get bitruss number 0.
    """
    work = graph.copy()
    support = butterfly_support(work)
    heap: list[Tuple[int, Edge]] = [(s, e) for e, s in support.items()]
    heapq.heapify(heap)
    removed: Set[Edge] = set()
    bitruss: Dict[Edge, int] = {}
    current_level = 0
    while heap:
        s, edge = heapq.heappop(heap)
        if edge in removed or s != support.get(edge, -1):
            continue  # stale heap entry
        current_level = max(current_level, s)
        bitruss[edge] = current_level
        removed.add(edge)
        u, v = edge
        _decrement_cobutterfly_supports(work, support, heap, u, v)
        work.remove_edge(u, v)
        del support[edge]
    return bitruss


def _decrement_cobutterfly_supports(
    graph: BipartiteGraph,
    support: Dict[Edge, int],
    heap: list,
    u: Vertex,
    v: Vertex,
) -> None:
    """Decrement supports of every edge sharing a butterfly with (u, v).

    For every butterfly {u, v, x, w} (x left, w right) that contains the
    edge being peeled, the three other edges (u, w), (x, v), (x, w)
    each lose one butterfly.
    """
    nu = graph.neighbors(u)
    for x in list(graph.neighbors(v)):
        if x == u:
            continue
        nx = graph.neighbors(x)
        small, large = (nu, nx) if len(nu) <= len(nx) else (nx, nu)
        for w in small:
            if w == v or w not in large:
                continue
            for other in ((u, w), (x, v), (x, w)):
                if other in support:
                    support[other] -= 1
                    heapq.heappush(heap, (support[other], other))


def k_bitruss(graph: BipartiteGraph, k: int) -> BipartiteGraph:
    """The maximal subgraph whose every edge has >= k butterflies in it.

    Computed by repeatedly deleting edges with support below ``k``.
    """
    work = graph.copy()
    support = butterfly_support(work)
    queue = [e for e, s in support.items() if s < k]
    in_queue: Set[Edge] = set(queue)
    while queue:
        edge = queue.pop()
        in_queue.discard(edge)
        if edge not in support:
            continue
        u, v = edge
        # Collect co-butterfly edges before removal so their supports
        # can be decremented afterwards.
        affected: list[Edge] = []
        nu = work.neighbors(u)
        for x in list(work.neighbors(v)):
            if x == u:
                continue
            nx = work.neighbors(x)
            small, large = (nu, nx) if len(nu) <= len(nx) else (nx, nu)
            for w in small:
                if w == v or w not in large:
                    continue
                affected.extend(((u, w), (x, v), (x, w)))
        work.remove_edge(u, v)
        del support[edge]
        for other in affected:
            if other in support:
                support[other] -= 1
                if support[other] < k and other not in in_queue:
                    queue.append(other)
                    in_queue.add(other)
    return work
