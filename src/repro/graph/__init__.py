"""Bipartite graph substrate.

This subpackage provides the in-memory dynamic bipartite graph, exact
butterfly counting (global, per-edge, and per-vertex), wedge utilities,
a k-bitruss decomposition built on butterfly support, one-mode
projections, and synthetic graph generators.
"""

from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import (
    butterflies_containing_edge,
    butterfly_counts_per_vertex,
    count_butterflies,
    count_butterflies_brute_force,
)
from repro.graph.wedges import count_wedges, wedge_counts_per_pair
from repro.graph.bitruss import (
    bitruss_decomposition,
    butterfly_support,
    k_bitruss,
)
from repro.graph.core_decomposition import (
    ab_core,
    alpha_beta_core_numbers,
    butterfly_core_prefilter,
)
from repro.graph.tip_decomposition import (
    butterfly_counts_one_side,
    k_tip,
    max_tip_number,
    tip_decomposition,
)
from repro.graph.projection import project
from repro.graph.generators import (
    bipartite_chung_lu,
    bipartite_configuration_model,
    bipartite_erdos_renyi,
    planted_bicliques,
    power_law_degree_sequence,
)

__all__ = [
    "BipartiteGraph",
    "count_butterflies",
    "count_butterflies_brute_force",
    "butterflies_containing_edge",
    "butterfly_counts_per_vertex",
    "count_wedges",
    "wedge_counts_per_pair",
    "bitruss_decomposition",
    "butterfly_support",
    "k_bitruss",
    "ab_core",
    "alpha_beta_core_numbers",
    "butterfly_core_prefilter",
    "tip_decomposition",
    "k_tip",
    "max_tip_number",
    "butterfly_counts_one_side",
    "project",
    "bipartite_erdos_renyi",
    "bipartite_chung_lu",
    "bipartite_configuration_model",
    "planted_bicliques",
    "power_law_degree_sequence",
]
