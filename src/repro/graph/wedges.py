"""Wedge (2-path) utilities for bipartite graphs.

A *wedge* is a path of length two ``w - v - x`` whose endpoints ``w``
and ``x`` lie on the same side of the bipartition and whose centre ``v``
lies on the other side.  Butterflies and wedges are tightly linked: a
pair of same-side vertices with ``c`` common neighbours closes
``C(c, 2)`` butterflies, and a butterfly is exactly a pair of wedges
sharing both endpoints.  The exact counters in
:mod:`repro.graph.butterflies` are built on these helpers.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Tuple

from repro.graph.bipartite import BipartiteGraph
from repro.types import Side, Vertex


def count_wedges(graph: BipartiteGraph, centre_side: Side = Side.RIGHT) -> int:
    """Total number of wedges whose centre is on ``centre_side``.

    Each centre vertex ``v`` of degree ``d`` contributes ``C(d, 2)``
    wedges.
    """
    if centre_side is Side.RIGHT:
        centres = graph.right_vertices()
    else:
        centres = graph.left_vertices()
    total = 0
    for v in centres:
        d = graph.degree(v)
        total += d * (d - 1) // 2
    return total


def wedge_counts_per_pair(
    graph: BipartiteGraph, endpoint_side: Side = Side.LEFT
) -> Dict[Tuple[Vertex, Vertex], int]:
    """Number of common neighbours for every connected same-side pair.

    Returns a dict keyed by an ordered pair ``(w, x)`` (ordered by
    ``repr`` to make the key canonical for arbitrary hashables) of
    vertices on ``endpoint_side`` mapping to ``|N(w) ∩ N(x)|``.  Pairs
    with no common neighbour are omitted.
    """
    if endpoint_side is Side.LEFT:
        centres = list(graph.right_vertices())
    else:
        centres = list(graph.left_vertices())
    counts: Counter = Counter()
    for v in centres:
        endpoints = sorted(graph.neighbors(v), key=repr)
        for i, w in enumerate(endpoints):
            for x in endpoints[i + 1:]:
                counts[(w, x)] += 1
    return dict(counts)


def common_neighbor_count(graph: BipartiteGraph, w: Vertex, x: Vertex) -> int:
    """``|N(w) ∩ N(x)|`` computed by intersecting the smaller set."""
    nw = graph.neighbors(w)
    nx = graph.neighbors(x)
    if len(nw) > len(nx):
        nw, nx = nx, nw
    return sum(1 for y in nw if y in nx)


def wedge_participation(
    graph: BipartiteGraph, vertices: Iterable[Vertex]
) -> int:
    """Number of wedges centred at each vertex of ``vertices``, summed."""
    total = 0
    for v in vertices:
        d = graph.degree(v)
        total += d * (d - 1) // 2
    return total
