"""One-mode projection of a bipartite graph.

Recommendation-style applications (Section I of the paper) often project
the bipartite user-item graph onto one side: two users become connected
with weight equal to their number of co-purchased items.  Butterflies in
the bipartite graph correspond to edges of weight >= 2 in the
projection, which is why butterfly density drives the usefulness of
collaborative filtering.  The projection here is used by the
recommendation example.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Tuple

from repro.graph.bipartite import BipartiteGraph
from repro.types import Side, Vertex


def project(
    graph: BipartiteGraph, side: Side = Side.LEFT
) -> Dict[Tuple[Vertex, Vertex], int]:
    """Weighted one-mode projection onto ``side``.

    Returns a dict mapping unordered same-side vertex pairs (stored as a
    tuple sorted by ``repr`` for canonicality) to the number of common
    neighbours they share.  Pairs with zero common neighbours are
    omitted.
    """
    centres = (
        list(graph.right_vertices())
        if side is Side.LEFT
        else list(graph.left_vertices())
    )
    weights: Counter = Counter()
    for c in centres:
        endpoints = sorted(graph.neighbors(c), key=repr)
        for i, w in enumerate(endpoints):
            for x in endpoints[i + 1:]:
                weights[(w, x)] += 1
    return dict(weights)


def top_co_neighbors(
    graph: BipartiteGraph, vertex: Vertex, limit: int = 10
) -> list[Tuple[Vertex, int]]:
    """Same-side vertices sharing the most neighbours with ``vertex``.

    This is the core primitive of item-item collaborative filtering:
    "users who bought X also bought Y".
    """
    scores: Counter = Counter()
    for mid in graph.neighbors(vertex):
        for other in graph.neighbors(mid):
            if other != vertex:
                scores[other] += 1
    return scores.most_common(limit)
