"""A dynamic, undirected, unweighted bipartite graph.

The graph matches the paper's model (Section II): two disjoint vertex
partitions ``L`` and ``R``, no parallel edges, no self-loops (impossible
by construction since both endpoints live on different sides), and
vertices whose degree drops to zero are removed from the vertex set.

Adjacency is stored as ``dict[Vertex, set[Vertex]]`` per side, which
gives O(1) expected edge insertion/deletion/membership and lets the
butterfly-counting code run set intersections directly on neighbour
sets — the operation at the heart of ABACUS.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.errors import DuplicateEdgeError, MissingEdgeError, PartitionError
from repro.types import Edge, Side, Vertex


class BipartiteGraph:
    """Mutable bipartite graph with set-based adjacency.

    Vertices are created implicitly when the first incident edge is
    inserted and removed implicitly when their last incident edge is
    deleted, mirroring the paper's "no zero-degree vertices" convention.

    Example:
        >>> g = BipartiteGraph()
        >>> g.add_edge("user1", "item1")
        >>> g.add_edge("user2", "item1")
        >>> g.degree("item1")
        2
    """

    __slots__ = ("_left", "_right", "_num_edges")

    def __init__(self, edges: Optional[Iterable[Edge]] = None) -> None:
        self._left: Dict[Vertex, Set[Vertex]] = {}
        self._right: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of edges currently in the graph (``|E(t)|``)."""
        return self._num_edges

    @property
    def num_left(self) -> int:
        """Number of left-partition vertices with non-zero degree."""
        return len(self._left)

    @property
    def num_right(self) -> int:
        """Number of right-partition vertices with non-zero degree."""
        return len(self._right)

    @property
    def num_vertices(self) -> int:
        return len(self._left) + len(self._right)

    def left_vertices(self) -> Iterator[Vertex]:
        """Iterate over the left partition ``L(t)``."""
        return iter(self._left)

    def right_vertices(self) -> Iterator[Vertex]:
        """Iterate over the right partition ``R(t)``."""
        return iter(self._right)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(left, right)`` tuples."""
        for u, neighbours in self._left.items():
            for v in neighbours:
                yield (u, v)

    def __len__(self) -> int:
        return self._num_edges

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        neighbours = self._left.get(u)
        return neighbours is not None and v in neighbours

    # ------------------------------------------------------------------
    # Vertex queries
    # ------------------------------------------------------------------
    def side_of(self, vertex: Vertex) -> Optional[Side]:
        """Which partition ``vertex`` belongs to, or None if absent."""
        if vertex in self._left:
            return Side.LEFT
        if vertex in self._right:
            return Side.RIGHT
        return None

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._left or vertex in self._right

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """The neighbour set ``N(v)``.

        The returned set is the live internal set (not a copy) for
        speed; callers must not mutate it.  Absent vertices have an
        empty neighbourhood.
        """
        neighbours = self._left.get(vertex)
        if neighbours is not None:
            return neighbours
        return self._right.get(vertex, _EMPTY_SET)

    def degree(self, vertex: Vertex) -> int:
        """The degree ``d(v)``; 0 for absent vertices."""
        return len(self.neighbors(vertex))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert edge ``{u, v}`` with ``u`` on the left, ``v`` right.

        Raises:
            DuplicateEdgeError: if the edge already exists.
            PartitionError: if ``u`` is already a right vertex or ``v``
                is already a left vertex.
        """
        if u in self._right:
            raise PartitionError(f"vertex {u!r} is in the right partition")
        if v in self._left:
            raise PartitionError(f"vertex {v!r} is in the left partition")
        left_neighbours = self._left.get(u)
        if left_neighbours is None:
            left_neighbours = set()
            self._left[u] = left_neighbours
        elif v in left_neighbours:
            raise DuplicateEdgeError(f"edge ({u!r}, {v!r}) already exists")
        right_neighbours = self._right.get(v)
        if right_neighbours is None:
            right_neighbours = set()
            self._right[v] = right_neighbours
        left_neighbours.add(v)
        right_neighbours.add(u)
        self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete edge ``{u, v}``; drops zero-degree endpoints.

        Raises:
            MissingEdgeError: if the edge does not exist.
        """
        left_neighbours = self._left.get(u)
        if left_neighbours is None or v not in left_neighbours:
            raise MissingEdgeError(f"edge ({u!r}, {v!r}) does not exist")
        left_neighbours.discard(v)
        if not left_neighbours:
            del self._left[u]
        right_neighbours = self._right[v]
        right_neighbours.discard(u)
        if not right_neighbours:
            del self._right[v]
        self._num_edges -= 1

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        neighbours = self._left.get(u)
        return neighbours is not None and v in neighbours

    def clear(self) -> None:
        """Remove every edge and vertex."""
        self._left.clear()
        self._right.clear()
        self._num_edges = 0

    def copy(self) -> "BipartiteGraph":
        """A deep copy sharing no adjacency state with this graph."""
        clone = BipartiteGraph()
        clone._left = {u: set(ns) for u, ns in self._left.items()}
        clone._right = {v: set(ns) for v, ns in self._right.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def degree_sum(self, vertices: Iterable[Vertex]) -> int:
        """Cumulative degree of a set of vertices (cheapest-side test)."""
        return sum(self.degree(v) for v in vertices)

    def max_degree(self) -> int:
        """Largest degree over all vertices (0 for an empty graph)."""
        degrees = [len(ns) for ns in self._left.values()]
        degrees.extend(len(ns) for ns in self._right.values())
        return max(degrees, default=0)

    def density(self) -> float:
        """Edge density ``|E| / (|L| * |R|)`` (0.0 for empty sides)."""
        cells = self.num_left * self.num_right
        if cells == 0:
            return 0.0
        return self._num_edges / cells

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BipartiteGraph(|L|={self.num_left}, |R|={self.num_right}, "
            f"|E|={self._num_edges})"
        )


_EMPTY_SET: Set[Vertex] = frozenset()  # type: ignore[assignment]


def validate_bipartite(graph: BipartiteGraph) -> Tuple[bool, str]:
    """Check internal consistency of a graph's adjacency structures.

    Returns ``(True, "")`` when consistent, otherwise ``(False, reason)``.
    Intended for tests and debugging rather than hot paths.
    """
    edge_count = 0
    for u, neighbours in graph._left.items():
        if not neighbours:
            return False, f"left vertex {u!r} has zero degree"
        for v in neighbours:
            mirrored = graph._right.get(v)
            if mirrored is None or u not in mirrored:
                return False, f"edge ({u!r}, {v!r}) missing right mirror"
            edge_count += 1
    for v, neighbours in graph._right.items():
        if not neighbours:
            return False, f"right vertex {v!r} has zero degree"
        for u in neighbours:
            mirrored = graph._left.get(u)
            if mirrored is None or v not in mirrored:
                return False, f"edge ({u!r}, {v!r}) missing left mirror"
    if edge_count != graph.num_edges:
        return False, (
            f"edge count mismatch: counted {edge_count}, "
            f"recorded {graph.num_edges}"
        )
    return True, ""
