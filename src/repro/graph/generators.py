"""Synthetic bipartite graph generators.

The paper evaluates on four KONECT graphs that are unavailable offline
and far too large for a pure-Python reproduction (up to 327M edges).
These generators produce scaled-down *analogues* whose degree skew and
butterfly density can be tuned to match the orderings in Table II; see
``repro/experiments/datasets.py`` for the concrete configurations and
DESIGN.md for the substitution rationale.

All generators are deterministic given a seeded ``random.Random``.
Vertex identifiers are integers: left vertices ``0..n_left-1`` and right
vertices ``n_left..n_left+n_right-1`` so that the two partitions never
collide.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.types import Edge


def power_law_degree_sequence(
    n: int,
    exponent: float,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Sample ``n`` degrees from a discrete power law ``p(d) ~ d^-exponent``.

    Uses inverse-transform sampling on the continuous Pareto and rounds
    down, the standard recipe for scale-free degree sequences.

    Args:
        n: number of vertices.
        exponent: power-law exponent (> 1); smaller means heavier tail.
        min_degree: smallest degree (>= 1).
        max_degree: optional cap on degrees (defaults to ``n``).
        rng: source of randomness (defaults to a fresh unseeded one).
    """
    if exponent <= 1.0:
        raise GraphError(f"power-law exponent must exceed 1, got {exponent}")
    if min_degree < 1:
        raise GraphError(f"min_degree must be >= 1, got {min_degree}")
    rng = rng or random.Random()
    cap = max_degree if max_degree is not None else n
    degrees = []
    inv = 1.0 / (exponent - 1.0)
    for _ in range(n):
        u = rng.random()
        d = int(min_degree * (1.0 - u) ** (-inv))
        degrees.append(max(min_degree, min(d, cap)))
    return degrees


def bipartite_erdos_renyi(
    n_left: int,
    n_right: int,
    n_edges: int,
    rng: Optional[random.Random] = None,
) -> List[Edge]:
    """Uniform random bipartite graph with exactly ``n_edges`` edges.

    Sampled without replacement from the ``n_left x n_right`` grid.
    """
    rng = rng or random.Random()
    cells = n_left * n_right
    if n_edges > cells:
        raise GraphError(
            f"cannot place {n_edges} edges in a {n_left}x{n_right} grid"
        )
    edges: set[Tuple[int, int]] = set()
    while len(edges) < n_edges:
        u = rng.randrange(n_left)
        v = n_left + rng.randrange(n_right)
        edges.add((u, v))
    result = list(edges)
    rng.shuffle(result)
    return result


def bipartite_chung_lu(
    n_left: int,
    n_right: int,
    n_edges: int,
    left_exponent: float = 2.2,
    right_exponent: float = 2.2,
    rng: Optional[random.Random] = None,
) -> List[Edge]:
    """Chung–Lu style power-law bipartite graph with ``n_edges`` edges.

    Each endpoint of each edge is drawn independently from a weight
    distribution proportional to a power-law degree sequence, and
    duplicate edges are rejected.  Expected degrees follow the weights,
    giving realistic skew: a few hub vertices (heavy users / popular
    items) and a long tail.

    Returns the edge list in generation order, which serves as the
    "natural arrival order" of the stream experiments.
    """
    rng = rng or random.Random()
    left_weights = power_law_degree_sequence(
        n_left, left_exponent, rng=rng
    )
    right_weights = power_law_degree_sequence(
        n_right, right_exponent, rng=rng
    )
    left_picker = _WeightedPicker(left_weights, rng)
    right_picker = _WeightedPicker(right_weights, rng)
    edges: set[Tuple[int, int]] = set()
    ordered: List[Edge] = []
    attempts = 0
    max_attempts = 50 * n_edges + 1000
    while len(ordered) < n_edges:
        attempts += 1
        if attempts > max_attempts:
            raise GraphError(
                "Chung-Lu generator failed to place enough distinct edges; "
                "increase vertex counts or lower n_edges"
            )
        u = left_picker.pick()
        v = n_left + right_picker.pick()
        if (u, v) in edges:
            continue
        edges.add((u, v))
        ordered.append((u, v))
    return ordered


def bipartite_configuration_model(
    left_degrees: Sequence[int],
    right_degrees: Sequence[int],
    rng: Optional[random.Random] = None,
) -> List[Edge]:
    """Configuration-model bipartite graph from two degree sequences.

    Creates stubs for each vertex, shuffles, and pairs them; duplicate
    pairings are dropped (so realised degrees can fall slightly short of
    the prescription, as usual for simple-graph projections of the
    configuration model).  The two stub totals need not match exactly;
    the pairing stops at the shorter side.
    """
    rng = rng or random.Random()
    n_left = len(left_degrees)
    left_stubs: List[int] = []
    for u, d in enumerate(left_degrees):
        left_stubs.extend([u] * d)
    right_stubs: List[int] = []
    for i, d in enumerate(right_degrees):
        right_stubs.extend([n_left + i] * d)
    rng.shuffle(left_stubs)
    rng.shuffle(right_stubs)
    seen: set[Tuple[int, int]] = set()
    edges: List[Edge] = []
    for u, v in zip(left_stubs, right_stubs):
        if (u, v) in seen:
            continue
        seen.add((u, v))
        edges.append((u, v))
    return edges


def planted_bicliques(
    n_left: int,
    n_right: int,
    n_background_edges: int,
    n_cliques: int,
    clique_size: Tuple[int, int],
    rng: Optional[random.Random] = None,
) -> List[Edge]:
    """Sparse background plus planted dense bicliques.

    Used by the anomaly-detection example: each planted
    ``a x b`` biclique injects ``C(a,2)*C(b,2)`` butterflies at a known
    position in the stream, producing a burst an estimator should see.

    Args:
        n_left: left vertices available for the background.
        n_right: right vertices available for the background.
        n_background_edges: uniform background edges.
        n_cliques: number of planted bicliques.
        clique_size: ``(a, b)`` dimensions of each planted biclique.
        rng: randomness source.

    Returns:
        Edge list: background edges in random order with each planted
        biclique's edges inserted contiguously at a random offset.
    """
    rng = rng or random.Random()
    background = bipartite_erdos_renyi(
        n_left, n_right, n_background_edges, rng
    )
    a, b = clique_size
    edges = list(background)
    used = set(background)
    for c in range(n_cliques):
        lefts = rng.sample(range(n_left), a)
        rights = [n_left + r for r in rng.sample(range(n_right), b)]
        clique_edges = [
            (u, v) for u in lefts for v in rights if (u, v) not in used
        ]
        used.update(clique_edges)
        offset = rng.randrange(len(edges) + 1)
        edges[offset:offset] = clique_edges
    return edges


class _WeightedPicker:
    """O(1) weighted sampling over a fixed integer weight vector.

    Implements the alias method; rebuilding is unnecessary because
    weights are fixed for the lifetime of a generator call.
    """

    __slots__ = ("_rng", "_n", "_prob", "_alias")

    def __init__(self, weights: Sequence[int], rng: random.Random) -> None:
        self._rng = rng
        n = len(weights)
        self._n = n
        total = float(sum(weights))
        scaled = [w * n / total for w in weights]
        prob = [0.0] * n
        alias = [0] * n
        small = [i for i, p in enumerate(scaled) if p < 1.0]
        large = [i for i, p in enumerate(scaled) if p >= 1.0]
        while small and large:
            s = small.pop()
            lg = large.pop()
            prob[s] = scaled[s]
            alias[s] = lg
            scaled[lg] = scaled[lg] + scaled[s] - 1.0
            if scaled[lg] < 1.0:
                small.append(lg)
            else:
                large.append(lg)
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0
        self._prob = prob
        self._alias = alias

    def pick(self) -> int:
        i = self._rng.randrange(self._n)
        if self._rng.random() < self._prob[i]:
            return i
        return self._alias[i]
