"""Descriptive statistics of bipartite graphs.

Used to characterise the synthetic dataset analogues (an extended
Table II) and generally handy when porting the library to new data:
degree distributions, skew, and wedge/butterfly summary in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import butterfly_density, count_butterflies
from repro.graph.wedges import count_wedges
from repro.types import Side


@dataclass(frozen=True, slots=True)
class DegreeSummary:
    """Five-number-style summary of one partition's degrees."""

    count: int
    total: int
    mean: float
    maximum: int
    minimum: int
    gini: float
    """Gini coefficient of the degrees: 0 = uniform, -> 1 = hub-dominated."""


@dataclass(frozen=True, slots=True)
class GraphSummary:
    """One-pass characterisation of a bipartite graph."""

    num_edges: int
    left: DegreeSummary
    right: DegreeSummary
    wedges_left: int
    wedges_right: int
    butterflies: Optional[int]
    butterfly_density: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": self.num_edges,
            "left_vertices": self.left.count,
            "right_vertices": self.right.count,
            "left_max_degree": self.left.maximum,
            "right_max_degree": self.right.maximum,
            "left_gini": self.left.gini,
            "right_gini": self.right.gini,
            "wedges_left": self.wedges_left,
            "wedges_right": self.wedges_right,
            "butterflies": self.butterflies,
            "butterfly_density": self.butterfly_density,
        }


def degree_summary(graph: BipartiteGraph, side: Side) -> DegreeSummary:
    """Summarise the degree distribution of one partition."""
    vertices = (
        graph.left_vertices() if side is Side.LEFT else graph.right_vertices()
    )
    degrees = sorted(graph.degree(v) for v in vertices)
    if not degrees:
        raise GraphError(f"partition {side.value} is empty")
    total = sum(degrees)
    n = len(degrees)
    # Gini via the sorted-rank identity.
    weighted = sum((i + 1) * d for i, d in enumerate(degrees))
    gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n if total else 0.0
    return DegreeSummary(
        count=n,
        total=total,
        mean=total / n,
        maximum=degrees[-1],
        minimum=degrees[0],
        gini=gini,
    )


def summarize_graph(
    graph: BipartiteGraph, count_exact_butterflies: bool = True
) -> GraphSummary:
    """Full characterisation; set ``count_exact_butterflies=False`` to
    skip the (comparatively expensive) exact count on large graphs."""
    if graph.num_edges == 0:
        raise GraphError("cannot summarise an empty graph")
    butterflies: Optional[int] = None
    density: Optional[float] = None
    if count_exact_butterflies:
        butterflies = count_butterflies(graph)
        density = butterfly_density(graph, butterflies)
    return GraphSummary(
        num_edges=graph.num_edges,
        left=degree_summary(graph, Side.LEFT),
        right=degree_summary(graph, Side.RIGHT),
        wedges_left=count_wedges(graph, Side.LEFT),
        wedges_right=count_wedges(graph, Side.RIGHT),
        butterflies=butterflies,
        butterfly_density=density,
    )


def degree_histogram(graph: BipartiteGraph, side: Side) -> Dict[int, int]:
    """Map degree -> number of vertices with that degree."""
    histogram: Dict[int, int] = {}
    vertices = (
        graph.left_vertices() if side is Side.LEFT else graph.right_vertices()
    )
    for v in vertices:
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def top_degree_vertices(
    graph: BipartiteGraph, side: Side, limit: int = 10
) -> List:
    """The ``limit`` highest-degree vertices of one partition."""
    vertices = (
        graph.left_vertices() if side is Side.LEFT else graph.right_vertices()
    )
    ranked = sorted(vertices, key=graph.degree, reverse=True)
    return [(v, graph.degree(v)) for v in ranked[:limit]]
