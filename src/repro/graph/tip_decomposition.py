"""Tip decomposition: vertex peeling by butterfly participation.

The paper motivates butterfly counting through dense-subgraph discovery
(Section I); alongside the edge-level k-bitruss
(:mod:`repro.graph.bitruss`), the standard *vertex-level* notion is the
k-tip [Sariyuce & Pinar, WSDM'18]: the maximal subgraph in which every
vertex of the peeled side participates in at least ``k`` butterflies
*within the subgraph*.  The *tip number* of a vertex is the largest
``k`` for which it survives.

Peeling is one-sided: butterflies pair two same-side vertices, so the
decomposition peels (say) left vertices while right vertices merely
carry adjacency.  Both sides can be decomposed independently.

The implementation follows the standard peeling loop: repeatedly remove
a vertex of minimum remaining butterfly count, updating the counts of
the same-side vertices it shared butterflies with.  Shared-butterfly
updates use the wedge formulation: vertices ``u`` and ``w`` on the
peeled side share ``C(c, 2)`` butterflies where ``c = |N(u) ∩ N(w)|``.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, List, Tuple

from repro.graph.bipartite import BipartiteGraph
from repro.types import Side, Vertex


def butterfly_counts_one_side(
    graph: BipartiteGraph, side: Side
) -> Dict[Vertex, int]:
    """Per-vertex butterfly counts restricted to one side.

    Returns the number of butterflies each ``side`` vertex participates
    in.  (Each butterfly is counted once for each of its two vertices
    on that side.)
    """
    if side is Side.LEFT:
        vertices = list(graph.left_vertices())
    else:
        vertices = list(graph.right_vertices())
    order: Dict[Vertex, int] = {u: i for i, u in enumerate(vertices)}
    counts: Counter = Counter()
    for u in vertices:
        rank = order[u]
        common: Counter = Counter()
        for v in graph.neighbors(u):
            for w in graph.neighbors(v):
                if order[w] > rank:
                    common[w] += 1
        for w, c in common.items():
            pairs = c * (c - 1) // 2
            if pairs:
                counts[u] += pairs
                counts[w] += pairs
    return {u: counts.get(u, 0) for u in vertices}


def _shared_butterflies(
    graph: BipartiteGraph, u: Vertex
) -> Dict[Vertex, int]:
    """Butterflies vertex ``u`` shares with each same-side vertex."""
    common: Counter = Counter()
    for v in graph.neighbors(u):
        for w in graph.neighbors(v):
            if w != u:
                common[w] += 1
    return {
        w: c * (c - 1) // 2 for w, c in common.items() if c >= 2
    }


def tip_decomposition(
    graph: BipartiteGraph, side: Side = Side.LEFT
) -> Dict[Vertex, int]:
    """Tip number of every ``side`` vertex of ``graph``.

    Peels vertices in non-decreasing order of remaining butterfly
    count; the tip number of a vertex is the (monotone) peeling level
    at which it is removed.  The input graph is not modified.

    Returns:
        dict mapping each ``side`` vertex to its tip number.  Vertices
        in no butterfly get tip number 0.
    """
    work = graph.copy()
    counts = butterfly_counts_one_side(work, side)
    heap: List[Tuple[int, int, Vertex]] = []
    # A deterministic tiebreaker index keeps results reproducible for
    # arbitrary (including unorderable mixed-type) vertex identifiers.
    tiebreak = {u: i for i, u in enumerate(counts)}
    for u, c in counts.items():
        heapq.heappush(heap, (c, tiebreak[u], u))
    tips: Dict[Vertex, int] = {}
    level = 0
    while heap:
        count, _, u = heapq.heappop(heap)
        if u in tips or count != counts.get(u, -1):
            continue  # stale entry
        level = max(level, count)
        tips[u] = level
        shared = _shared_butterflies(work, u)
        # Remove u's edges; neighbours with degree 1 disappear with it.
        for v in list(work.neighbors(u)):
            work.remove_edge(u, v)
        del counts[u]
        for w, lost in shared.items():
            if w in counts:
                counts[w] -= lost
                heapq.heappush(heap, (counts[w], tiebreak[w], w))
    return tips


def k_tip(
    graph: BipartiteGraph, k: int, side: Side = Side.LEFT
) -> BipartiteGraph:
    """The maximal subgraph whose every ``side`` vertex is in >= k
    butterflies (within the subgraph).

    Computed by repeatedly deleting under-supported vertices.  Right
    vertices (for ``side=LEFT``) are never deleted directly but drop
    out when their degree reaches zero.
    """
    work = graph.copy()
    counts = butterfly_counts_one_side(work, side)
    queue = [u for u, c in counts.items() if c < k]
    queued = set(queue)
    while queue:
        u = queue.pop()
        queued.discard(u)
        if u not in counts:
            continue
        shared = _shared_butterflies(work, u)
        for v in list(work.neighbors(u)):
            work.remove_edge(u, v)
        del counts[u]
        for w, lost in shared.items():
            if w in counts:
                counts[w] -= lost
                if counts[w] < k and w not in queued:
                    queue.append(w)
                    queued.add(w)
    return work


def max_tip_number(graph: BipartiteGraph, side: Side = Side.LEFT) -> int:
    """The largest tip number over all ``side`` vertices (0 if none)."""
    tips = tip_decomposition(graph, side)
    return max(tips.values(), default=0)
