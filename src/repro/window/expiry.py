"""The pending-expiry buffer behind the windowed estimator.

An :class:`ExpiryRing` remembers every edge currently *live* inside a
sliding window, in arrival order, together with the timestamp it
arrived at.  It answers the three questions windowing asks on every
ingested element:

* which edges age out of a **time** window that has advanced to ``t``
  (:meth:`expire_older_than`),
* which edges overflow a **count** window of capacity ``N``
  (:meth:`evict_over_capacity`),
* is this edge currently live at all (:meth:`__contains__`,
  :meth:`remove` for explicit deletions).

All operations are O(1) amortized.  Explicit deletions cannot afford a
linear scan of the arrival deque, so removal tombstones the entry in
place (one shared mutable record, reachable from both the deque and the
live-edge index) and eviction lazily skips tombstones as it pops.
Tombstones are bounded, not just lazily drained: removal eagerly pops
any dead prefix, and when dead entries outnumber live ones the deque is
compacted in one pass — so the buffer never holds more than
``2 * live + 1`` entries regardless of the deletion pattern.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Tuple

from repro.types import Edge, Vertex

__all__ = ["ExpiryRing"]

# One buffered entry: [left, right, arrival_time, tombstoned].  A plain
# list rather than a class keeps the per-edge overhead at one small
# allocation on the hot path.
_U, _V, _TIME, _DEAD = range(4)


class ExpiryRing:
    """Arrival-ordered buffer of live window edges with O(1) eviction.

    >>> ring = ExpiryRing()
    >>> ring.push(("u1", "v1"), 1.0)
    >>> ring.push(("u2", "v2"), 2.0)
    >>> len(ring)
    2
    >>> list(ring.expire_older_than(1.5))   # expire arrivals at t <= 1.5
    [('u1', 'v1')]
    >>> ("u2", "v2") in ring
    True
    """

    __slots__ = ("_entries", "_live", "_dead")

    def __init__(self) -> None:
        self._entries: Deque[List[Any]] = deque()
        self._live: Dict[Edge, List[Any]] = {}
        self._dead = 0  # tombstoned entries still sitting in the deque

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, edge: Edge, time: float) -> None:
        """Append a newly inserted live edge.

        The caller guarantees ``edge`` is not already live (the engine
        rejects duplicate-while-live insertions before calling).
        """
        entry = [edge[0], edge[1], time, False]
        self._entries.append(entry)
        self._live[edge] = entry

    def remove(self, edge: Edge) -> bool:
        """Explicitly delete a live edge; False when it is not live.

        The deque entry is tombstoned, not unlinked — eviction skips it
        for free when it reaches the front.  To keep the buffer O(live)
        under deletion-heavy traffic, any dead prefix is popped eagerly
        and the whole deque is compacted once tombstones outnumber live
        entries (amortized O(1): each entry is copied at most once per
        halving of the live count).
        """
        entry = self._live.pop(edge, None)
        if entry is None:
            return False
        entry[_DEAD] = True
        self._dead += 1
        entries = self._entries
        while entries and entries[0][_DEAD]:
            entries.popleft()
            self._dead -= 1
        if self._dead > len(self._live):
            self._entries = deque(e for e in entries if not e[_DEAD])
            self._dead = 0
        return True

    def expire_older_than(self, cutoff: float) -> Iterator[Edge]:
        """Pop and yield live edges whose arrival time is <= ``cutoff``.

        Edges come out in arrival order — exactly the order the
        equivalent explicit deletions appear in the expanded stream.
        """
        entries = self._entries
        while entries:
            entry = entries[0]
            if entry[_DEAD]:
                entries.popleft()
                self._dead -= 1
                continue
            if entry[_TIME] > cutoff:
                return
            entries.popleft()
            edge = (entry[_U], entry[_V])
            del self._live[edge]
            yield edge

    def evict_over_capacity(self, capacity: int) -> Iterator[Edge]:
        """Pop and yield the oldest live edges until size <= ``capacity``."""
        entries = self._entries
        while len(self._live) > capacity:
            entry = entries.popleft()
            if entry[_DEAD]:
                self._dead -= 1
                continue
            edge = (entry[_U], entry[_V])
            del self._live[edge]
            yield edge

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, edge: Edge) -> bool:
        return edge in self._live

    def __len__(self) -> int:
        """Number of live (non-tombstoned) edges."""
        return len(self._live)

    def oldest_time(self) -> float | None:
        """Arrival time of the oldest live edge; None when empty."""
        for entry in self._entries:
            if not entry[_DEAD]:
                return entry[_TIME]
        return None

    def live_edges(self) -> List[Tuple[Vertex, Vertex]]:
        """The live edges in arrival order (snapshot helper)."""
        return [
            (entry[_U], entry[_V])
            for entry in self._entries
            if not entry[_DEAD]
        ]

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_to_dict(self) -> Dict[str, Any]:
        """JSON-ready state: live entries in arrival order.

        Tombstoned entries are unobservable (every operation skips
        them), so they are compacted away rather than serialised.
        """
        return {
            "entries": [
                [entry[_U], entry[_V], entry[_TIME]]
                for entry in self._entries
                if not entry[_DEAD]
            ]
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "ExpiryRing":
        """Rebuild a ring from :meth:`state_to_dict` output.

        Accepts JSON round-tripped payloads (edge pairs arrive as
        lists; they are re-tupled so membership checks keep working).
        """
        ring = cls()
        for u, v, time in state["entries"]:
            ring.push((u, v), float(time))
        return ring

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExpiryRing(live={len(self._live)})"
