"""Sliding-window butterfly counting over fully dynamic estimators.

The paper's estimators handle arbitrary interleaved insertions and
deletions; a sliding window — "butterflies among the last ``N`` edges /
last ``T`` seconds" — is just a deterministic deletion policy on top.
This package materialises that reduction as a composable engine:

* :class:`~repro.window.engine.WindowedEstimator` — registry name
  ``"windowed"`` — wraps any registered estimator and synthesizes the
  expiry deletions (count and/or time windows, batched fast path,
  snapshot/restore of the pending-expiry buffer);
* :class:`~repro.window.expiry.ExpiryRing` — the O(1)-amortized
  pending-expiry buffer;
* :func:`~repro.window.reference.expand_window_stream` — the executable
  specification: the explicit insert+delete stream a windowed input is
  equivalent to, which the engine is tested bit-for-bit against.

Session-level access: ``open_session(spec, window=N)`` /
``open_session(spec, window_time=T)``; CLI: ``repro stream --window N
--window-time T``.
"""

from repro.window.engine import WindowedEstimator
from repro.window.expiry import ExpiryRing
from repro.window.reference import expand_window_stream, validate_window_params

__all__ = [
    "ExpiryRing",
    "WindowedEstimator",
    "expand_window_stream",
    "validate_window_params",
]
