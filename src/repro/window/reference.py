"""The window-expiry contract, as an executable reference.

:func:`expand_window_stream` maps a windowed input stream to the
*equivalent explicit fully dynamic stream*: the same elements with a
synthesized deletion interleaved at the exact position each edge falls
out of the window.  It is deliberately the dumbest possible
implementation (a plain list scan, no ring, no batching) because it is
the **specification** that :class:`repro.window.WindowedEstimator` is
tested against: for any input, feeding an estimator through the
windowed engine must be bit-identical to feeding the same estimator the
expanded stream directly.

The expansion rules, per input element ``e`` (see
``docs/architecture.md`` for the prose contract):

1. **Clock.**  When a time window is active, ``e`` must carry a
   timestamp (:class:`~repro.types.TimedEdge`) and timestamps must be
   non-decreasing; the clock advances to ``e.time`` before anything
   else happens.
2. **Time expiry.**  Emit a deletion for every live edge whose arrival
   time is ``<= clock - window_time``, in arrival order.  An edge is
   live for ``window_time`` units, *exclusive* of the instant it turns
   that age.
3. **Explicit deletion.**  If ``e`` deletes a live edge, the edge
   leaves the window and the deletion is emitted.  Deleting an edge
   that is not live (never inserted, already expired, or already
   deleted) raises :class:`~repro.errors.StreamError` under
   ``strict=True`` and is silently dropped otherwise — the edge is
   already gone from the inner estimator's graph either way.
4. **Count eviction.**  If ``e`` inserts while ``window`` edges are
   live, deletions for the oldest live edges are emitted first, so the
   window never holds more than ``window`` edges.
5. **Insertion.**  Re-inserting an edge that is still live is a
   multigraph, which the stream model excludes: always an error.
   Otherwise the edge becomes live and ``e`` itself is emitted.

>>> from repro.types import insertion
>>> stream = [insertion(u, "v") for u in ("a", "b", "c")]
>>> [str(e) for e in expand_window_stream(stream, window=2)]
['(a, v, +)', '(b, v, +)', '(a, v, -)', '(c, v, +)']
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import StreamError
from repro.types import Edge, StreamElement, deletion

__all__ = ["expand_window_stream", "validate_window_params"]


def validate_window_params(window: int, window_time: float) -> None:
    """Reject window configurations the contract does not define.

    Raises:
        StreamError: when ``window`` is negative, ``window_time`` is
            negative, or both are zero/disabled (nothing would ever
            expire — use the estimator directly instead).
    """
    if window < 0:
        raise StreamError(f"window must be >= 0, got {window}")
    if window_time < 0:
        raise StreamError(f"window_time must be >= 0, got {window_time}")
    if window == 0 and window_time == 0:
        raise StreamError(
            "a windowed stream needs window >= 1 (count) and/or "
            "window_time > 0 (time); both are disabled"
        )


def expand_window_stream(
    elements: Iterable[StreamElement],
    window: int = 0,
    window_time: float = 0.0,
    strict: bool = True,
) -> Iterator[StreamElement]:
    """Interleave expiry deletions into a windowed input stream.

    Args:
        elements: the windowed input (insertions, explicit deletions,
            :class:`~repro.types.TimedEdge` when time-windowed).
        window: count window — at most this many edges stay live
            (0 disables).
        window_time: time window — an edge stays live while its age is
            strictly below this (0 disables).  Requires timestamps.
        strict: raise on deletions of non-live edges instead of
            dropping them.

    Yields:
        A valid explicit fully dynamic stream.

    Raises:
        StreamError: invalid window parameters, a missing/decreasing
            timestamp under a time window, a duplicate-while-live
            insertion, or (``strict`` only) a deletion of a non-live
            edge.
    """
    validate_window_params(window, window_time)
    live: List[Tuple[Edge, float]] = []  # (edge, arrival) in arrival order
    clock: Optional[float] = None
    for element in elements:
        time = getattr(element, "time", None)
        if window_time > 0:
            if time is None:
                raise StreamError(
                    "a time window needs timestamped elements (TimedEdge); "
                    f"got untimed {element}"
                )
            if clock is not None and time < clock:
                raise StreamError(
                    f"timestamps must be non-decreasing: {time} after {clock}"
                )
        if time is not None:
            clock = time
        if window_time > 0:
            cutoff = clock - window_time
            while live and live[0][1] <= cutoff:
                expired, _ = live.pop(0)
                yield deletion(*expired)
        edge = element.edge
        position = next(
            (i for i, (held, _) in enumerate(live) if held == edge), None
        )
        if element.is_deletion:
            if position is None:
                if strict:
                    raise StreamError(
                        f"deletion of edge {edge!r} which is not live in "
                        "the window (never inserted, expired, or already "
                        "deleted)"
                    )
                continue
            live.pop(position)
            yield element
            continue
        if position is not None:
            raise StreamError(
                f"edge {edge!r} re-inserted while still live in the window"
            )
        if window > 0:
            while len(live) >= window:
                evicted, _ = live.pop(0)
                yield deletion(*evicted)
        live.append((edge, time if time is not None else 0.0))
        yield element
