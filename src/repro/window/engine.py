"""The sliding-window butterfly counting engine: ``WindowedEstimator``.

Wraps any *fully dynamic* registry estimator (insert-only baselines
are refused — they would drop the synthesized deletions and silently
report infinite-window counts) and maintains **count-based** (last
``N`` edges) and/or **time-based** (last ``T`` time units)
sliding-window butterfly counts by synthesizing deletions as edges
expire.  No new
estimation math is involved: a sliding window is a deterministic
deletion policy, so the fully dynamic machinery of the paper computes
windowed counts as-is.  The engine's whole job is to expand each input
element into the equivalent explicit insert+delete run and forward it —
which makes the windowed estimate **provably identical** to running the
wrapped estimator over the expanded stream directly.  The executable
specification of that expansion lives in
:func:`repro.window.reference.expand_window_stream`; the equivalence is
enforced bit-for-bit by ``tests/window/test_window_equivalence.py``.

Expiry bookkeeping is an :class:`~repro.window.expiry.ExpiryRing`
(O(1) amortized eviction); batched ingest expands whole input batches
and forwards them through the inner estimator's ``process_batch``, so
the vectorized counting kernels stay hot — expiry deletions included.

``WindowedEstimator`` is a regular registered
:class:`~repro.core.base.ButterflyEstimator` (name ``"windowed"``), so
sessions, observers, auto-chunked ingest and snapshot/restore all apply
unchanged, and it composes with the rest of the registry through its
``inner`` spec parameter — ``windowed:inner=[sharded:...],window=N``
runs a sliding window over sharded fan-out.  The converse nesting is
refused: a count/time window is a *global* property of the stream, so
``supports_sharding`` is False.

>>> from repro.types import insertion
>>> engine = WindowedEstimator("exact", window=4)
>>> engine.process_batch([insertion(u, v)
...                       for u in ("u1", "u2") for v in ("v1", "v2")])
1.0
>>> engine.process(insertion("u3", "v1"))  # evicting (u1, v1) kills it
-1.0
>>> engine.live_edges, engine.estimate     # window holds the last 4
(4, 0.0)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.api.registry import (
    EstimatorSpec,
    Param,
    SpecLike,
    build_estimator,
    get_registration,
    parse_spec,
    register_estimator,
)
from repro.core.base import ButterflyEstimator
from repro.errors import EstimatorError, SpecError, StreamError
from repro.types import StreamElement, deletion
from repro.window.expiry import ExpiryRing

__all__ = ["WindowedEstimator"]


class WindowedEstimator(ButterflyEstimator):
    """A sliding window over any registry estimator.

    Args:
        inner: spec (string/dict/:class:`EstimatorSpec`) of the wrapped
            estimator.  Its registration must declare
            ``supports_windowing`` (i.e. the estimator applies
            deletions).  Its memory budget sizes the *sample*; the
            window additionally buffers one ``(edge, time)`` record per
            live edge.
        window: count window — at most this many edges stay live; each
            insertion beyond that evicts the oldest live edge first.
            0 disables.
        window_time: time window — an edge expires once its age reaches
            this many time units.  Requires every ingested element to
            be a :class:`~repro.types.TimedEdge` with non-decreasing
            timestamps.  0 disables.  At least one of ``window`` /
            ``window_time`` must be enabled; with both, an edge leaves
            at whichever bound it hits first.
        strict: when True, deleting an edge that is not live (never
            inserted, already expired, or already deleted) raises
            :class:`~repro.errors.StreamError`; when False (default)
            such deletions are dropped and counted in
            :attr:`dropped_deletions` — the edge is already gone from
            the inner estimator's graph either way.
    """

    name = "Windowed"
    supports_batch = True
    #: A window is a global property of the stream: partitioned
    #: substreams would each expire their own last-N, which is a
    #: different (and wrong) semantics.  Window over shards instead:
    #: ``windowed:inner=[sharded:...]``.
    supports_sharding = False

    def __init__(
        self,
        inner: SpecLike = "abacus",
        window: int = 0,
        window_time: float = 0.0,
        strict: bool = False,
        _restore_state: Optional[Dict[str, Any]] = None,
    ) -> None:
        if window < 0:
            raise SpecError(f"window must be >= 0, got {window}")
        if window_time < 0:
            raise SpecError(f"window_time must be >= 0, got {window_time}")
        if window == 0 and window_time == 0:
            raise SpecError(
                "windowed needs window >= 1 (count) and/or window_time > 0 "
                "(time); both are disabled"
            )
        self._inner_spec = parse_spec(inner)
        self._registration = get_registration(self._inner_spec.name)
        if not self._registration.supports_windowing:
            raise SpecError(
                f"estimator {self._registration.name!r} is insert-only "
                "(supports_deletions is false); a sliding window works "
                "by synthesizing deletions, which it would silently "
                "drop — wrap a fully dynamic estimator instead"
            )
        self._window = window
        self._window_time = float(window_time)
        self._strict = strict
        if _restore_state is not None:
            self._inner = self._registration.restore(
                _restore_state["inner_state"]
            )
            self._ring = ExpiryRing.from_state_dict(_restore_state["ring"])
            clock = _restore_state["clock"]
            self._clock: Optional[float] = (
                None if clock is None else float(clock)
            )
            self._expired = int(_restore_state["expired"])
            self._dropped = int(_restore_state["dropped"])
        else:
            self._inner = build_estimator(self._inner_spec)
            self._ring = ExpiryRing()
            self._clock = None
            self._expired = 0
            self._dropped = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inner(self) -> ButterflyEstimator:
        """The wrapped estimator (shared, not a copy)."""
        return self._inner

    @property
    def inner_spec(self) -> EstimatorSpec:
        """The spec the wrapped estimator was built from."""
        return self._inner_spec

    @property
    def window(self) -> int:
        """The count window ``N`` (0 when disabled)."""
        return self._window

    @property
    def window_time(self) -> float:
        """The time window ``T`` (0.0 when disabled)."""
        return self._window_time

    @property
    def strict(self) -> bool:
        """Whether deletions of non-live edges raise instead of drop."""
        return self._strict

    @property
    def clock(self) -> Optional[float]:
        """The last ingested timestamp (None before any timed element)."""
        return self._clock

    @property
    def live_edges(self) -> int:
        """Edges currently inside the window (pending expiry)."""
        return len(self._ring)

    @property
    def expired_count(self) -> int:
        """Expiry deletions synthesized so far (count + time)."""
        return self._expired

    @property
    def dropped_deletions(self) -> int:
        """Non-strict deletions dropped because their edge was not live."""
        return self._dropped

    @property
    def estimate(self) -> float:
        """The inner estimator's estimate — of the *window's* butterflies."""
        return self._inner.estimate

    @property
    def memory_edges(self) -> int:
        """Edges held by the inner estimator's sample."""
        return self._inner.memory_edges

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _expand(
        self, element: StreamElement, out: List[StreamElement]
    ) -> None:
        """Append ``element``'s explicit insert+delete run to ``out``.

        Mirrors :func:`repro.window.reference.expand_window_stream`
        rule-for-rule (clock, time expiry, explicit deletion, count
        eviction, insertion); that function is the specification, this
        is the O(1)-per-event implementation.
        """
        time = getattr(element, "time", None)
        if self._window_time > 0:
            if time is None:
                raise StreamError(
                    "a time window needs timestamped elements (TimedEdge); "
                    f"got untimed {element}"
                )
            if self._clock is not None and time < self._clock:
                raise StreamError(
                    "timestamps must be non-decreasing: "
                    f"{time} after {self._clock}"
                )
        if time is not None:
            self._clock = time
        if self._window_time > 0:
            cutoff = self._clock - self._window_time
            for edge in self._ring.expire_older_than(cutoff):
                out.append(deletion(*edge))
                self._expired += 1
        edge = element.edge
        if element.is_deletion:
            if self._ring.remove(edge):
                out.append(element)
            elif self._strict:
                raise StreamError(
                    f"deletion of edge {edge!r} which is not live in the "
                    "window (never inserted, expired, or already deleted)"
                )
            else:
                self._dropped += 1
            return
        if edge in self._ring:
            raise StreamError(
                f"edge {edge!r} re-inserted while still live in the window"
            )
        if self._window > 0:
            for evicted in self._ring.evict_over_capacity(self._window - 1):
                out.append(deletion(*evicted))
                self._expired += 1
        self._ring.push(edge, time if time is not None else 0.0)
        out.append(element)

    def _forward_elements(self, expanded: List[StreamElement]) -> float:
        process = self._inner.process
        total = 0.0
        for item in expanded:
            total += process(item)
        return total

    def process(self, element: StreamElement) -> float:
        """Expand one element and forward; return the combined delta.

        The returned delta includes the contributions of any expiry
        deletions this element triggered.  The expansion feeds the
        inner *element* path — batched ingest alone routes through the
        inner ``process_batch``, so per-element windowed ingestion
        costs exactly the per-element expanded replay.

        When the element violates the stream contract, everything the
        expansion emitted *before* the violation (expiry deletions the
        element's timestamp triggered) is still forwarded, so the
        window buffer and the inner estimator stay consistent — the
        engine lands in exactly the state of replaying the reference
        expansion up to its raise point.
        """
        expanded: List[StreamElement] = []
        try:
            self._expand(element, expanded)
        except StreamError:
            self._forward_elements(expanded)
            raise
        return self._forward_elements(expanded)

    def process_batch(self, batch: Sequence[StreamElement]) -> float:
        """Expand a whole batch and forward it in one inner call.

        The expansion is per-element and independent of batching, and
        the inner ``process_batch`` is held to observational
        equivalence with its own element path — so windowed batched
        ingest is bit-identical to windowed per-element ingest, and
        both to the explicit expanded stream.  Expiry deletions ride
        the same vectorized kernels as the payload insertions.

        A mid-batch stream-contract violation forwards everything
        expanded before the offending element first (matching the
        reference expansion's raise point, and keeping ring and inner
        state consistent), then re-raises.
        """
        expanded: List[StreamElement] = []
        try:
            for element in batch:
                self._expand(element, expanded)
        except StreamError:
            if expanded:
                self._inner.process_batch(expanded)
            raise
        if not expanded:
            return 0.0
        return self._inner.process_batch(expanded)

    def flush(self) -> float:
        """Flush the inner estimator's buffered work (PARABACUS etc.)."""
        flusher = getattr(self._inner, "flush", None)
        if flusher is None:
            return 0.0
        return flusher()

    # ------------------------------------------------------------------
    # StatefulEstimator protocol
    # ------------------------------------------------------------------
    def state_to_dict(self) -> Dict[str, Any]:
        """Full engine state: config, clock, pending-expiry ring, inner.

        The pending-expiry buffer is part of the state — restoring
        mid-window must expire exactly the edges the uninterrupted run
        would have.  Requires the inner estimator to support the
        snapshot protocol.
        """
        if not self._registration.supports_snapshot:
            raise SpecError(
                f"inner estimator {self._registration.name!r} does not "
                "support snapshot/restore, so the windowed engine cannot "
                "either"
            )
        return {
            "inner": self._inner_spec.to_string(),
            "window": self._window,
            "window_time": self._window_time,
            "strict": self._strict,
            "clock": self._clock,
            "ring": self._ring.state_to_dict(),
            "expired": self._expired,
            "dropped": self._dropped,
            "inner_state": self._inner.state_to_dict(),
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "WindowedEstimator":
        """Rebuild a windowed engine (and its inner) from a state dict."""
        try:
            return cls(
                inner=state["inner"],
                window=int(state["window"]),
                window_time=float(state["window_time"]),
                strict=bool(state["strict"]),
                _restore_state=state,
            )
        except KeyError as exc:
            raise EstimatorError(
                f"windowed estimator state is missing field {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release inner resources (sharded process workers etc.)."""
        closer = getattr(self._inner, "close", None)
        if closer is not None:
            closer()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bounds = []
        if self._window:
            bounds.append(f"window={self._window}")
        if self._window_time:
            bounds.append(f"window_time={self._window_time}")
        return (
            f"WindowedEstimator({self._inner_spec.to_string()!r}, "
            f"{', '.join(bounds)}, live={len(self._ring)})"
        )


@register_estimator(
    "windowed",
    params=(
        Param("inner", str, "abacus", doc="wrapped estimator spec"),
        Param("window", int, 0, doc="count window N in edges (0 = off)"),
        Param(
            "window_time",
            float,
            0.0,
            doc="time window T in timestamp units (0 = off)",
        ),
        Param(
            "strict",
            bool,
            False,
            doc="raise on deletions of non-live edges instead of dropping",
        ),
        Param("seed", int, doc="override the inner estimator's seed"),
    ),
    description=(
        "Sliding-window counts over any estimator (count and/or time "
        "window; expiry as synthesized deletions)"
    ),
    cls=WindowedEstimator,
    aliases=("window",),
)
def _build_windowed(**params: Any) -> ButterflyEstimator:
    seed = params.pop("seed", None)
    if seed is not None:
        inner = parse_spec(params.get("inner", "abacus"))
        if "seed" in get_registration(inner.name).param_names:
            params["inner"] = inner.with_overrides(seed=seed).to_string()
    return WindowedEstimator(**params)
