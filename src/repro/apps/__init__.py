"""Applications built on streaming butterfly counts.

The paper motivates fully dynamic butterfly counting through anomaly
detection (butterfly bursts above a threshold, Section I) and cohesion
metrics such as the butterfly clustering coefficient.  These modules
implement both on top of any :class:`~repro.core.base.ButterflyEstimator`.
"""

from repro.apps.anomaly import Alert, ButterflyBurstDetector
from repro.apps.anomaly_quality import (
    DetectionQuality,
    compare_estimators,
    evaluate_detector,
    planted_anomaly_stream,
)
from repro.apps.clustering import StreamingClusteringCoefficient
from repro.apps.similarity import (
    SampleSimilarity,
    butterfly_affinity,
    common_neighbors,
    cosine_similarity,
    jaccard_similarity,
    similarity_matrix,
    top_k_similar,
)

__all__ = [
    "Alert",
    "ButterflyBurstDetector",
    "StreamingClusteringCoefficient",
    "DetectionQuality",
    "planted_anomaly_stream",
    "evaluate_detector",
    "compare_estimators",
    "SampleSimilarity",
    "common_neighbors",
    "jaccard_similarity",
    "cosine_similarity",
    "butterfly_affinity",
    "top_k_similar",
    "similarity_matrix",
]
