"""Streaming butterfly cohesion index.

Butterfly-based clustering metrics measure how cohesive a bipartite
graph is (Section I, refs [6]-[9]).  We track the wedge-normalised
*butterfly cohesion index*

    cc(t) = 4 * |B(t)| / W(t)

where ``W(t)`` is the number of wedges (two-paths) in ``G(t)``.  Every
butterfly contains four wedges (two centred on each side), so the index
reads as "butterfly participations per wedge".  Unlike the classic
clustering coefficient (which normalises by length-3 paths and needs
adjacency, i.e. O(|E|) memory, to maintain), this index is *streamable
with bounded extra state*: ``W(t)`` updates in O(1) per element from a
vertex-degree map, and ``|B(t)|`` comes from any streaming estimator.
Note the index can exceed 1 on butterfly-dense graphs — it is a
cohesion *index*, not a probability.
"""

from __future__ import annotations

from collections import defaultdict
from typing import DefaultDict, Iterable, List, Tuple

from repro.core.base import ButterflyEstimator
from repro.errors import StreamError
from repro.types import Op, StreamElement, Vertex


class StreamingClusteringCoefficient:
    """Tracks ``4 * estimated butterflies / exact wedges`` over a stream.

    Args:
        estimator: streaming butterfly estimator to drive.

    Attributes:
        wedges: the exact wedge count ``W(t)``.
    """

    def __init__(self, estimator: ButterflyEstimator) -> None:
        self.estimator = estimator
        self.wedges = 0
        self._degree: DefaultDict[Vertex, int] = defaultdict(int)

    def process(self, element: StreamElement) -> float:
        """Feed one element; return the updated coefficient."""
        self.estimator.process(element)
        u, v = element.u, element.v
        if element.op is Op.INSERT:
            # Each endpoint's new edge forms a wedge with each of its
            # existing edges.
            self.wedges += self._degree[u] + self._degree[v]
            self._degree[u] += 1
            self._degree[v] += 1
        else:
            if self._degree[u] <= 0 or self._degree[v] <= 0:
                raise StreamError(
                    f"deletion of ({u!r}, {v!r}) with zero-degree endpoint"
                )
            self._degree[u] -= 1
            self._degree[v] -= 1
            self.wedges -= self._degree[u] + self._degree[v]
            if self._degree[u] == 0:
                del self._degree[u]
            if self._degree[v] == 0:
                del self._degree[v]
        return self.coefficient

    @property
    def coefficient(self) -> float:
        """Current ``4 * B_hat / W``; 0.0 when the graph has no wedges."""
        if self.wedges <= 0:
            return 0.0
        return 4.0 * max(self.estimator.estimate, 0.0) / self.wedges

    def trajectory(
        self, stream: Iterable[StreamElement], every: int = 1000
    ) -> List[Tuple[int, float]]:
        """Process a stream, sampling the coefficient every ``every`` elements."""
        points: List[Tuple[int, float]] = []
        for index, element in enumerate(stream, start=1):
            value = self.process(element)
            if index % every == 0:
                points.append((index, value))
        return points
