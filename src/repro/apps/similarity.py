"""Bipartite similarity: the recommendation primitive butterflies feed.

The paper's first application family (Section I) is online
recommendation: "identify similar items, cluster users, and enhance
collaborative filtering".  On a bipartite user-item graph, the standard
item-item signals are functions of *co-neighbourhoods* — exactly the
wedges whose closure the butterfly count aggregates (a butterfly is two
items sharing two users).

Static functions compute exact similarities from a
:class:`~repro.graph.bipartite.BipartiteGraph`; for the streaming
setting, :class:`SampleSimilarity` answers the same queries from the
bounded uniform sample an ABACUS instance already maintains, giving
approximate recommendations at zero extra memory.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.sampling.adjacency_sample import GraphSample
from repro.types import Vertex


def common_neighbors(
    graph: BipartiteGraph, a: Vertex, b: Vertex
) -> int:
    """Number of shared neighbours of two same-side vertices.

    This is the wedge count of the pair; each pair of shared neighbours
    closes one butterfly through ``a`` and ``b``.
    """
    na, nb = graph.neighbors(a), graph.neighbors(b)
    if len(na) > len(nb):
        na, nb = nb, na
    return sum(1 for x in na if x in nb)


def jaccard_similarity(
    graph: BipartiteGraph, a: Vertex, b: Vertex
) -> float:
    """``|N(a) ∩ N(b)| / |N(a) ∪ N(b)|`` (0.0 for two isolated vertices)."""
    na, nb = graph.neighbors(a), graph.neighbors(b)
    if not na and not nb:
        return 0.0
    intersection = common_neighbors(graph, a, b)
    union = len(na) + len(nb) - intersection
    return intersection / union


def cosine_similarity(
    graph: BipartiteGraph, a: Vertex, b: Vertex
) -> float:
    """``|N(a) ∩ N(b)| / sqrt(d(a) * d(b))`` (0.0 when either is isolated)."""
    da, db = graph.degree(a), graph.degree(b)
    if da == 0 or db == 0:
        return 0.0
    return common_neighbors(graph, a, b) / math.sqrt(da * db)


def butterfly_affinity(
    graph: BipartiteGraph, a: Vertex, b: Vertex
) -> int:
    """Butterflies through the pair: ``C(|N(a) ∩ N(b)|, 2)``.

    A sharper co-engagement signal than raw overlap — it requires at
    least *two* shared neighbours, filtering out incidental overlap.
    """
    c = common_neighbors(graph, a, b)
    return c * (c - 1) // 2


_METRICS = {
    "jaccard": jaccard_similarity,
    "cosine": cosine_similarity,
    "common": lambda g, a, b: float(common_neighbors(g, a, b)),
    "butterfly": lambda g, a, b: float(butterfly_affinity(g, a, b)),
}


def top_k_similar(
    graph: BipartiteGraph,
    vertex: Vertex,
    k: int = 10,
    metric: str = "jaccard",
) -> List[Tuple[Vertex, float]]:
    """The ``k`` same-side vertices most similar to ``vertex``.

    Only two-hop neighbours can have non-zero similarity, so candidates
    are enumerated by walking ``N(N(vertex))`` — cost proportional to
    the two-hop neighbourhood, not the graph.

    Args:
        graph: the bipartite graph.
        vertex: the query vertex (any side).
        k: result size.
        metric: ``"jaccard"``, ``"cosine"``, ``"common"``, or
            ``"butterfly"``.

    Returns:
        ``(vertex, score)`` pairs, best first, ties broken by ``repr``
        for determinism.  Vertices with zero similarity are omitted.
    """
    if metric not in _METRICS:
        raise GraphError(
            f"unknown similarity metric {metric!r}; "
            f"pick one of {sorted(_METRICS)}"
        )
    if not graph.has_vertex(vertex):
        return []
    score = _METRICS[metric]
    candidates: Set[Vertex] = set()
    for middle in graph.neighbors(vertex):
        candidates.update(graph.neighbors(middle))
    candidates.discard(vertex)
    scored = [
        (other, score(graph, vertex, other)) for other in candidates
    ]
    scored = [(other, s) for other, s in scored if s > 0]
    scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return scored[:k]


class SampleSimilarity:
    """Similarity queries answered from a bounded edge sample.

    Wraps the :class:`~repro.sampling.adjacency_sample.GraphSample` an
    estimator already maintains, so a recommender can piggyback on the
    butterfly counter's memory.  Under uniform sampling with rate ``r``:

    * ``common``/``butterfly`` scores shrink (each shared edge survives
      with probability ``~r``) — use :meth:`scaled_common_neighbors`
      for an unbiased overlap estimate;
    * ``jaccard``/``cosine`` are ratios and are approximately unbiased
      for moderate degrees.

    Example:
        >>> from repro.core.abacus import Abacus
        >>> from repro.types import insertion
        >>> counter = Abacus(budget=1000, seed=3)
        >>> counter.process(insertion("u1", "item"))
        0.0
        >>> sim = SampleSimilarity(counter.sampler.sample,
        ...                        inclusion_probability=1.0)
        >>> sim.common_neighbors("u1", "u2")
        0
    """

    __slots__ = ("_sample", "_rate")

    def __init__(
        self,
        sample: GraphSample,
        inclusion_probability: Optional[float] = None,
    ) -> None:
        if inclusion_probability is not None and not (
            0.0 < inclusion_probability <= 1.0
        ):
            raise GraphError(
                "inclusion_probability must be in (0, 1], got "
                f"{inclusion_probability}"
            )
        self._sample = sample
        self._rate = inclusion_probability

    def common_neighbors(self, a: Vertex, b: Vertex) -> int:
        """Shared sampled neighbours of ``a`` and ``b``."""
        na = self._sample.neighbors(a)
        nb = self._sample.neighbors(b)
        if len(na) > len(nb):
            na, nb = nb, na
        return sum(1 for x in na if x in nb)

    def scaled_common_neighbors(self, a: Vertex, b: Vertex) -> float:
        """Overlap estimate scaled by the pairwise inclusion probability.

        Both wedge edges must be sampled; under uniformity that happens
        with probability ``~rate**2``, so dividing by it de-biases the
        overlap (exactly the Equation 1 reasoning, at subset size 2).
        """
        if self._rate is None:
            raise GraphError(
                "scaled queries need the inclusion_probability "
                "the sample was built with"
            )
        return self.common_neighbors(a, b) / (self._rate**2)

    def jaccard(self, a: Vertex, b: Vertex) -> float:
        na = self._sample.neighbors(a)
        nb = self._sample.neighbors(b)
        if not na and not nb:
            return 0.0
        intersection = self.common_neighbors(a, b)
        union = len(na) + len(nb) - intersection
        return intersection / union if union else 0.0

    def top_k_similar(
        self, vertex: Vertex, k: int = 10
    ) -> List[Tuple[Vertex, float]]:
        """Jaccard top-k over the sampled two-hop neighbourhood."""
        candidates: Set[Vertex] = set()
        for middle in self._sample.neighbors(vertex):
            candidates.update(self._sample.neighbors(middle))
        candidates.discard(vertex)
        scored = [
            (other, self.jaccard(vertex, other)) for other in candidates
        ]
        scored = [(other, s) for other, s in scored if s > 0]
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return scored[:k]


def similarity_matrix(
    graph: BipartiteGraph,
    vertices: List[Vertex],
    metric: str = "jaccard",
) -> Dict[Tuple[Vertex, Vertex], float]:
    """Pairwise similarities for an explicit (small) vertex list.

    Returns only the upper triangle (``(a, b)`` with ``a`` before ``b``
    in the input order); intended for clustering experiments over a few
    hundred vertices, not whole graphs.
    """
    if metric not in _METRICS:
        raise GraphError(
            f"unknown similarity metric {metric!r}; "
            f"pick one of {sorted(_METRICS)}"
        )
    score = _METRICS[metric]
    result: Dict[Tuple[Vertex, Vertex], float] = {}
    for i, a in enumerate(vertices):
        for b in vertices[i + 1:]:
            result[(a, b)] = score(graph, a, b)
    return result
