"""Butterfly-burst anomaly detection on fully dynamic streams.

"An anomaly in bipartite graph streams appears when a certain number of
butterflies that are formed is above some threshold" (Section I).  The
detector below windows the stream, tracks the estimated butterfly-count
change per window, and raises an alert when a window's change exceeds a
robust z-score threshold over the recent history.

Because the detector consumes *estimates*, its precision/recall directly
inherit the estimator's accuracy — run the fraud-detection example with
ABACUS versus FLEET on a stream with deletions to see the paper's
motivating quality gap.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from repro.core.base import ButterflyEstimator
from repro.errors import ExperimentError
from repro.types import StreamElement


@dataclass(frozen=True, slots=True)
class Alert:
    """One raised anomaly.

    Attributes:
        window_index: which window (0-based) triggered.
        element_index: stream position of the window's last element.
        delta: estimated butterfly-count change within the window.
        score: the z-score that exceeded the threshold.
    """

    window_index: int
    element_index: int
    delta: float
    score: float


class ButterflyBurstDetector:
    """Windowed z-score detector over butterfly-count deltas.

    Args:
        estimator: any streaming butterfly estimator; the detector owns
            driving it.
        window: elements per detection window.
        z_threshold: alert when a window's delta exceeds
            ``mean + z * stdev`` of the trailing history.
        history: number of past windows kept for the baseline; alerts
            are suppressed until at least ``min_history`` windows exist.
        min_history: warm-up length.
        min_stdev: floor on the baseline deviation, preventing a single
            stray butterfly from alerting against an all-quiet history.
        two_sided: also alert on *negative* spikes (mass deletions such
            as fraud-ring takedowns or community collapse).  Only
            deletion-aware estimators can ever raise these.
    """

    def __init__(
        self,
        estimator: ButterflyEstimator,
        window: int = 500,
        z_threshold: float = 3.0,
        history: int = 50,
        min_history: int = 5,
        min_stdev: float = 1.0,
        two_sided: bool = False,
    ) -> None:
        if window <= 0:
            raise ExperimentError(f"window must be positive, got {window}")
        if history < min_history or min_history < 1:
            raise ExperimentError(
                "need history >= min_history >= 1, "
                f"got {history}/{min_history}"
            )
        self.estimator = estimator
        self.window = window
        self.z_threshold = z_threshold
        self.min_history = min_history
        self.min_stdev = min_stdev
        self.two_sided = two_sided
        self._history: Deque[float] = deque(maxlen=history)
        self._in_window = 0
        self._window_start_estimate = estimator.estimate
        self._window_index = 0
        self._element_index = 0
        self.alerts: List[Alert] = []

    def process(self, element: StreamElement) -> Optional[Alert]:
        """Feed one element; returns an Alert when a window closes hot."""
        self.estimator.process(element)
        self._element_index += 1
        self._in_window += 1
        if self._in_window < self.window:
            return None
        return self._close_window()

    def process_stream(self, stream: Iterable[StreamElement]) -> List[Alert]:
        """Drive a whole stream; returns all alerts raised."""
        for element in stream:
            self.process(element)
        return self.alerts

    def _close_window(self) -> Optional[Alert]:
        delta = self.estimator.estimate - self._window_start_estimate
        alert: Optional[Alert] = None
        if len(self._history) >= self.min_history:
            baseline = sum(self._history) / len(self._history)
            variance = sum(
                (d - baseline) ** 2 for d in self._history
            ) / len(self._history)
            # Floor the deviation so a flat warm-up cannot divide by ~0.
            stdev = max(
                math.sqrt(variance), self.min_stdev, 0.05 * abs(baseline)
            )
            score = (delta - baseline) / stdev
            triggered = (
                abs(score) > self.z_threshold
                if self.two_sided
                else score > self.z_threshold
            )
            if triggered:
                alert = Alert(
                    window_index=self._window_index,
                    element_index=self._element_index,
                    delta=delta,
                    score=score,
                )
                self.alerts.append(alert)
        # Bursts are excluded from the baseline so one anomaly does not
        # mask the next.
        if alert is None:
            self._history.append(delta)
        self._window_start_estimate = self.estimator.estimate
        self._in_window = 0
        self._window_index += 1
        return alert


def precision_recall(
    alerts: Iterable[Alert],
    true_windows: Iterable[int],
    tolerance: int = 1,
) -> tuple[float, float]:
    """Score alerts against known anomalous window indices.

    An alert matches a true window when their indices differ by at most
    ``tolerance``.  Returns ``(precision, recall)``; with no alerts
    precision is defined as 1.0 (nothing claimed, nothing wrong).
    """
    alert_windows = [a.window_index for a in alerts]
    truths = list(true_windows)
    matched_truths = set()
    true_positives = 0
    for aw in alert_windows:
        hit = None
        for i, tw in enumerate(truths):
            if i not in matched_truths and abs(aw - tw) <= tolerance:
                hit = i
                break
        if hit is not None:
            matched_truths.add(hit)
            true_positives += 1
    precision = true_positives / len(alert_windows) if alert_windows else 1.0
    recall = true_positives / len(truths) if truths else 1.0
    return precision, recall
