"""Anomaly-detection quality under deletions: the paper's motivation.

Section I argues that "precision and recall will degrade significantly
if the butterfly counts are maintained inaccurately, which will happen
if edge deletions are ignored".  This module turns that claim into a
measurable experiment:

1. :func:`planted_anomaly_stream` builds a fully dynamic background
   stream and injects butterfly bombs (complete bicliques) into known
   windows.
2. :func:`evaluate_detector` runs a
   :class:`~repro.apps.anomaly.ButterflyBurstDetector` over the stream
   with a caller-chosen estimator and scores the raised alerts against
   the planted windows.

Comparing the resulting :class:`DetectionQuality` for ABACUS versus an
insert-only baseline on the same stream quantifies exactly the quality
gap the paper motivates (the ``bench_anomaly_quality`` benchmark prints
it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.apps.anomaly import ButterflyBurstDetector, precision_recall
from repro.core.base import ButterflyEstimator
from repro.errors import ExperimentError
from repro.streams.dynamic import make_fully_dynamic
from repro.streams.stream import EdgeStream
from repro.types import StreamElement, insertion


@dataclass(frozen=True)
class DetectionQuality:
    """Precision/recall/F1 of one detector run."""

    precision: float
    recall: float
    num_alerts: int
    num_planted: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return (
            2 * self.precision * self.recall
            / (self.precision + self.recall)
        )


def planted_anomaly_stream(
    background_edges: Sequence,
    bomb_windows: Sequence[int],
    window: int = 500,
    bomb_size: Tuple[int, int] = (6, 6),
    alpha: float = 0.2,
    rng: Optional[random.Random] = None,
) -> Tuple[EdgeStream, List[int]]:
    """A fully dynamic stream with butterfly bombs in known windows.

    Args:
        background_edges: distinct benign edges, in arrival order.
        bomb_windows: 0-based window indices (w.r.t. ``window``) at
            whose start a complete biclique bursts in.
        window: elements per detection window (must match the detector).
        bomb_size: ``(left, right)`` dimensions of each biclique.
        alpha: deletion ratio applied to the *background* (bombs are
            insert-only bursts, as in the fraud scenario).
        rng: randomness for deletion placement.

    Returns:
        ``(stream, true_windows)`` — the stream and the window indices
        a perfect detector should flag (recomputed against the final
        element layout, so they are exact even after deletions shift
        positions).
    """
    if min(bomb_size) < 2:
        raise ExperimentError(
            f"bombs must be at least 2x2 bicliques, got {bomb_size}"
        )
    rng = rng or random.Random()
    background = make_fully_dynamic(list(background_edges), alpha, rng)
    num_left, num_right = bomb_size
    elements: List[StreamElement] = list(background)
    # Insert bombs back-to-front so earlier offsets stay valid.
    true_windows = sorted(set(bomb_windows), reverse=True)
    for order, window_index in enumerate(true_windows):
        offset = window_index * window
        if offset > len(elements):
            raise ExperimentError(
                f"bomb window {window_index} starts beyond the stream "
                f"({offset} > {len(elements)})"
            )
        bomb = [
            insertion(f"bomb{order}_l{i}", f"bomb{order}_r{j}")
            for i in range(num_left)
            for j in range(num_right)
        ]
        elements[offset:offset] = bomb
    stream = EdgeStream(elements)
    return stream, sorted(set(bomb_windows))


def evaluate_detector(
    stream: EdgeStream,
    true_windows: Sequence[int],
    estimator: ButterflyEstimator,
    window: int = 500,
    z_threshold: float = 3.0,
    tolerance: int = 1,
    detector_factory: Optional[
        Callable[[ButterflyEstimator], ButterflyBurstDetector]
    ] = None,
) -> DetectionQuality:
    """Run a burst detector over ``stream`` and score it.

    Args:
        stream: the workload (usually from
            :func:`planted_anomaly_stream`).
        true_windows: planted anomalous window indices.
        estimator: the butterfly estimator under test.
        window / z_threshold: detector configuration.
        tolerance: window-index slack when matching alerts to truths.
        detector_factory: override to customise the detector; receives
            the estimator and must return a ready detector.

    Returns:
        The detector's :class:`DetectionQuality` on this stream.
    """
    if detector_factory is None:
        detector = ButterflyBurstDetector(
            estimator, window=window, z_threshold=z_threshold
        )
    else:
        detector = detector_factory(estimator)
    alerts = detector.process_stream(stream)
    precision, recall = precision_recall(
        alerts, true_windows, tolerance=tolerance
    )
    return DetectionQuality(
        precision=precision,
        recall=recall,
        num_alerts=len(alerts),
        num_planted=len(list(true_windows)),
    )


def compare_estimators(
    stream: EdgeStream,
    true_windows: Sequence[int],
    factories: dict,
    window: int = 500,
    z_threshold: float = 3.0,
    tolerance: int = 1,
) -> dict:
    """Evaluate several estimators on the same planted stream.

    Args:
        factories: mapping from display name to a zero-argument callable
            building a fresh estimator.

    Returns:
        dict mapping each name to its :class:`DetectionQuality`.
    """
    results = {}
    for name, factory in factories.items():
        results[name] = evaluate_detector(
            stream,
            true_windows,
            factory(),
            window=window,
            z_threshold=z_threshold,
            tolerance=tolerance,
        )
    return results
