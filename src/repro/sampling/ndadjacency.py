"""NumPy mirror of a :class:`GraphSample` for vectorized counting.

The scalar butterfly kernel intersects Python sets, which is fine per
element but leaves a lot of throughput on the table when a whole batch
of stream elements is counted against the (mostly static) sample.  The
batch engines instead read an :class:`NdAdjacency`: per-vertex sorted
``int64`` neighbour arrays plus a flat degree array, so side selection,
work accounting, and the set intersections all become array operations.

The mirror is *derived* state.  It interns vertices to dense integer
ids, rebuilds itself from the sample in one pass when it falls out of
sync (detected through :attr:`GraphSample.version`), and tracks the
sample's mutations one by one while a batch engine drives it — an
``O(degree)`` array splice per sampled-edge change, which Random
Pairing makes rare once the stream outgrows the budget.

NumPy is an optional dependency of this module: when it is missing,
:data:`NUMPY_AVAILABLE` is False and the estimators silently keep their
per-element scalar paths (results are identical either way — the batch
fast path is a performance contract, not a semantic one).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - CI images all ship numpy
    np = None  # type: ignore[assignment]
    NUMPY_AVAILABLE = False

from repro.errors import SamplingError
from repro.sampling.adjacency_sample import GraphSample, Mutation
from repro.types import Vertex

_EMPTY = None  # initialised lazily so the module imports without numpy


def _empty_row():
    global _EMPTY
    if _EMPTY is None:
        _EMPTY = np.empty(0, dtype=np.int64)
    return _EMPTY


class NdAdjacency:
    """Sorted-array adjacency view of a sample, kept in sync by version.

    The mirror holds, per interned vertex id, a sorted ``int64`` array
    of neighbour ids, plus a dense degree array for vectorized
    cumulative-degree sums.  Vertex ids are stable for the lifetime of
    the mirror (interning never forgets a vertex, even after its last
    sampled edge disappears — its row just becomes empty, matching the
    scalar path's empty-set semantics).
    """

    __slots__ = ("_id_of", "_rows", "_deg", "_deg_size", "_scratch", "version")

    def __init__(self) -> None:
        if not NUMPY_AVAILABLE:
            raise SamplingError("NdAdjacency requires numpy")
        self._id_of: Dict[Vertex, int] = {}
        self._rows: List["np.ndarray"] = []
        self._deg = np.zeros(16, dtype=np.int64)
        self._deg_size = 0
        self._scratch = np.zeros(16, dtype=bool)
        #: The :attr:`GraphSample.version` this mirror reflects; -1
        #: before the first sync.
        self.version = -1

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, vertex: Vertex) -> int:
        """Dense id for ``vertex``, allocating one on first sight."""
        vid = self._id_of.get(vertex)
        if vid is None:
            vid = len(self._rows)
            self._id_of[vertex] = vid
            self._rows.append(_empty_row())
            if vid >= self._deg.shape[0]:
                grown = np.zeros(self._deg.shape[0] * 2, dtype=np.int64)
                grown[: self._deg.shape[0]] = self._deg
                self._deg = grown
                self._scratch = np.zeros(grown.shape[0], dtype=bool)
            self._deg_size = vid + 1
        return vid

    def id_of(self, vertex: Vertex) -> Optional[int]:
        """The vertex's id, or None when it was never sampled."""
        return self._id_of.get(vertex)

    # ------------------------------------------------------------------
    # Vectorized reads
    # ------------------------------------------------------------------
    def row(self, vid: int) -> "np.ndarray":
        """Sorted neighbour-id array of vertex ``vid`` (do not mutate)."""
        return self._rows[vid]

    @property
    def rows(self) -> List["np.ndarray"]:
        """The row list indexed by id (hot-loop read access; do not mutate)."""
        return self._rows

    @property
    def degrees(self) -> "np.ndarray":
        """Degree-by-id array (length >= every allocated id)."""
        return self._deg

    @property
    def scratch_mask(self) -> "np.ndarray":
        """Reusable bool-by-id scratch for O(1) membership gathers.

        Borrow-and-restore protocol: set the ids you need True, gather,
        then set the same ids back to False before anything else can
        borrow it.  Kept here so the counting kernels avoid allocating
        (and zeroing) a fresh mask per query.
        """
        return self._scratch

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def sync(self, sample: GraphSample) -> None:
        """Make the mirror reflect ``sample``, rebuilding if stale.

        Cheap (a version compare) when the mirror observed every
        mutation since the last sync; a full one-pass rebuild after the
        sample changed behind its back (e.g. interleaved per-element
        calls on the estimator).
        """
        if self.version == sample.version:
            return
        buckets: Dict[int, List[int]] = {}
        for vid in range(len(self._rows)):
            self._rows[vid] = _empty_row()
        self._deg[: self._deg_size] = 0
        for u, v in sample.edges():
            uid = self.intern(u)
            vid = self.intern(v)
            buckets.setdefault(uid, []).append(vid)
            buckets.setdefault(vid, []).append(uid)
        for vid, neighbor_ids in buckets.items():
            row = np.asarray(neighbor_ids, dtype=np.int64)
            row.sort()
            self._rows[vid] = row
            self._deg[vid] = row.shape[0]
        self.version = sample.version

    def apply(self, mutations: Tuple[Mutation, ...]) -> None:
        """Track sample mutations the caller just performed, in order."""
        for op, u, v in mutations:
            uid = self.intern(u)
            vid = self.intern(v)
            if op == "+":
                self._insert(uid, vid)
                self._insert(vid, uid)
            else:
                self._remove(uid, vid)
                self._remove(vid, uid)
            self.version += 1

    # Manual two-slice splices: ``np.insert``/``np.delete`` route through
    # generic axis normalisation that costs more than these whole rows.
    def _insert(self, vid: int, neighbor: int) -> None:
        row = self._rows[vid]
        size = row.shape[0]
        position = row.searchsorted(neighbor)
        spliced = np.empty(size + 1, dtype=np.int64)
        spliced[:position] = row[:position]
        spliced[position] = neighbor
        spliced[position + 1 :] = row[position:]
        self._rows[vid] = spliced
        self._deg[vid] += 1

    def _remove(self, vid: int, neighbor: int) -> None:
        row = self._rows[vid]
        size = row.shape[0]
        position = row.searchsorted(neighbor)
        if position >= size or row[position] != neighbor:
            raise SamplingError(
                f"mirror desync: id {neighbor} not a neighbour of {vid}"
            )
        spliced = np.empty(size - 1, dtype=np.int64)
        spliced[:position] = row[:position]
        spliced[position:] = row[position + 1 :]
        self._rows[vid] = spliced
        self._deg[vid] -= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NdAdjacency(vertices={len(self._rows)}, "
            f"version={self.version})"
        )
