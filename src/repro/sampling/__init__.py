"""Sampling substrate.

Contains the bounded-size sampling schemes the estimators are built on:

* :class:`~repro.sampling.reservoir.ReservoirSampler` — Vitter's
  classic insert-only reservoir (used by the CAS baseline and as the
  negative control that breaks under deletions).
* :class:`~repro.sampling.random_pairing.RandomPairing` — Gemulla et
  al.'s Random Pairing, maintaining a uniform bounded sample under
  insertions *and* deletions (ABACUS's sampler).
* :class:`~repro.sampling.adjacency_sample.GraphSample` — the sampled
  edges stored as adjacency sets, supporting the set intersections at
  the heart of per-edge butterfly counting.
* :class:`~repro.sampling.versioned.VersionedGraphSample` — delta-coded
  sample versions for PARABACUS mini-batches.
* :class:`~repro.sampling.ndadjacency.NdAdjacency` — NumPy sorted-array
  mirror of a sample, the substrate of the vectorized batch-ingest
  kernels.
"""

from repro.sampling.adjacency_sample import GraphSample
from repro.sampling.ndadjacency import NUMPY_AVAILABLE, NdAdjacency
from repro.sampling.random_pairing import BatchIngestResult, RandomPairing
from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.versioned import VersionedGraphSample

__all__ = [
    "BatchIngestResult",
    "GraphSample",
    "NUMPY_AVAILABLE",
    "NdAdjacency",
    "RandomPairing",
    "ReservoirSampler",
    "VersionedGraphSample",
]
