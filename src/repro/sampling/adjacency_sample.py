"""Adjacency-list storage for sampled edges.

ABACUS stores its sampled edges "using the adjacency list format"
(Section VI-A) because per-edge butterfly counting is a sequence of set
intersections over sampled neighbourhoods.  :class:`GraphSample` keeps:

* per-vertex neighbour sets (``N^S_v``) for O(1) membership and fast
  intersection,
* a flat edge list plus an index map so Random Pairing can evict a
  uniformly random edge in O(1),
* an optional *recorder* callback fired on every mutation, which is how
  :class:`~repro.sampling.versioned.VersionedGraphSample` captures
  per-version deltas without the sample knowing about versions.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SamplingError
from repro.types import Edge, Vertex

# Recorder signature: (op, u, v) with op "+" for add and "-" for remove.
Recorder = Callable[[str, Vertex, Vertex], None]

#: One sample mutation: ``(op, u, v)`` with op "+" (edge entered the
#: sample) or "-" (edge left it).  Produced by
#: :meth:`~repro.sampling.random_pairing.RandomPairing.process` and
#: consumed by :meth:`~repro.sampling.ndadjacency.NdAdjacency.apply`.
Mutation = Tuple[str, Vertex, Vertex]

_EMPTY_SET: Set[Vertex] = frozenset()  # type: ignore[assignment]


class GraphSample:
    """The sampled subgraph ``S``: adjacency sets + O(1) random eviction."""

    __slots__ = ("_adj", "_edges", "_index", "recorder", "version")

    def __init__(self, recorder: Optional[Recorder] = None) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._edges: List[Edge] = []
        self._index: Dict[Edge, int] = {}
        self.recorder = recorder
        #: Monotonic mutation counter.  Derived read-side structures
        #: (:class:`~repro.sampling.ndadjacency.NdAdjacency`) compare it
        #: to detect staleness without subscribing to every mutation.
        self.version = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """``|S|`` — number of sampled edges."""
        return len(self._edges)

    @property
    def num_vertices(self) -> int:
        """Vertices with at least one sampled edge."""
        return len(self._adj)

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._index

    def contains(self, u: Vertex, v: Vertex) -> bool:
        return (u, v) in self._index

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """``N^S_v`` (live internal set; callers must not mutate)."""
        return self._adj.get(vertex, _EMPTY_SET)

    def degree(self, vertex: Vertex) -> int:
        """``d^S_v`` — degree within the sample."""
        return len(self._adj.get(vertex, _EMPTY_SET))

    def degree_sum(self, vertices: Iterable[Vertex]) -> int:
        """Cumulative sample degree of ``vertices`` (cheapest-side test)."""
        adj = self._adj
        return sum(len(adj.get(v, _EMPTY_SET)) for v in vertices)

    def edges(self) -> Tuple[Edge, ...]:
        """Snapshot of the sampled edges."""
        return tuple(self._edges)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert edge ``(u, v)`` into the sample.

        Raises:
            SamplingError: if the edge is already sampled (a uniform
                sample of a simple graph never holds duplicates).
        """
        edge = (u, v)
        if edge in self._index:
            raise SamplingError(f"edge {edge} already in sample")
        self._index[edge] = len(self._edges)
        self._edges.append(edge)
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self.version += 1
        if self.recorder is not None:
            self.recorder("+", u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> bool:
        """Remove edge ``(u, v)`` if present; report whether it was.

        Random Pairing needs the "was it sampled?" answer to decide
        which compensation counter to bump, so absence is not an error.
        """
        edge = (u, v)
        position = self._index.pop(edge, None)
        if position is None:
            return False
        # O(1) deletion from the edge list: swap in the last edge.
        last = self._edges.pop()
        if last != edge:
            self._edges[position] = last
            self._index[last] = position
        self._discard_adjacency(u, v)
        self.version += 1
        if self.recorder is not None:
            self.recorder("-", u, v)
        return True

    def evict_random_edge(self, rng: random.Random) -> Edge:
        """Remove and return a uniformly random sampled edge."""
        if not self._edges:
            raise SamplingError("cannot evict from an empty sample")
        position = rng.randrange(len(self._edges))
        edge = self._edges[position]
        last = self._edges.pop()
        del self._index[edge]
        if last != edge:
            self._edges[position] = last
            self._index[last] = position
        u, v = edge
        self._discard_adjacency(u, v)
        self.version += 1
        if self.recorder is not None:
            self.recorder("-", u, v)
        return edge

    def clear(self) -> None:
        self._adj.clear()
        self._edges.clear()
        self._index.clear()
        self.version += 1

    def _discard_adjacency(self, u: Vertex, v: Vertex) -> None:
        bucket = self._adj.get(u)
        if bucket is not None:
            bucket.discard(v)
            if not bucket:
                del self._adj[u]
        bucket = self._adj.get(v)
        if bucket is not None:
            bucket.discard(u)
            if not bucket:
                del self._adj[v]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphSample(|S|={len(self._edges)})"
