"""Random Pairing (Gemulla, Lehner, Haas — VLDB Journal 2008).

Random Pairing (RP) maintains a *uniform* bounded-size sample of the
live edges of a fully dynamic stream.  The trick is a pair of
compensation counters:

* ``cb`` ("bad" deletions) — deletions whose edge *was* in the sample,
* ``cg`` ("good" deletions) — deletions whose edge was not sampled.

While ``cb + cg > 0``, arriving insertions do not grow the stream-level
sampling pressure; instead they "pair up" with an earlier deletion: with
probability ``cb / (cb + cg)`` the new edge enters the sample (replacing,
in expectation, the hole a bad deletion left) and ``cb`` is decremented,
otherwise ``cg`` is decremented.  When both counters are zero RP behaves
exactly like reservoir sampling.  This is Algorithm 2 of the paper,
verbatim.

The class also exposes the quantities ABACUS's estimator needs *before*
each sample update: the live-edge count ``|E|``, the counters, the
sample-size bound ``y = min(k, |E| + cb + cg)``, and the three-edge
discovery probability of Equation 1 (delegated to
:mod:`repro.core.probabilities`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import SamplingError, StreamError
from repro.sampling.adjacency_sample import GraphSample, Mutation
from repro.types import Op, StreamElement, Vertex

_NO_MUTATIONS: Tuple[Mutation, ...] = ()


@dataclass(frozen=True)
class BatchIngestResult:
    """What :meth:`RandomPairing.process_batch` observed, per element.

    Attributes:
        pre_live: ``|E|`` before each element's update.
        pre_cb / pre_cg: the compensation counters before each update.
        mutations: ``(element_index, op, u, v)`` sample changes, in the
            exact order they were applied.
    """

    pre_live: List[int]
    pre_cb: List[int]
    pre_cg: List[int]
    mutations: List[Tuple[int, str, Vertex, Vertex]]


class RandomPairing:
    """Bounded uniform sampling of a fully dynamic edge stream.

    Args:
        budget: the memory budget ``k`` (maximum sampled edges); the
            paper requires ``k >= 2`` and butterfly discovery needs
            three sampled edges, so small budgets are legal but useless.
        rng: randomness source (seed it for reproducible runs).
        sample: optionally, an existing :class:`GraphSample` to manage
            (PARABACUS passes one wired to a delta recorder).

    Attributes:
        num_live_edges: ``|E(t)|`` — stream edges not yet deleted.
        cb: uncompensated deletions of sampled edges.
        cg: uncompensated deletions of unsampled edges.
    """

    __slots__ = ("budget", "sample", "num_live_edges", "cb", "cg", "_rng")

    def __init__(
        self,
        budget: int,
        rng: Optional[random.Random] = None,
        sample: Optional[GraphSample] = None,
    ) -> None:
        if budget < 2:
            raise SamplingError(f"memory budget must be >= 2, got {budget}")
        self.budget = budget
        self.sample = sample if sample is not None else GraphSample()
        self.num_live_edges = 0
        self.cb = 0
        self.cg = 0
        self._rng = rng or random.Random()

    # ------------------------------------------------------------------
    # Stream ingestion (Algorithm 2)
    # ------------------------------------------------------------------
    def process(self, element: StreamElement) -> Tuple[Mutation, ...]:
        """Apply one stream element; return the sample mutations caused."""
        if element.op is Op.INSERT:
            return self.insert(element.u, element.v)
        return self.delete(element.u, element.v)

    def insert(self, u: Vertex, v: Vertex) -> Tuple[Mutation, ...]:
        """``InsertToSample`` — Algorithm 2, lines 1-10."""
        self.num_live_edges += 1
        uncompensated = self.cb + self.cg
        if uncompensated == 0:
            if self.sample.num_edges < self.budget:
                self.sample.add_edge(u, v)
                return (("+", u, v),)
            if self._rng.random() < self.budget / self.num_live_edges:
                evicted_u, evicted_v = self.sample.evict_random_edge(self._rng)
                self.sample.add_edge(u, v)
                return (("-", evicted_u, evicted_v), ("+", u, v))
            return _NO_MUTATIONS
        if self._rng.random() < self.cb / uncompensated:
            self.sample.add_edge(u, v)
            self.cb -= 1
            return (("+", u, v),)
        self.cg -= 1
        return _NO_MUTATIONS

    def delete(self, u: Vertex, v: Vertex) -> Tuple[Mutation, ...]:
        """``DeleteFromSample`` — Algorithm 2, lines 11-16."""
        if self.num_live_edges <= 0:
            raise StreamError(
                f"deletion of ({u!r}, {v!r}) with no live edges in stream"
            )
        self.num_live_edges -= 1
        if self.sample.remove_edge(u, v):
            self.cb += 1
            return (("-", u, v),)
        self.cg += 1
        return _NO_MUTATIONS

    def process_batch(
        self, elements: Iterable[StreamElement]
    ) -> BatchIngestResult:
        """Apply a whole batch; record pre-states and sample mutations.

        Observably identical to calling :meth:`process` per element with
        the same RNG — it *is* that loop: the draw count per element
        depends on the state the element finds (an insertion while the
        sample is filling draws nothing; a pairing insertion draws once;
        a full-reservoir acceptance draws twice), so acceptance
        randomness cannot be pre-drawn in bulk without reordering the
        draw stream and breaking the batched-vs-per-element equivalence
        contract.  The wrapper's value is the bulk bookkeeping of the
        returned :class:`BatchIngestResult`: the Equation 1 pre-state
        triplets and the indexed sample-mutation log, collected without
        the caller re-reading sampler attributes per element.
        """
        pre_live: List[int] = []
        pre_cb: List[int] = []
        pre_cg: List[int] = []
        mutations: List[Tuple[int, str, Vertex, Vertex]] = []
        for index, element in enumerate(elements):
            pre_live.append(self.num_live_edges)
            pre_cb.append(self.cb)
            pre_cg.append(self.cg)
            for op, u, v in self.process(element):
                mutations.append((index, op, u, v))
        return BatchIngestResult(pre_live, pre_cb, pre_cg, mutations)

    # ------------------------------------------------------------------
    # Budget resizing (Gemulla et al., Section 5: shrinking is cheap)
    # ------------------------------------------------------------------
    @property
    def can_resize(self) -> bool:
        """Whether the sampler is in the resize-safe state.

        Resizing is only sound while no deletions await compensation:
        the counters' pairing semantics are tied to the budget they
        accumulated under, and subsampling amid pending deletions
        demonstrably biases downstream estimates.
        """
        return self.cb == 0 and self.cg == 0

    def shrink_budget(self, new_budget: int) -> int:
        """Reduce the memory budget to ``new_budget``, evicting uniformly.

        In the compensation-free state (``cb == cg == 0``) the sampler
        is exactly a reservoir, and a uniform random subsample of a
        uniform sample is uniform — so after the call the sample is a
        uniform size-``min(new_budget, |E|)`` sample and Equation 1
        keeps holding with the new ``k``.  The evicted edges remain
        live in the stream (this is a memory operation, not a
        deletion).

        While deletions are pending (``cb + cg > 0``) shrinking is
        refused: the counters encode pairing obligations against the
        old budget, and subsampling then provably skews the inclusion
        probabilities Equation 1 reports.  Callers should poll
        :attr:`can_resize` and shrink at the next clean point.

        *Growing* the budget is intentionally not offered: naively
        raising ``k`` lets subsequent insertions enter with probability
        one, which breaks uniformity; Gemulla et al.'s dedicated
        resizing phase is out of scope here.

        Returns:
            The number of edges evicted.

        Raises:
            SamplingError: if ``new_budget < 2``, larger than the
                current budget, or deletions are pending compensation.
        """
        if new_budget < 2:
            raise SamplingError(
                f"memory budget must be >= 2, got {new_budget}"
            )
        if new_budget > self.budget:
            raise SamplingError(
                "cannot grow the budget uniformly; shrink only "
                f"(current {self.budget}, requested {new_budget})"
            )
        if not self.can_resize:
            raise SamplingError(
                f"cannot shrink with pending deletions (cb={self.cb}, "
                f"cg={self.cg}); wait for can_resize"
            )
        evicted = 0
        while self.sample.num_edges > new_budget:
            self.sample.evict_random_edge(self._rng)
            evicted += 1
        self.budget = new_budget
        return evicted

    # ------------------------------------------------------------------
    # State capture (public accessors — no reaching into _rng)
    # ------------------------------------------------------------------
    def get_rng_state(self) -> tuple:
        """The RNG state tuple, as ``random.Random.getstate`` returns it."""
        return self._rng.getstate()

    def set_rng_state(self, state: tuple) -> None:
        """Restore an RNG state captured by :meth:`get_rng_state`."""
        self._rng.setstate(state)

    def state_to_dict(self) -> dict:
        """Capture the sampler's complete state as a JSON-ready dict.

        Includes the budget, the live-edge count, both compensation
        counters, the sampled edges, and the RNG state — everything a
        fresh sampler needs to continue bit-identically.
        """
        version, internal, gauss = self.get_rng_state()
        return {
            "budget": self.budget,
            "num_live_edges": self.num_live_edges,
            "cb": self.cb,
            "cg": self.cg,
            "sample_edges": [list(edge) for edge in self.sample.edges()],
            # random.Random.getstate() -> (version, tuple-of-ints, gauss).
            "rng_state": [version, list(internal), gauss],
        }

    def restore_state(self, state: dict) -> None:
        """Load :meth:`state_to_dict` output into this (fresh) sampler.

        The sampler must still hold an empty sample; the captured edges
        are replayed into it.  The budget is not changed — construct
        the sampler with ``state["budget"]`` first.
        """
        raw_version, raw_internal, raw_gauss = state["rng_state"]
        self.set_rng_state((raw_version, tuple(raw_internal), raw_gauss))
        self.num_live_edges = state["num_live_edges"]
        self.cb = state["cb"]
        self.cg = state["cg"]
        for u, v in state["sample_edges"]:
            self.sample.add_edge(u, v)

    # ------------------------------------------------------------------
    # Estimator-facing state
    # ------------------------------------------------------------------
    @property
    def stream_size_with_pending(self) -> int:
        """``T = |E| + cb + cg`` — the denominator base of Equation 1."""
        return self.num_live_edges + self.cb + self.cg

    @property
    def effective_sample_bound(self) -> int:
        """``y = min(k, |E| + cb + cg)`` — Equation 1's numerator base."""
        return min(self.budget, self.stream_size_with_pending)

    def inclusion_probability(self) -> float:
        """Probability that one specific live edge is currently sampled."""
        t = self.stream_size_with_pending
        if t == 0:
            return 0.0
        return self.effective_sample_bound / t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RandomPairing(|S|={self.sample.num_edges}/{self.budget}, "
            f"|E|={self.num_live_edges}, cb={self.cb}, cg={self.cg})"
        )
