"""Classic reservoir sampling (Vitter, 1985).

Maintains a uniform random sample of fixed maximum size over an
*insert-only* stream.  This is the scheme ABACUS degenerates to when the
compensation counters are zero, and the building block of the insert-only
baselines.  Under deletions it loses uniformity — which is precisely the
failure mode the paper's accuracy experiments expose.

The sampler accepts either the standard-library ``random.Random`` (the
default, and the source every estimator uses — their batched and
per-element paths must stay bit-identical, so draws are consumed
strictly in arrival order) or a NumPy ``Generator``.  With a Generator,
:meth:`ReservoirSampler.offer_batch` vectorizes the acceptance draws:
one bulk ``integers`` call over the per-item bounds replaces one Python
call per item.  The bulk draw pattern differs from per-element draws at
the bit level (NumPy's bounded-integer path is shape-dependent), so the
Generator fast path promises determinism per seed and uniformity — not
cross-path bit-equality; the ``random.Random`` path promises both.
"""

from __future__ import annotations

import random
from typing import Generic, List, Optional, Sequence, TypeVar, Union

from repro.errors import SamplingError

try:  # pragma: no cover - numpy ships in the supported environments
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

T = TypeVar("T")

RandomSource = Union[random.Random, "_np.random.Generator"]


class ReservoirSampler(Generic[T]):
    """Uniform fixed-capacity sample of an insert-only item stream.

    Attributes:
        capacity: maximum number of retained items (``k``).
        num_seen: number of items offered so far (``n``).
    """

    __slots__ = ("capacity", "num_seen", "_items", "_rng", "_randrange")

    def __init__(
        self, capacity: int, rng: Optional[RandomSource] = None
    ) -> None:
        if capacity <= 0:
            raise SamplingError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.num_seen = 0
        self._items: List[T] = []
        self._rng = rng if rng is not None else random.Random()
        randrange = getattr(self._rng, "randrange", None)
        if randrange is not None:
            self._randrange = randrange
        else:  # numpy Generator: draw bounded ints via integers().
            integers = self._rng.integers
            self._randrange = lambda bound: int(integers(bound))

    @property
    def items(self) -> List[T]:
        """The current sample (live list; treat as read-only)."""
        return self._items

    @property
    def size(self) -> int:
        return len(self._items)

    @property
    def inclusion_probability(self) -> float:
        """Probability that any given seen item is currently sampled."""
        if self.num_seen == 0:
            return 0.0
        return min(1.0, self.capacity / self.num_seen)

    def offer(self, item: T) -> Optional[T]:
        """Present one stream item; return the evicted item, if any.

        Returns None when the item was simply appended or rejected;
        returns the replaced item when the reservoir was full and the
        new item displaced it.
        """
        self.num_seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return None
        j = self._randrange(self.num_seen)
        if j < self.capacity:
            evicted = self._items[j]
            self._items[j] = item
            return evicted
        return None

    def offer_batch(self, items: Sequence[T]) -> List[T]:
        """Present a whole batch; return the evicted items, in order.

        With a ``random.Random`` source this consumes draws in exactly
        the order :meth:`offer` would (bit-identical state afterwards).
        With a NumPy ``Generator`` the acceptance indices for the whole
        post-fill suffix are drawn in one vectorized ``integers`` call
        against the per-item bounds ``n+1, n+2, ...`` and only the
        accepted items touch the reservoir from Python.
        """
        items = list(items)
        evicted: List[T] = []
        # Fill phase: no randomness is consumed while below capacity.
        fill = min(self.capacity - len(self._items), len(items))
        if fill > 0:
            self._items.extend(items[:fill])
            self.num_seen += fill
            items = items[fill:]
        if not items:
            return evicted
        if _np is not None and isinstance(self._rng, _np.random.Generator):
            bounds = self.num_seen + 1 + _np.arange(
                len(items), dtype=_np.int64
            )
            draws = self._rng.integers(0, bounds)
            self.num_seen += len(items)
            for position in _np.nonzero(draws < self.capacity)[0].tolist():
                slot = int(draws[position])
                evicted.append(self._items[slot])
                self._items[slot] = items[position]
            return evicted
        for item in items:
            replaced = self.offer(item)
            if replaced is not None:
                evicted.append(replaced)
        return evicted

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReservoirSampler(size={len(self._items)}/{self.capacity}, "
            f"seen={self.num_seen})"
        )
