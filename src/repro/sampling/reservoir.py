"""Classic reservoir sampling (Vitter, 1985).

Maintains a uniform random sample of fixed maximum size over an
*insert-only* stream.  This is the scheme ABACUS degenerates to when the
compensation counters are zero, and the building block of the insert-only
baselines.  Under deletions it loses uniformity — which is precisely the
failure mode the paper's accuracy experiments expose.
"""

from __future__ import annotations

import random
from typing import Generic, List, Optional, TypeVar

from repro.errors import SamplingError

T = TypeVar("T")


class ReservoirSampler(Generic[T]):
    """Uniform fixed-capacity sample of an insert-only item stream.

    Attributes:
        capacity: maximum number of retained items (``k``).
        num_seen: number of items offered so far (``n``).
    """

    __slots__ = ("capacity", "num_seen", "_items", "_rng")

    def __init__(self, capacity: int, rng: Optional[random.Random] = None) -> None:
        if capacity <= 0:
            raise SamplingError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.num_seen = 0
        self._items: List[T] = []
        self._rng = rng or random.Random()

    @property
    def items(self) -> List[T]:
        """The current sample (live list; treat as read-only)."""
        return self._items

    @property
    def size(self) -> int:
        return len(self._items)

    @property
    def inclusion_probability(self) -> float:
        """Probability that any given seen item is currently sampled."""
        if self.num_seen == 0:
            return 0.0
        return min(1.0, self.capacity / self.num_seen)

    def offer(self, item: T) -> Optional[T]:
        """Present one stream item; return the evicted item, if any.

        Returns None when the item was simply appended or rejected;
        returns the replaced item when the reservoir was full and the
        new item displaced it.
        """
        self.num_seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return None
        j = self._rng.randrange(self.num_seen)
        if j < self.capacity:
            evicted = self._items[j]
            self._items[j] = item
            return evicted
        return None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReservoirSampler(size={len(self._items)}/{self.capacity}, "
            f"seen={self.num_seen})"
        )
