"""Versioned samples for PARABACUS mini-batches.

PARABACUS (Section V) first replays a mini-batch of ``M`` elements
through Random Pairing *sequentially*, producing the sample states
``S_0, S_1, ..., S_{M-1}`` that ABACUS would have observed, and then
counts per-edge butterflies against the matching state in parallel.
Storing ``M`` full samples would cost O(M * k); instead, the paper keeps
one live sample plus the per-version *discrepancies* of each vertex's
neighbour set, bounding extra space by O(M).

:class:`VersionedGraphSample` implements that delta coding:

* It installs itself as the :class:`GraphSample` recorder, so every
  mutation performed by Random Pairing during the sequential phase is
  tagged with the version it creates.
* After the sequential phase the live sample sits at the *final* state;
  querying an earlier version ``q`` re-derives ``N^{S_q}(v)`` by
  applying the *inverse* of every delta tagged ``> q`` to the live
  neighbour set (newest first).
* Alongside each version it caches the triplet ``(|E|, cb, cg)`` the
  paper uses to recompute the Equation 1 increment for that element.

All query methods are read-only with respect to shared state, so the
parallel counting phase can call them from many threads safely.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import SamplingError
from repro.sampling.adjacency_sample import GraphSample
from repro.types import Vertex

# One cached triplet per mini-batch element: (|E|, cb, cg) *before* the
# element's sample update — i.e. the state of S_{i} seen by element i.
Triplet = Tuple[int, int, int]


class VersionedGraphSample:
    """Delta-coded view of a :class:`GraphSample` across a mini-batch."""

    __slots__ = (
        "_sample",
        "_deltas",
        "_triplets",
        "_pending_version",
        "_recording",
    )

    def __init__(self, sample: GraphSample) -> None:
        self._sample = sample
        self._deltas: Dict[Vertex, List[Tuple[int, str, Vertex]]] = {}
        self._triplets: List[Triplet] = []
        self._pending_version = 0
        self._recording = False

    # ------------------------------------------------------------------
    # Sequential phase (version construction)
    # ------------------------------------------------------------------
    def begin_batch(self) -> None:
        """Reset deltas and start recording sample mutations."""
        if self._recording:
            raise SamplingError("begin_batch called while already recording")
        self._deltas.clear()
        self._triplets.clear()
        self._pending_version = 0
        self._sample.recorder = self._record
        self._recording = True

    def note_element_state(
        self, num_live_edges: int, cb: int, cg: int
    ) -> None:
        """Cache the (|E|, cb, cg) triplet for the next element.

        Must be called once per element, *before* the element's Random
        Pairing update runs; mutations recorded afterwards are tagged as
        belonging to that element's version transition.
        """
        if not self._recording:
            raise SamplingError("note_element_state outside a batch")
        self._triplets.append((num_live_edges, cb, cg))
        self._pending_version += 1

    def end_batch(self) -> int:
        """Stop recording; return the number of versions captured."""
        if not self._recording:
            raise SamplingError("end_batch without begin_batch")
        self._sample.recorder = None
        self._recording = False
        return self._pending_version

    def _record(self, op: str, u: Vertex, v: Vertex) -> None:
        """GraphSample recorder hook: tag the mutation with its version."""
        tag = self._pending_version
        self._deltas.setdefault(u, []).append((tag, op, v))
        self._deltas.setdefault(v, []).append((tag, op, u))

    # ------------------------------------------------------------------
    # Parallel phase (version queries)
    # ------------------------------------------------------------------
    def triplet(self, index: int) -> Triplet:
        """The cached ``(|E|, cb, cg)`` for mini-batch element ``index``."""
        return self._triplets[index]

    @property
    def num_versions(self) -> int:
        return len(self._triplets)

    def neighbors_at(self, vertex: Vertex, version: int) -> Set[Vertex]:
        """``N^{S_version}(vertex)`` with ``S_0`` the pre-batch state.

        Starts from the live (post-batch) neighbour set and inverts all
        deltas tagged with a later version, newest first.  Returns a
        private set the caller may keep or mutate.
        """
        live = set(self._sample.neighbors(vertex))
        deltas = self._deltas.get(vertex)
        if not deltas:
            return live
        for tag, op, other in reversed(deltas):
            if tag <= version:
                break
            if op == "+":
                live.discard(other)
            else:
                live.add(other)
        return live

    def degree_at(self, vertex: Vertex, version: int) -> int:
        """Sample degree of ``vertex`` at ``version``.

        Computed without materialising the set when the vertex has no
        in-batch deltas (the overwhelmingly common case).
        """
        deltas = self._deltas.get(vertex)
        if not deltas:
            return self._sample.degree(vertex)
        return len(self.neighbors_at(vertex, version))

    def degree_sum_at(self, vertices: Iterable[Vertex], version: int) -> int:
        """Cumulative sample degree of ``vertices`` at ``version``."""
        return sum(self.degree_at(v, version) for v in vertices)

    def delta_count(self) -> int:
        """Total recorded vertex-delta entries (for the O(M) space test)."""
        return sum(len(entries) for entries in self._deltas.values())
