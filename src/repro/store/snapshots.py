"""Durable session snapshots: atomic JSON files keyed by stream offset.

A snapshot file holds one :meth:`repro.api.session.Session.snapshot`
envelope — the complete estimator state behind the
``state_to_dict`` / ``from_state_dict`` protocol — named by the
element offset it captures::

    snapshot-00000000000000001024.json

Writes are **atomic**: the payload goes to a temporary file in the
same directory, is flushed and fsynced, and only then renamed into
place (``os.replace``), so a crash can never leave a half-written
snapshot under the canonical name.  :meth:`SnapshotStore.latest`
additionally skips any snapshot that fails to parse, falling back to
the previous one — corruption costs replay work, never correctness.

>>> import tempfile
>>> store = SnapshotStore(tempfile.mkdtemp())
>>> store.latest() is None
True
>>> _ = store.save({"state": "tiny"}, offset=4)
>>> _ = store.save({"state": "bigger"}, offset=9)
>>> store.offsets()
(4, 9)
>>> store.latest()
(9, {'state': 'bigger'})
>>> store.prune(keep=1)
[4]
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import StoreError

__all__ = ["SnapshotStore"]

_NAME = re.compile(r"^snapshot-(\d{20})\.json$")


def _fsync_directory(directory: pathlib.Path) -> None:
    """Make a rename in ``directory`` durable (best effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory handles
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SnapshotStore:
    """Atomic, offset-keyed snapshot files inside one directory."""

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self._dir = pathlib.Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> pathlib.Path:
        return self._dir

    def path_for(self, offset: int) -> pathlib.Path:
        """The canonical snapshot path for an element offset."""
        if offset < 0:
            raise StoreError(f"snapshot offset must be >= 0: {offset}")
        return self._dir / f"snapshot-{offset:020d}.json"

    def save(self, payload: Dict[str, Any], offset: int) -> pathlib.Path:
        """Write ``payload`` atomically as the snapshot at ``offset``."""
        target = self.path_for(offset)
        temporary = target.with_name(f".tmp-{target.name}")
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, target)
        _fsync_directory(self._dir)
        return target

    def offsets(self) -> Tuple[int, ...]:
        """Offsets of every snapshot file present, ascending."""
        found = []
        for entry in self._dir.iterdir():
            match = _NAME.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return tuple(sorted(found))

    def load(self, offset: int) -> Dict[str, Any]:
        """Load one snapshot; raises StoreError when unreadable."""
        path = self.path_for(offset)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"snapshot {path.name} is unreadable: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise StoreError(f"snapshot {path.name} is not a JSON object")
        return payload

    def latest(self) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The newest *loadable* snapshot as ``(offset, payload)``.

        Unreadable snapshots (which atomic writes make improbable) are
        skipped rather than fatal: recovery falls back to an older
        snapshot plus a longer WAL replay.
        """
        for offset in reversed(self.offsets()):
            try:
                return offset, self.load(offset)
            except StoreError:
                continue
        return None

    def prune(self, keep: int = 2) -> List[int]:
        """Delete all but the newest ``keep`` snapshots.

        Returns the offsets removed.  ``keep`` must be positive — the
        store never deletes its only recovery point.
        """
        if keep <= 0:
            raise StoreError(f"keep must be positive, got {keep}")
        doomed = self.offsets()[:-keep]
        for offset in doomed:
            self.path_for(offset).unlink(missing_ok=True)
        return list(doomed)
