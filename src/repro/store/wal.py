"""The write-ahead log: CRC-framed stream elements on disk.

A WAL file is an 8-byte magic header followed by framed records::

    header  := b"RWAL" <format:u8> b"\\x00\\x00\\x00"
    record  := <payload_len:u32 LE> <crc32(payload):u32 LE> <payload>
    payload := format 1: UTF-8 JSON of StreamElement.to_record()
                         ([op, u, v] or [op, u, v, time])
               format 2: the packed binary element encoding of
                         :mod:`repro.store.codec`

The **format byte** in the magic selects the payload grammar for the
whole segment.  New segments are written in :data:`DEFAULT_WAL_FORMAT`
(packed, format 2); format-1 segments written by earlier versions stay
readable forever — :func:`scan_wal` and :func:`iter_wal` dispatch per
segment on the header, so a durable directory may mix formats across
its segment history (``docs/persistence.md`` pins this promise).

Records are framed individually so a crash can only tear the **tail**:
:func:`scan_wal` walks frames until the first short read or CRC
mismatch and reports the prefix that is intact — everything before a
torn frame is trusted, everything from it on is discarded (recovery
truncates the file there before appending again).  The corruption
model is format-independent: the CRC guards the payload bytes, so a
bit flip inside a packed record is caught exactly like one inside a
JSON record (``tests/store/test_wal_edges.py`` flips every byte of
both to prove it).

:class:`WalWriter` appends through a buffered file handle and batches
``fsync``: the default :data:`~repro.store.durable.DEFAULT_FSYNC_EVERY`
records per sync amortises the flush cost across the ingest hot path,
and :meth:`WalWriter.sync` forces the barrier whenever the caller needs
one (snapshots do).

>>> import pathlib, tempfile
>>> from repro.types import insertion, timed_deletion
>>> path = pathlib.Path(tempfile.mkdtemp()) / "wal-0.log"
>>> with WalWriter(path, fsync_every=2) as wal:
...     wal.append(insertion("alice", "matrix"))
...     wal.append(timed_deletion(3, 7, 2.5))
>>> [str(element) for element in iter_wal(path)]
['(alice, matrix, +)', '(3, 7, -, t=2.5)']
>>> scan_wal(path).records, scan_wal(path).clean, scan_wal(path).format
(2, True, 2)
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.errors import CodecError, StoreError
from repro.store import codec
from repro.types import StreamElement

__all__ = [
    "DEFAULT_WAL_FORMAT",
    "WAL_MAGIC",
    "WAL_MAGIC_V2",
    "WalScan",
    "WalWriter",
    "iter_wal",
    "scan_wal",
    "wal_magic",
]

#: File magic of a format-1 (JSON payload) WAL segment.
WAL_MAGIC = b"RWAL\x01\x00\x00\x00"

#: File magic of a format-2 (packed payload) WAL segment.
WAL_MAGIC_V2 = b"RWAL\x02\x00\x00\x00"

#: Format for segments created without an explicit ``format=``.
#: Module-level so tests can pin it back to 1 and build v1 directories
#: through the unmodified session/serve paths.
DEFAULT_WAL_FORMAT = 2

_MAGICS = {1: WAL_MAGIC, 2: WAL_MAGIC_V2}

#: Frame header: little-endian payload length + CRC32 of the payload.
_FRAME = struct.Struct("<II")

#: Upper bound on a sane payload; a longer declared length is treated
#: as corruption (stops the scan) instead of being allocated.
_MAX_PAYLOAD = 1 << 20

PathLike = Union[str, os.PathLike]


def wal_magic(format: int) -> bytes:
    """The 8-byte header for a WAL segment of ``format`` (1 or 2)."""
    try:
        return _MAGICS[format]
    except KeyError:
        raise StoreError(
            f"unknown WAL format {format!r} (supported: 1, 2)"
        ) from None


def _encode(element: StreamElement, format: int) -> bytes:
    if format == 2:
        payload = codec.encode_element(element)
    else:
        payload = json.dumps(
            element.to_record(), separators=(",", ":")
        ).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _decode(payload: bytes, format: int, path: PathLike) -> StreamElement:
    try:
        if format == 2:
            return codec.decode_element(payload)
        return StreamElement.from_record(json.loads(payload))
    except (json.JSONDecodeError, ValueError, CodecError) as exc:
        raise StoreError(
            f"WAL record with a valid checksum failed to "
            f"decode in {os.fspath(path)!r}: {exc}"
        ) from exc


@dataclass(frozen=True)
class WalScan:
    """What :func:`scan_wal` found in one WAL file.

    Attributes:
        records: intact records before any torn/corrupt frame.
        valid_bytes: file length of the intact prefix (header
            included) — recovery truncates the file here.
        clean: True when the file ends exactly on a frame boundary
            (no torn tail).
        format: the segment's payload format from its magic header
            (1 = JSON, 2 = packed); 0 for a torn header.
    """

    records: int
    valid_bytes: int
    clean: bool
    format: int = 1


def _check_header(head: bytes, path: PathLike) -> Optional[int]:
    """The header's format number, or None for a torn magic prefix.

    A file shorter than the magic whose bytes *are* a prefix of some
    supported magic is a crash during file creation — recoverable
    (0 records).  Anything else is not a repro WAL and raises.
    """
    for format, magic in _MAGICS.items():
        if head == magic:
            return format
    if len(head) < 8 and any(
        magic.startswith(head) for magic in _MAGICS.values()
    ):
        return None
    raise StoreError(f"{os.fspath(path)!r} is not a repro WAL file")


def scan_wal(path: PathLike) -> WalScan:
    """Walk a WAL's frames; report the intact prefix and tail state."""
    records = 0
    with open(path, "rb") as handle:
        format = _check_header(handle.read(8), path)
        if format is None:
            return WalScan(0, 0, False, 0)
        valid = 8
        while True:
            header = handle.read(_FRAME.size)
            if not header:
                return WalScan(records, valid, True, format)
            if len(header) < _FRAME.size:
                return WalScan(records, valid, False, format)
            length, crc = _FRAME.unpack(header)
            if length == 0 or length > _MAX_PAYLOAD:
                # No element encodes to an empty payload in either
                # format, so a zero-length frame is corruption —
                # typically a zero-filled tail a filesystem left
                # after a crash (crc32(b"") == 0 makes it
                # checksum-"valid").
                return WalScan(records, valid, False, format)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return WalScan(records, valid, False, format)
            records += 1
            valid += _FRAME.size + length


def iter_wal(path: PathLike) -> Iterator[StreamElement]:
    """Yield the intact records of a WAL file as stream elements.

    Stops silently at a torn tail (use :func:`scan_wal` to learn
    whether one exists); raises :class:`~repro.errors.StoreError` for
    a record whose intact payload is not a valid element record in
    the segment's format.
    """
    with open(path, "rb") as handle:
        format = _check_header(handle.read(8), path)
        if format is None:
            return
        while True:
            header = handle.read(_FRAME.size)
            if len(header) < _FRAME.size:
                return
            length, crc = _FRAME.unpack(header)
            if length == 0 or length > _MAX_PAYLOAD:
                return
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return
            yield _decode(payload, format, path)


class WalWriter:
    """Append-only writer for one WAL segment file.

    Args:
        path: segment file.  A missing or empty file gets the magic
            header; an existing file must start with one (recovery
            truncates torn state *before* constructing a writer).
        fsync_every: force ``fsync`` after this many appended records.
            Appends between barriers live in OS/file buffers — a crash
            may tear them, which is exactly the tail :func:`scan_wal`
            discards.  ``sync()``/``close()`` always force a barrier.
        format: payload format for a **new** segment (default
            :data:`DEFAULT_WAL_FORMAT`).  An existing non-empty file
            keeps the format in its header — a segment is
            single-format by construction, so appends *adopt* it and
            ``format=`` is ignored there.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        fsync_every: int = 256,
        format: Optional[int] = None,
    ) -> None:
        if fsync_every <= 0:
            raise StoreError(
                f"fsync_every must be positive, got {fsync_every}"
            )
        self._path = path
        self._fsync_every = fsync_every
        self._pending = 0
        self._appended = 0
        size = os.path.getsize(path) if os.path.exists(path) else 0
        if size:
            with open(path, "rb") as handle:
                existing = _check_header(handle.read(8), path)
                if existing is None:
                    raise StoreError(
                        f"cannot append to {os.fspath(path)!r}: torn "
                        "header (run recovery first)"
                    )
            self._format = existing
        else:
            self._format = (
                format if format is not None else DEFAULT_WAL_FORMAT
            )
        magic = wal_magic(self._format)
        self._handle = open(path, "ab")
        if size == 0:
            self._handle.write(magic)
            self._barrier()

    @property
    def path(self) -> PathLike:
        return self._path

    @property
    def format(self) -> int:
        """The segment's payload format (1 = JSON, 2 = packed)."""
        return self._format

    @property
    def appended(self) -> int:
        """Records appended through this writer instance."""
        return self._appended

    def position(self) -> int:
        """Current end-of-log byte position (buffered bytes included).

        Pair with :meth:`truncate_to` to undo appends whose elements
        the estimator then refused — a record must leave the log when
        its element was never ingested, or log and session desync.
        """
        return self._handle.tell()

    def truncate_to(self, position: int, records: int) -> None:
        """Undo the last ``records`` appends, back to ``position``.

        ``position`` must come from :meth:`position` taken before the
        appends being undone.  The truncation is flushed and fsynced —
        a rolled-back record must never resurface after a crash.
        """
        current = self._handle.tell()
        if position > current:
            raise StoreError(
                f"cannot truncate forward: {position} > {current}"
            )
        self._handle.flush()
        os.ftruncate(self._handle.fileno(), position)
        self._handle.seek(position)
        os.fsync(self._handle.fileno())
        self._appended -= records
        self._pending = 0

    def append(self, element: StreamElement) -> None:
        """Frame and append one element; fsync when the batch fills."""
        self._handle.write(_encode(element, self._format))
        self._appended += 1
        self._pending += 1
        if self._pending >= self._fsync_every:
            self._barrier()

    def append_batch(self, elements: Iterable[StreamElement]) -> int:
        """Append a run of elements; returns how many were appended."""
        count = 0
        write = self._handle.write
        format = self._format
        for element in elements:
            write(_encode(element, format))
            count += 1
        self._appended += count
        self._pending += count
        if self._pending >= self._fsync_every:
            self._barrier()
        return count

    def _barrier(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._pending = 0

    def sync(self) -> None:
        """Force buffered appends to durable storage now."""
        self._barrier()

    def close(self) -> None:
        if self._handle.closed:
            return
        self._barrier()
        self._handle.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WalWriter({os.fspath(self._path)!r}, "
            f"format={self._format}, appended={self._appended})"
        )
