"""The write-ahead log: CRC-framed stream elements on disk.

A WAL file is an 8-byte magic header followed by framed records::

    header  := b"RWAL" <format:u8> b"\\x00\\x00\\x00"
    record  := <payload_len:u32 LE> <crc32(payload):u32 LE> <payload>
    payload := UTF-8 JSON of StreamElement.to_record()
               ([op, u, v] or [op, u, v, time])

Records are framed individually so a crash can only tear the **tail**:
:func:`scan_wal` walks frames until the first short read or CRC
mismatch and reports the prefix that is intact — everything before a
torn frame is trusted, everything from it on is discarded (recovery
truncates the file there before appending again).

:class:`WalWriter` appends through a buffered file handle and batches
``fsync``: the default :data:`~repro.store.durable.DEFAULT_FSYNC_EVERY`
records per sync amortises the flush cost across the ingest hot path,
and :meth:`WalWriter.sync` forces the barrier whenever the caller needs
one (snapshots do).

>>> import pathlib, tempfile
>>> from repro.types import insertion, timed_deletion
>>> path = pathlib.Path(tempfile.mkdtemp()) / "wal-0.log"
>>> with WalWriter(path, fsync_every=2) as wal:
...     wal.append(insertion("alice", "matrix"))
...     wal.append(timed_deletion(3, 7, 2.5))
>>> [str(element) for element in iter_wal(path)]
['(alice, matrix, +)', '(3, 7, -, t=2.5)']
>>> scan_wal(path).records, scan_wal(path).clean
(2, True)
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.errors import StoreError
from repro.types import StreamElement

__all__ = ["WAL_MAGIC", "WalScan", "WalWriter", "iter_wal", "scan_wal"]

#: File magic: identifies a repro WAL and pins its format version.
WAL_MAGIC = b"RWAL\x01\x00\x00\x00"

#: Frame header: little-endian payload length + CRC32 of the payload.
_FRAME = struct.Struct("<II")

#: Upper bound on a sane payload; a longer declared length is treated
#: as corruption (stops the scan) instead of being allocated.
_MAX_PAYLOAD = 1 << 20

PathLike = Union[str, os.PathLike]


def _encode(element: StreamElement) -> bytes:
    payload = json.dumps(
        element.to_record(), separators=(",", ":")
    ).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class WalScan:
    """What :func:`scan_wal` found in one WAL file.

    Attributes:
        records: intact records before any torn/corrupt frame.
        valid_bytes: file length of the intact prefix (header
            included) — recovery truncates the file here.
        clean: True when the file ends exactly on a frame boundary
            (no torn tail).
    """

    records: int
    valid_bytes: int
    clean: bool


def _check_header(head: bytes, path: PathLike) -> bool:
    """True when ``head`` is the full magic; False for a torn prefix.

    A file shorter than the magic whose bytes *are* a magic prefix is
    a crash during file creation — recoverable (0 records).  Anything
    else is not a repro WAL and raises.
    """
    if head == WAL_MAGIC:
        return True
    if len(head) < len(WAL_MAGIC) and WAL_MAGIC.startswith(head):
        return False
    raise StoreError(f"{os.fspath(path)!r} is not a repro WAL file")


def scan_wal(path: PathLike) -> WalScan:
    """Walk a WAL's frames; report the intact prefix and tail state."""
    records = 0
    with open(path, "rb") as handle:
        if not _check_header(handle.read(len(WAL_MAGIC)), path):
            return WalScan(0, 0, False)
        valid = len(WAL_MAGIC)
        while True:
            header = handle.read(_FRAME.size)
            if not header:
                return WalScan(records, valid, True)
            if len(header) < _FRAME.size:
                return WalScan(records, valid, False)
            length, crc = _FRAME.unpack(header)
            if length == 0 or length > _MAX_PAYLOAD:
                # No element encodes to an empty payload, so a
                # zero-length frame is corruption — typically a
                # zero-filled tail a filesystem left after a crash
                # (crc32(b"") == 0 makes it checksum-"valid").
                return WalScan(records, valid, False)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return WalScan(records, valid, False)
            records += 1
            valid += _FRAME.size + length


def iter_wal(path: PathLike) -> Iterator[StreamElement]:
    """Yield the intact records of a WAL file as stream elements.

    Stops silently at a torn tail (use :func:`scan_wal` to learn
    whether one exists); raises :class:`~repro.errors.StoreError` for
    a record whose intact payload is not a valid element record.
    """
    with open(path, "rb") as handle:
        if not _check_header(handle.read(len(WAL_MAGIC)), path):
            return
        while True:
            header = handle.read(_FRAME.size)
            if len(header) < _FRAME.size:
                return
            length, crc = _FRAME.unpack(header)
            if length == 0 or length > _MAX_PAYLOAD:
                return
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return
            try:
                yield StreamElement.from_record(json.loads(payload))
            except (json.JSONDecodeError, ValueError) as exc:
                raise StoreError(
                    f"WAL record with a valid checksum failed to "
                    f"decode in {os.fspath(path)!r}: {exc}"
                ) from exc


class WalWriter:
    """Append-only writer for one WAL segment file.

    Args:
        path: segment file.  A missing or empty file gets the magic
            header; an existing file must start with it (recovery
            truncates torn state *before* constructing a writer).
        fsync_every: force ``fsync`` after this many appended records.
            Appends between barriers live in OS/file buffers — a crash
            may tear them, which is exactly the tail :func:`scan_wal`
            discards.  ``sync()``/``close()`` always force a barrier.
    """

    def __init__(self, path: PathLike, *, fsync_every: int = 256) -> None:
        if fsync_every <= 0:
            raise StoreError(
                f"fsync_every must be positive, got {fsync_every}"
            )
        self._path = path
        self._fsync_every = fsync_every
        self._pending = 0
        self._appended = 0
        size = os.path.getsize(path) if os.path.exists(path) else 0
        if size:
            with open(path, "rb") as handle:
                if not _check_header(handle.read(len(WAL_MAGIC)), path):
                    raise StoreError(
                        f"cannot append to {os.fspath(path)!r}: torn "
                        "header (run recovery first)"
                    )
        self._handle = open(path, "ab")
        if size == 0:
            self._handle.write(WAL_MAGIC)
            self._barrier()

    @property
    def path(self) -> PathLike:
        return self._path

    @property
    def appended(self) -> int:
        """Records appended through this writer instance."""
        return self._appended

    def position(self) -> int:
        """Current end-of-log byte position (buffered bytes included).

        Pair with :meth:`truncate_to` to undo appends whose elements
        the estimator then refused — a record must leave the log when
        its element was never ingested, or log and session desync.
        """
        return self._handle.tell()

    def truncate_to(self, position: int, records: int) -> None:
        """Undo the last ``records`` appends, back to ``position``.

        ``position`` must come from :meth:`position` taken before the
        appends being undone.  The truncation is flushed and fsynced —
        a rolled-back record must never resurface after a crash.
        """
        current = self._handle.tell()
        if position > current:
            raise StoreError(
                f"cannot truncate forward: {position} > {current}"
            )
        self._handle.flush()
        os.ftruncate(self._handle.fileno(), position)
        self._handle.seek(position)
        os.fsync(self._handle.fileno())
        self._appended -= records
        self._pending = 0

    def append(self, element: StreamElement) -> None:
        """Frame and append one element; fsync when the batch fills."""
        self._handle.write(_encode(element))
        self._appended += 1
        self._pending += 1
        if self._pending >= self._fsync_every:
            self._barrier()

    def append_batch(self, elements: Iterable[StreamElement]) -> int:
        """Append a run of elements; returns how many were appended."""
        count = 0
        write = self._handle.write
        for element in elements:
            write(_encode(element))
            count += 1
        self._appended += count
        self._pending += count
        if self._pending >= self._fsync_every:
            self._barrier()
        return count

    def _barrier(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._pending = 0

    def sync(self) -> None:
        """Force buffered appends to durable storage now."""
        self._barrier()

    def close(self) -> None:
        if self._handle.closed:
            return
        self._barrier()
        self._handle.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WalWriter({os.fspath(self._path)!r}, "
            f"appended={self._appended})"
        )
