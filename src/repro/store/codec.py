"""The packed binary record codec shared by the WAL and the wires.

One ``StreamElement``/``TimedEdge`` encodes to one compact byte string
— **format 2**, the payload grammar of WAL format-2 segments
(:mod:`repro.store.wal`) and of the opt-in binary batch payloads on the
serving and replication wires (:mod:`repro.serve.protocol`,
:mod:`repro.cluster.protocol`).  The JSON record grammar of
:meth:`repro.types.StreamElement.to_record` remains format 1; the two
are **losslessly interchangeable** for every element the JSON path
accepts (``tests/store/test_codec_conformance.py`` proves the
differential, ``tests/properties/test_codec_fuzz.py`` fuzzes it).

Element layout (all integers little-endian)::

    element := <flags:u8> <key(u)> <key(v)> [<time:f64>]
    flags   := bit 0: op (1 = insert, 0 = delete)
               bit 1: has time (the element is a TimedEdge)
               bits 2-3: kind of u   bits 4-5: kind of v
               bit 6: reserved, must be 0
               bit 7: JSON escape (see below; all other bits 0)
    key     := kind 0: <i64>                        (common int fast path)
               kind 1: <varint byte-length> <UTF-8 bytes>
               kind 2: <varint byte-length> <signed LE bytes>  (big int)

``varint`` is unsigned LEB128.  A key longer than :data:`MAX_KEY_BYTES`
on the wire is refused at decode (corruption guard); the encoder routes
such records — and any JSON-representable vertex that is not an
``int``/``str`` — through the **JSON escape**: ``flags == 0x80``
followed by the UTF-8 JSON of ``to_record()``.  The escape keeps
format 2 exactly as expressive as format 1; only genuinely
unserialisable records fail.

**Timestamps must be finite.**  ``NaN``/``inf`` times are refused
loudly in *both* directions (:class:`~repro.errors.CodecError`) — a
non-finite window clock is stream corruption, and Python's JSON
encoder would otherwise smuggle it through as a non-standard token.

Batches (the wire unit) concatenate length-prefixed elements so a
decoder can walk a single ``memoryview`` without re-framing::

    batch := <varint count> ( <varint byte-length> <element> )*

>>> from repro.types import insertion, timed_deletion
>>> decode_element(encode_element(insertion("alice", "matrix")))
StreamElement(u='alice', v='matrix', op=<Op.INSERT: '+'>)
>>> payload = encode_element(timed_deletion(3, 7, 2.5))
>>> element = decode_element(payload)
>>> type(element).__name__, element.time, len(payload)
('TimedEdge', 2.5, 25)
>>> batch = encode_batch([insertion(1, 2), timed_deletion(3, 7, 2.5)])
>>> [str(e) for e in decode_batch(batch)]
['(1, 2, +)', '(3, 7, -, t=2.5)']
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, Iterable, List, Sequence, Tuple, Union

from repro.errors import CodecError
from repro.types import Op, StreamElement, TimedEdge

__all__ = [
    "MAX_KEY_BYTES",
    "PACKED_FORMAT",
    "decode_batch",
    "decode_element",
    "encode_batch",
    "encode_element",
]

#: The format number of this packed encoding — the WAL magic's format
#: byte for packed segments and the ``codec`` capability value on the
#: wires.  Format 1 is the JSON record grammar.
PACKED_FORMAT = 2

#: Upper bound on one encoded vertex key (64 KiB).  Longer keys are
#: *encoded* via the JSON escape but *refused at decode* in packed
#: form — a declared key length past this cap is corruption, not data.
MAX_KEY_BYTES = 1 << 16

_FLAG_INSERT = 0x01
_FLAG_TIME = 0x02
_FLAG_ESCAPE = 0x80

_KIND_I64 = 0
_KIND_STR = 1
_KIND_BIG = 2

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

# Fast-path structs: the overwhelmingly common (int64, int64) shapes
# pack/unpack in one C call each.
_S_II = struct.Struct("<Bqq")
_S_IIT = struct.Struct("<Bqqd")
_QQ = struct.Struct("<qq")
_QQD = struct.Struct("<qqd")
_Q = struct.Struct("<q")
_D = struct.Struct("<d")

Buffer = Union[bytes, bytearray, memoryview]


def _pack_varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_varint(buf: Buffer, offset: int, end: int) -> Tuple[int, int]:
    """Decode one LEB128 varint at ``offset``; returns (value, next)."""
    result = 0
    shift = 0
    while True:
        if offset >= end:
            raise CodecError("packed record ends inside a varint")
        byte = buf[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 35:  # > 5 bytes cannot be a sane length
            raise CodecError("packed record varint is too long")


def _encode_key(key: Any) -> Tuple[int, bytes]:
    """``(kind, encoded bytes)`` for one vertex key, or raise KeyError-ish.

    Raises :class:`TypeError` for keys the packed kinds cannot carry —
    the caller falls back to the JSON escape for those.
    """
    if type(key) is int:
        if _I64_MIN <= key <= _I64_MAX:
            return _KIND_I64, _Q.pack(key)
        raw = key.to_bytes(
            key.bit_length() // 8 + 1, "little", signed=True
        )
        if len(raw) > MAX_KEY_BYTES:
            raise TypeError("integer key exceeds the packed key cap")
        return _KIND_BIG, _pack_varint(len(raw)) + raw
    if type(key) is str:
        raw = key.encode("utf-8")
        if len(raw) > MAX_KEY_BYTES:
            raise TypeError("string key exceeds the packed key cap")
        return _KIND_STR, _pack_varint(len(raw)) + raw
    raise TypeError(f"vertex key {key!r} has no packed kind")


def _escape(element: StreamElement) -> bytes:
    """The JSON-escape encoding: 0x80 + UTF-8 ``to_record()`` JSON."""
    try:
        payload = json.dumps(
            element.to_record(), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(
            f"element {element!s} cannot be encoded: vertices must be "
            f"JSON-representable (int/str): {exc}"
        ) from exc
    return bytes((_FLAG_ESCAPE,)) + payload


def encode_element(element: StreamElement) -> bytes:
    """Encode one element as a format-2 packed payload.

    Raises:
        CodecError: for a non-finite (``NaN``/``inf``) timestamp, or a
            vertex key that is not JSON-representable.
    """
    op_bit = _FLAG_INSERT if element.op is Op.INSERT else 0
    u = element.u
    v = element.v
    if isinstance(element, TimedEdge):
        time = element.time
        if not math.isfinite(time):
            raise CodecError(
                f"refusing to encode non-finite timestamp {time!r} "
                f"for element ({u!r}, {v!r})"
            )
        if (
            type(u) is int
            and type(v) is int
            and _I64_MIN <= u <= _I64_MAX
            and _I64_MIN <= v <= _I64_MAX
        ):
            return _S_IIT.pack(op_bit | _FLAG_TIME, u, v, time)
        try:
            u_kind, u_bytes = _encode_key(u)
            v_kind, v_bytes = _encode_key(v)
        except TypeError:
            return _escape(element)
        flags = op_bit | _FLAG_TIME | (u_kind << 2) | (v_kind << 4)
        return (
            bytes((flags,)) + u_bytes + v_bytes + _D.pack(time)
        )
    if (
        type(u) is int
        and type(v) is int
        and _I64_MIN <= u <= _I64_MAX
        and _I64_MIN <= v <= _I64_MAX
    ):
        return _S_II.pack(op_bit, u, v)
    try:
        u_kind, u_bytes = _encode_key(u)
        v_kind, v_bytes = _encode_key(v)
    except TypeError:
        return _escape(element)
    flags = op_bit | (u_kind << 2) | (v_kind << 4)
    return bytes((flags,)) + u_bytes + v_bytes


def _decode_key(
    buf: Buffer, offset: int, end: int, kind: int
) -> Tuple[Any, int]:
    if kind == _KIND_I64:
        if offset + 8 > end:
            raise CodecError("packed record ends inside an int64 key")
        return _Q.unpack_from(buf, offset)[0], offset + 8
    length, offset = _read_varint(buf, offset, end)
    if length > MAX_KEY_BYTES:
        raise CodecError(
            f"packed key declares {length} bytes, over the "
            f"{MAX_KEY_BYTES}-byte cap"
        )
    if offset + length > end:
        raise CodecError("packed record ends inside a key")
    raw = bytes(buf[offset : offset + length])
    offset += length
    if kind == _KIND_STR:
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise CodecError(
                f"packed string key is not valid UTF-8: {exc}"
            ) from exc
    # _KIND_BIG
    if length == 0:
        raise CodecError("packed big-int key is empty")
    return int.from_bytes(raw, "little", signed=True), offset


def decode_element(buf: Buffer) -> StreamElement:
    """Decode one format-2 packed payload back into an element.

    Accepts ``bytes`` or a ``memoryview`` (zero-copy batch walks).
    Every malformation — truncated keys, trailing garbage, reserved
    flag bits, an invalid key kind, a non-finite timestamp — raises
    :class:`~repro.errors.CodecError`; a CRC-valid frame that fails
    here is corruption the checksum missed, never a wrong element.
    """
    end = len(buf)
    if end == 0:
        raise CodecError("packed record is empty")
    flags = buf[0]
    if flags & _FLAG_ESCAPE:
        if flags != _FLAG_ESCAPE:
            raise CodecError(
                f"packed escape byte carries extra flag bits: "
                f"0x{flags:02x}"
            )
        try:
            record = json.loads(bytes(buf[1:end]))
            element = StreamElement.from_record(record)
        except (ValueError, UnicodeDecodeError) as exc:
            raise CodecError(
                f"JSON-escaped record failed to decode: {exc}"
            ) from exc
        if isinstance(element, TimedEdge) and not math.isfinite(
            element.time
        ):
            raise CodecError(
                f"refusing non-finite timestamp {element.time!r}"
            )
        return element
    if flags & 0x40:
        raise CodecError(
            f"packed record sets reserved flag bit: 0x{flags:02x}"
        )
    op = Op.INSERT if flags & _FLAG_INSERT else Op.DELETE
    u_kind = (flags >> 2) & 3
    v_kind = (flags >> 4) & 3
    if flags & _FLAG_TIME:
        if u_kind == _KIND_I64 and v_kind == _KIND_I64:
            if end != 25:
                raise CodecError(
                    f"packed timed int-pair record must be 25 bytes, "
                    f"got {end}"
                )
            u, v, time = _QQD.unpack_from(buf, 1)
        else:
            u, v, time, extra = _decode_keys_and_time(
                buf, end, u_kind, v_kind
            )
            if extra != end:
                raise CodecError(
                    f"packed record carries {end - extra} trailing "
                    "byte(s)"
                )
        if not math.isfinite(time):
            raise CodecError(
                f"refusing non-finite timestamp {time!r}"
            )
        return TimedEdge(u, v, op, time)
    if u_kind == _KIND_I64 and v_kind == _KIND_I64:
        if end != 17:
            raise CodecError(
                f"packed int-pair record must be 17 bytes, got {end}"
            )
        u, v = _QQ.unpack_from(buf, 1)
        return StreamElement(u, v, op)
    if u_kind == 3 or v_kind == 3:
        raise CodecError(f"packed record uses invalid key kind 3")
    u, offset = _decode_key(buf, 1, end, u_kind)
    v, offset = _decode_key(buf, offset, end, v_kind)
    if offset != end:
        raise CodecError(
            f"packed record carries {end - offset} trailing byte(s)"
        )
    return StreamElement(u, v, op)


def _decode_keys_and_time(
    buf: Buffer, end: int, u_kind: int, v_kind: int
) -> Tuple[Any, Any, float, int]:
    if u_kind == 3 or v_kind == 3:
        raise CodecError(f"packed record uses invalid key kind 3")
    u, offset = _decode_key(buf, 1, end, u_kind)
    v, offset = _decode_key(buf, offset, end, v_kind)
    if offset + 8 > end:
        raise CodecError("packed record ends inside its timestamp")
    time = _D.unpack_from(buf, offset)[0]
    return u, v, time, offset + 8


def encode_batch(elements: Iterable[StreamElement]) -> bytes:
    """Encode a batch as ``<varint count> (<varint len> <element>)*``.

    The per-element payloads are byte-identical to WAL format-2 frame
    payloads, so a server holding packed frames can assemble a wire
    batch without re-encoding a single element.
    """
    if not isinstance(elements, Sequence):
        elements = list(elements)
    pieces: List[bytes] = [_pack_varint(len(elements))]
    for element in elements:
        payload = encode_element(element)
        pieces.append(_pack_varint(len(payload)))
        pieces.append(payload)
    return b"".join(pieces)


def decode_batch(buf: Buffer) -> List[StreamElement]:
    """Decode a batch payload; the exact inverse of :func:`encode_batch`.

    Walks one :class:`memoryview` over the buffer — elements are
    decoded in place, no per-element copies or re-framing.  Raises
    :class:`~repro.errors.CodecError` for truncated payloads, count
    mismatches, and trailing bytes.
    """
    view = memoryview(buf)
    end = len(view)
    count, offset = _read_varint(view, 0, end)
    elements: List[StreamElement] = []
    for _ in range(count):
        length, offset = _read_varint(view, offset, end)
        if offset + length > end:
            raise CodecError(
                f"batch payload ends inside element "
                f"{len(elements)} of {count}"
            )
        elements.append(decode_element(view[offset : offset + length]))
        offset += length
    if offset != end:
        raise CodecError(
            f"batch payload carries {end - offset} trailing byte(s) "
            f"after {count} element(s)"
        )
    return elements
