"""``DurableStore``: the on-disk layout of one durable session.

A durable session directory holds three kinds of files::

    meta.json                          the session's estimator spec
    wal-<offset>.log                   WAL segments (repro.store.wal)
    snapshot-<offset>.json             snapshots (repro.store.snapshots)

``<offset>`` is a zero-padded global element offset: a WAL segment's
name is the offset of its **first** record, a snapshot's name is the
number of elements its state covers.  Segments rotate at every durable
checkpoint, so segment bases are exactly the historical checkpoint
offsets (plus the initial 0).

**The recovery contract** (``docs/persistence.md``): opening a
directory after a crash loads the newest loadable snapshot at offset
``S``, truncates the torn tail of the final WAL segment, replays every
intact WAL record with global offset ``>= S``, and the resulting
estimator state is **bit-identical** — estimate *and* complete
``state_to_dict()`` — to a process that ingested the same intact
prefix uninterrupted.  ``tests/store/test_recovery.py`` enforces this
for a kill at every byte of the log.

>>> import tempfile
>>> from repro.types import insertion
>>> store = DurableStore(tempfile.mkdtemp())
>>> store.has_state
False
>>> store.initialize("abacus:budget=64,seed=7")
>>> store.append(insertion("alice", "matrix"))
>>> store.offset
1
>>> store.close()
>>> reopened = DurableStore(store.directory)
>>> recovered = reopened.recover()
>>> recovered.spec, recovered.offset, len(recovered.tail)
('abacus:budget=64,seed=7', 1, 1)
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import StoreError
from repro.faults import fault_point
from repro.store.snapshots import SnapshotStore, _fsync_directory
from repro.store.wal import WalWriter, iter_wal, scan_wal
from repro.types import StreamElement

__all__ = ["DEFAULT_FSYNC_EVERY", "DurableStore", "RecoveredState"]

#: Default WAL fsync batch: one barrier per this many appended records.
DEFAULT_FSYNC_EVERY = 256

#: ``meta.json`` format version.
META_FORMAT = 1

#: Snapshots kept per directory (older ones are pruned at checkpoint,
#: together with the WAL segments only they needed).
KEEP_SNAPSHOTS = 2

_SEGMENT = re.compile(r"^wal-(\d{20})\.log$")


@dataclass(frozen=True)
class RecoveredState:
    """What :meth:`DurableStore.recover` reconstructed.

    Attributes:
        spec: the canonical estimator spec recorded in ``meta.json``.
        snapshot: the newest loadable session snapshot envelope, or
            None when the directory never checkpointed.
        tail: intact WAL records past the snapshot, in stream order —
            the elements to replay.
        offset: the global element offset after replay (snapshot
            offset + ``len(tail)``, or the snapshot offset when the
            log ends before it).
    """

    spec: str
    snapshot: Optional[Dict[str, Any]]
    tail: List[StreamElement] = field(repr=False)
    offset: int = 0


class DurableStore:
    """WAL + snapshots + meta behind one durable session directory.

    The store is deliberately estimator-agnostic: it persists opaque
    snapshot payloads and framed stream elements, and leaves building
    estimators to the session layer (:func:`repro.api.open_session`
    with ``durable_dir=``) so the registry stays the single authority
    on construction.

    Args:
        directory: the session directory (created when missing).
        fsync_every: WAL fsync batch size (see
            :class:`~repro.store.wal.WalWriter`).
        wal_format: payload format for **new** WAL segments (default
            :data:`~repro.store.wal.DEFAULT_WAL_FORMAT`).  Existing
            segments keep the format in their header regardless — a
            directory may mix formats across its segment history, and
            recovery reads all of them.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        wal_format: Optional[int] = None,
    ) -> None:
        self._dir = pathlib.Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._fsync_every = fsync_every
        self._wal_format = wal_format
        self._snapshots = SnapshotStore(self._dir)
        self._writer: Optional[WalWriter] = None
        self._offset = 0
        self._spec: Optional[str] = None
        meta_path = self._dir / "meta.json"
        if meta_path.exists():
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
                self._spec = str(meta["spec"])
            except (OSError, json.JSONDecodeError, KeyError) as exc:
                raise StoreError(
                    f"unreadable durable-store meta {meta_path}: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> pathlib.Path:
        return self._dir

    @property
    def has_state(self) -> bool:
        """Whether the directory already belongs to a durable session."""
        return self._spec is not None

    @property
    def spec(self) -> Optional[str]:
        """The canonical spec string recorded at initialization."""
        return self._spec

    @property
    def offset(self) -> int:
        """Global element offset of the next WAL append."""
        return self._offset

    @property
    def snapshots(self) -> SnapshotStore:
        return self._snapshots

    def segments(self) -> Tuple[Tuple[int, pathlib.Path], ...]:
        """WAL segments as ``(base_offset, path)``, ascending."""
        found = []
        for entry in self._dir.iterdir():
            match = _SEGMENT.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return tuple(sorted(found))

    def _segment_path(self, base: int) -> pathlib.Path:
        return self._dir / f"wal-{base:020d}.log"

    def oldest_offset(self) -> int:
        """The oldest global element offset the WAL still covers.

        Elements below it were pruned at a checkpoint and can only be
        reconstructed from a snapshot — replication catch-up uses this
        as its start-offset negotiation floor.
        """
        segments = self.segments()
        return segments[0][0] if segments else self._offset

    def read_records(
        self, start: int, end: int
    ) -> Iterator[StreamElement]:
        """Yield the logged elements with global offsets in [start, end).

        This is the WAL as a **replication log**: the primary of
        :mod:`repro.cluster.primary` ships follower catch-up batches
        straight from these frames.  Callers are responsible for
        bounding ``end`` at an offset that is already synced to the
        file (``sync()`` first); ``start`` below :meth:`oldest_offset`
        raises — those records are gone, bootstrap from a snapshot.
        """
        if start < 0 or end < start:
            raise StoreError(
                f"invalid WAL read range [{start}, {end})"
            )
        if start == end:
            return
        segments = self.segments()
        if not segments or start < segments[0][0]:
            raise StoreError(
                f"WAL records from offset {start} were pruned "
                f"(oldest available: {self.oldest_offset()}); "
                "catch up from a snapshot instead"
            )
        for base, path in segments:
            if base >= end:
                break
            for index, element in enumerate(iter_wal(path)):
                offset = base + index
                if offset >= end:
                    break
                if offset >= start:
                    yield element

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize(self, spec: str) -> None:
        """Claim an empty directory for ``spec`` and open the log.

        Writes ``meta.json`` atomically, then opens the first WAL
        segment at offset 0.  Raises when the directory already has a
        meta (reopen with :meth:`recover` instead).
        """
        if self._spec is not None:
            raise StoreError(
                f"{self._dir} already holds a durable session "
                f"(spec {self._spec!r}); recover it instead"
            )
        meta_path = self._dir / "meta.json"
        temporary = meta_path.with_name(".tmp-meta.json")
        payload = {"format": META_FORMAT, "spec": spec}
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, meta_path)
        _fsync_directory(self._dir)
        self._spec = spec
        self._attach_writer(0)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Reconstruct the session: snapshot + intact WAL tail.

        Truncates the torn tail of the final segment (so the writer
        can append at a clean boundary), verifies that the surviving
        segments cover the stream contiguously from the snapshot
        offset, and opens the log for appending at the recovered
        offset.
        """
        if self._spec is None:
            raise StoreError(
                f"{self._dir} has no durable session to recover "
                "(missing meta.json); initialize it instead"
            )
        latest = self._snapshots.latest()
        snapshot_offset = latest[0] if latest else 0
        payload = latest[1] if latest else None
        segments = self.segments()
        scans = []
        for index, (base, path) in enumerate(segments):
            scan = scan_wal(path)
            if not scan.clean:
                if index != len(segments) - 1:
                    raise StoreError(
                        f"WAL segment {path.name} is corrupt in the "
                        "middle of the log (only the final segment "
                        "may be torn)"
                    )
                with open(path, "r+b") as handle:
                    handle.truncate(scan.valid_bytes)
            scans.append((base, path, scan.records))
        tail: List[StreamElement] = []
        end = snapshot_offset
        if scans:
            if scans[0][0] > snapshot_offset:
                raise StoreError(
                    f"WAL starts at offset {scans[0][0]} but the "
                    f"newest snapshot covers only {snapshot_offset} "
                    "elements; the log has a gap"
                )
            expected = scans[0][0]
            for base, path, records in scans:
                if base != expected:
                    raise StoreError(
                        f"WAL gap: segment {path.name} starts at "
                        f"{base}, expected {expected}"
                    )
                for index, element in enumerate(iter_wal(path)):
                    if base + index >= snapshot_offset:
                        tail.append(element)
                expected = base + records
            end = max(expected, snapshot_offset)
            self._attach_writer(end, wal_end=expected)
        else:
            self._attach_writer(end)
        self._offset = end
        return RecoveredState(
            spec=self._spec,
            snapshot=payload,
            tail=tail,
            offset=end,
        )

    def _attach_writer(
        self, offset: int, wal_end: Optional[int] = None
    ) -> None:
        """Open the WAL for appending records starting at ``offset``.

        ``wal_end`` is the log's known end offset when the caller just
        scanned it (recovery); omitted, the final segment is scanned
        here.
        """
        if self._writer is not None:
            self._writer.close()
        segments = self.segments()
        if segments and wal_end is None:
            base, path = segments[-1]
            wal_end = base + scan_wal(path).records
        if not segments:
            wal_end = None
        if wal_end == offset:
            target = segments[-1][1]
        else:
            if wal_end is not None and offset < wal_end:
                raise StoreError(
                    f"cannot append at offset {offset}: the WAL "
                    f"already extends to {wal_end}"
                )
            if wal_end is not None:
                # Snapshot ran ahead of a pruned/lost log tail; the
                # old segments are fully covered by it and a fresh
                # segment must restart the contiguous numbering.
                for _, path in segments:
                    path.unlink(missing_ok=True)
            target = self._segment_path(offset)
        self._writer = WalWriter(
            target,
            fsync_every=self._fsync_every,
            format=self._wal_format,
        )
        self._offset = offset

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------
    def _require_writer(self) -> WalWriter:
        if self._writer is None:
            raise StoreError(
                "durable store is not open for writing; call "
                "initialize() or recover() first"
            )
        return self._writer

    def append(self, element: StreamElement) -> None:
        """Log one element ahead of processing it."""
        self._require_writer().append(element)
        self._offset += 1

    def append_batch(self, elements: Sequence[StreamElement]) -> int:
        """Log a contiguous run of elements; returns the count."""
        count = self._require_writer().append_batch(elements)
        self._offset += count
        return count

    def mark(self) -> Tuple[int, int]:
        """An undo point ``(byte_position, element_offset)``.

        Take one before appending elements whose processing may still
        be refused; :meth:`rollback` then removes the refused records
        so the log only ever contains *ingested* elements and
        checkpoint offsets stay aligned.
        """
        return (self._require_writer().position(), self._offset)

    def rollback(self, mark: Tuple[int, int]) -> None:
        """Undo every append since ``mark`` (see :meth:`mark`)."""
        position, offset = mark
        self._require_writer().truncate_to(
            position, self._offset - offset
        )
        self._offset = offset

    def sync(self) -> None:
        """Force every logged element to durable storage."""
        self._require_writer().sync()

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(
        self,
        payload: Dict[str, Any],
        offset: int,
        *,
        keep: int = KEEP_SNAPSHOTS,
    ) -> pathlib.Path:
        """Write a durable snapshot at ``offset`` and rotate the log.

        Order matters for crash safety: the WAL is synced first (the
        snapshot must never be *ahead* of durable log coverage), the
        snapshot is written atomically, and only then does the log
        rotate to a fresh segment based at ``offset``.  Old snapshots
        beyond ``keep`` — and the WAL segments only they needed — are
        pruned last; a crash anywhere in between leaves a directory
        that recovers to exactly the checkpointed state.
        """
        writer = self._require_writer()
        if offset != self._offset:
            raise StoreError(
                f"checkpoint offset {offset} does not match the "
                f"logged element count {self._offset}"
            )
        writer.sync()
        fault_point("checkpoint.synced")
        path = self._snapshots.save(payload, offset)
        fault_point("checkpoint.snapshotted")
        writer.close()
        self._writer = WalWriter(
            self._segment_path(offset),
            fsync_every=self._fsync_every,
            format=self._wal_format,
        )
        fault_point("checkpoint.rotated")
        kept = self._snapshots.offsets()[-keep:]
        self._snapshots.prune(keep=keep)
        self._prune_segments(min(kept))
        return path

    def _prune_segments(self, min_offset: int) -> List[pathlib.Path]:
        """Delete segments that end at or before ``min_offset``.

        A segment's end is the next segment's base (bases are the
        historical checkpoint offsets), so every segment except the
        last is prunable exactly when its successor's base is at or
        below the oldest offset recovery may still need.
        """
        segments = self.segments()
        doomed = []
        for (base, path), (next_base, _) in zip(segments, segments[1:]):
            if next_base <= min_offset:
                doomed.append(path)
        for path in doomed:
            path.unlink(missing_ok=True)
        return doomed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Sync and close the log (the store may be reopened later)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableStore({str(self._dir)!r}, offset={self._offset}, "
            f"spec={self._spec!r})"
        )
