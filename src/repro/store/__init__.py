"""Durable persistence for estimator sessions.

Everything an estimate needs to survive a process death lives here:

* :mod:`repro.store.wal` — a CRC-framed, fsync-batched **write-ahead
  log** of stream elements (:class:`WalWriter`, :func:`iter_wal`,
  :func:`scan_wal`).  Every element a durable session ingests is
  framed and appended *before* the estimator processes it.
* :mod:`repro.store.codec` — the **packed binary record codec**
  (format 2): the payload grammar of new WAL segments and of the
  opt-in binary batch payloads on the serve and replication wires
  (:func:`encode_element`, :func:`decode_element`,
  :func:`encode_batch`, :func:`decode_batch`).  Format-1 JSON
  segments stay readable forever; ``tests/store/wire_corpus/`` pins
  both grammars byte-for-byte.
* :mod:`repro.store.snapshots` — a :class:`SnapshotStore` of durable
  session snapshots (the :meth:`repro.api.session.Session.snapshot`
  JSON envelope), written atomically (tmp + fsync + rename).
* :mod:`repro.store.durable` — :class:`DurableStore`, the directory
  layout that ties both together, and the **recovery contract**: load
  the latest snapshot, replay the WAL tail, and land **bit-identical**
  to the uninterrupted run (``docs/persistence.md``; enforced
  kill-at-every-byte by ``tests/store/test_recovery.py``).

The user-facing entry point is
``open_session(spec, durable_dir=...)`` — see
:mod:`repro.api.session`; this package is the machinery underneath.
"""

from repro.store.codec import (
    MAX_KEY_BYTES,
    PACKED_FORMAT,
    decode_batch,
    decode_element,
    encode_batch,
    encode_element,
)
from repro.store.durable import (
    DEFAULT_FSYNC_EVERY,
    DurableStore,
    RecoveredState,
)
from repro.store.snapshots import SnapshotStore
from repro.store.wal import (
    DEFAULT_WAL_FORMAT,
    WalScan,
    WalWriter,
    iter_wal,
    scan_wal,
    wal_magic,
)

__all__ = [
    "DEFAULT_FSYNC_EVERY",
    "DEFAULT_WAL_FORMAT",
    "DurableStore",
    "MAX_KEY_BYTES",
    "PACKED_FORMAT",
    "RecoveredState",
    "SnapshotStore",
    "WalScan",
    "WalWriter",
    "decode_batch",
    "decode_element",
    "encode_batch",
    "encode_element",
    "iter_wal",
    "scan_wal",
    "wal_magic",
]
