"""Durable persistence for estimator sessions.

Everything an estimate needs to survive a process death lives here:

* :mod:`repro.store.wal` — a CRC-framed, fsync-batched **write-ahead
  log** of stream elements (:class:`WalWriter`, :func:`iter_wal`,
  :func:`scan_wal`).  Every element a durable session ingests is
  framed and appended *before* the estimator processes it.
* :mod:`repro.store.snapshots` — a :class:`SnapshotStore` of durable
  session snapshots (the :meth:`repro.api.session.Session.snapshot`
  JSON envelope), written atomically (tmp + fsync + rename).
* :mod:`repro.store.durable` — :class:`DurableStore`, the directory
  layout that ties both together, and the **recovery contract**: load
  the latest snapshot, replay the WAL tail, and land **bit-identical**
  to the uninterrupted run (``docs/persistence.md``; enforced
  kill-at-every-byte by ``tests/store/test_recovery.py``).

The user-facing entry point is
``open_session(spec, durable_dir=...)`` — see
:mod:`repro.api.session`; this package is the machinery underneath.
"""

from repro.store.durable import (
    DEFAULT_FSYNC_EVERY,
    DurableStore,
    RecoveredState,
)
from repro.store.snapshots import SnapshotStore
from repro.store.wal import WalScan, WalWriter, iter_wal, scan_wal

__all__ = [
    "DEFAULT_FSYNC_EVERY",
    "DurableStore",
    "RecoveredState",
    "SnapshotStore",
    "WalScan",
    "WalWriter",
    "iter_wal",
    "scan_wal",
]
