"""Extension experiments beyond the paper's Table II / Figures 3-10.

Four additional studies round out the evaluation:

* :func:`run_variance_bound` — empirical variance of ABACUS against the
  Theorem 2 closed-form upper bound, per memory budget.
* :func:`run_ensemble` — variance reduction from averaging independent
  replicas, in both the extra-memory and shared-memory accountings.
* :func:`run_anomaly_quality` — the Section I motivation measured:
  precision/recall/F1 of butterfly-burst detection with ABACUS versus
  the insert-only baselines as the deletion ratio grows.
* :func:`run_triangle_lineage` — the Section VII-A lineage measured:
  ThinkD (count-every-edge) versus TRIEST-FD (count-on-transition) on
  identical fully dynamic triangle streams.

Like :mod:`repro.experiments.figures`, every function returns a dict
with a rendered ``text`` report plus the structured numbers, so the
benchmarks and the CLI share one implementation.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence

from repro.api.registry import EstimatorSpec, build_estimator
from repro.apps.anomaly_quality import (
    compare_estimators,
    planted_anomaly_stream,
)
from repro.core.probabilities import variance_upper_bound
from repro.experiments.report import render_table
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_chung_lu, bipartite_erdos_renyi
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.triangles.generators import barabasi_albert_graph
from repro.triangles.graph import UndirectedGraph
from repro.triangles.exact import count_triangles
from repro.triangles.thinkd import ThinkD
from repro.triangles.triest import TriestFD


def _estimator(name: str, **params):
    """Build a registered estimator from keyword params."""
    return build_estimator(EstimatorSpec(name, params))


def _sample_stats(values: Sequence[float]) -> Dict[str, float]:
    n = len(values)
    mean = sum(values) / n
    variance = (
        sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    )
    return {"mean": mean, "variance": variance, "se": math.sqrt(variance / n)}


# ---------------------------------------------------------------------------
# Theorem 2: empirical variance vs the closed-form upper bound
# ---------------------------------------------------------------------------
def run_variance_bound(
    budgets: Sequence[int] = (100, 200, 400),
    trials: int = 150,
    n_left: int = 60,
    n_right: int = 40,
    n_edges: int = 700,
    seed: int = 20,
) -> Dict:
    """Empirical Var[c] per budget against the Theorem 2 upper bound.

    Insert-only workload (the bound's ``|E|`` is the live edge count at
    the end of the stream, which insert-only keeps unambiguous).

    Returns:
        dict with per-budget rows ``(k, empirical, bound, ratio)`` and
        the rendered report; every ratio must be <= 1 within sampling
        slack for Theorem 2 to hold.
    """
    edges = bipartite_erdos_renyi(
        n_left, n_right, n_edges, random.Random(seed)
    )
    stream = stream_from_edges(edges)
    truth = ground_truth_final_count(stream)
    rows: List[tuple] = []
    series = {}
    for budget in budgets:
        estimates = [
            _estimator(
                "abacus", budget=budget, seed=seed + 1000 + t
            ).process_stream(stream)
            for t in range(trials)
        ]
        stats = _sample_stats(estimates)
        bound = variance_upper_bound(float(truth), len(edges), budget)
        ratio = stats["variance"] / bound if bound > 0 else 0.0
        series[budget] = {
            "empirical": stats["variance"],
            "bound": bound,
            "ratio": ratio,
            "mean": stats["mean"],
        }
        rows.append((budget, stats["variance"], bound, ratio))
    text = render_table(
        ("k", "empirical Var", "Theorem-2 bound", "ratio"),
        rows,
        title=(
            f"Variance bound check (truth={truth}, |E|={len(edges)}, "
            f"{trials} trials)"
        ),
    )
    return {"text": text, "truth": truth, "series": series}


# ---------------------------------------------------------------------------
# Ensembles: variance reduction vs memory accounting
# ---------------------------------------------------------------------------
def run_ensemble(
    replicas: int = 4,
    budget: int = 80,
    trials: int = 60,
    alpha: float = 0.2,
    seed: int = 30,
) -> Dict:
    """RMSE of a single instance vs two ensemble accountings.

    Configurations (all unbiased):

    * ``single`` — one ABACUS with budget ``k``.
    * ``ensemble-extra`` — ``r`` replicas, *each* with budget ``k``
      (memory ``r * k``); expected RMSE reduction ``~sqrt(r)``.
    * ``ensemble-shared`` — ``r`` replicas sharing budget ``k`` (memory
      ``~k``); Theorem 2's superlinear variance in ``1/k`` predicts
      this *loses* to the single instance.
    """
    rng = random.Random(seed)
    edges = bipartite_erdos_renyi(40, 40, 420, rng)
    stream = make_fully_dynamic(edges, alpha, random.Random(seed + 1))
    truth = ground_truth_final_count(stream)

    def rmse(values: Sequence[float]) -> float:
        return math.sqrt(
            sum((v - truth) ** 2 for v in values) / len(values)
        )

    singles = [
        _estimator(
            "abacus", budget=budget, seed=seed + 100 + t
        ).process_stream(stream)
        for t in range(trials)
    ]
    extra = [
        _estimator(
            "ensemble", replicas=replicas, budget=budget, seed=seed + 300 + t
        ).process_stream(stream)
        for t in range(trials)
    ]
    shared = [
        _estimator(
            "ensemble",
            replicas=replicas,
            budget=budget,
            share_budget=True,
            seed=seed + 500 + t,
        ).process_stream(stream)
        for t in range(trials)
    ]
    results = {
        "single": {"rmse": rmse(singles), "memory": budget},
        "ensemble-extra": {
            "rmse": rmse(extra),
            "memory": replicas * budget,
        },
        "ensemble-shared": {"rmse": rmse(shared), "memory": budget},
    }
    rows = [
        (name, info["memory"], info["rmse"])
        for name, info in results.items()
    ]
    text = render_table(
        ("configuration", "memory (edges)", "RMSE"),
        rows,
        title=(
            f"Ensemble ablation (r={replicas}, k={budget}, "
            f"truth={truth}, {trials} trials, alpha={alpha})"
        ),
    )
    return {"text": text, "truth": truth, "results": results}


# ---------------------------------------------------------------------------
# Section I motivation: anomaly-detection quality under deletions
# ---------------------------------------------------------------------------
def run_anomaly_quality(
    alphas: Sequence[float] = (0.0, 0.2, 0.3),
    budget: int = 2000,
    window: int = 500,
    bomb_windows: Sequence[int] = (5, 9, 13),
    bomb_size: tuple = (14, 14),
    n_edges: int = 8000,
    seed: int = 40,
) -> Dict:
    """Precision/recall/F1 of burst detection per estimator and alpha.

    A sparse organic background with planted butterfly bombs; the same
    stream is replayed through ABACUS, FLEET, and CAS (plus the exact
    oracle as a ceiling) and their alerts scored against the planted
    windows.
    """
    background = bipartite_chung_lu(
        3000, 3000, n_edges, rng=random.Random(seed)
    )
    rows: List[tuple] = []
    results: Dict[float, Dict] = {}
    for alpha in alphas:
        stream, truths = planted_anomaly_stream(
            background,
            bomb_windows=list(bomb_windows),
            window=window,
            bomb_size=bomb_size,
            alpha=alpha,
            rng=random.Random(seed + 1),
        )
        qualities = compare_estimators(
            stream,
            truths,
            {
                "Abacus": lambda: _estimator(
                    "abacus", budget=budget, seed=seed + 2
                ),
                "FLEET": lambda: _estimator(
                    "fleet", budget=budget, seed=seed + 2
                ),
                "CAS": lambda: _estimator(
                    "cas", budget=budget, seed=seed + 2
                ),
            },
            window=window,
        )
        results[alpha] = qualities
        for name, q in qualities.items():
            rows.append(
                (f"{alpha:.0%}", name, q.precision, q.recall, q.f1)
            )
    text = render_table(
        ("alpha", "estimator", "precision", "recall", "F1"),
        rows,
        title=(
            f"Anomaly-detection quality (k={budget}, window={window}, "
            f"{len(bomb_windows)} planted bombs of {bomb_size})"
        ),
    )
    return {"text": text, "results": results}


# ---------------------------------------------------------------------------
# Section VII-A lineage: ThinkD vs TRIEST-FD
# ---------------------------------------------------------------------------
def run_triangle_lineage(
    budget: int = 80,
    trials: int = 100,
    alpha: float = 0.2,
    seed: int = 50,
) -> Dict:
    """Eager vs lazy triangle estimation on one fully dynamic stream.

    Reports mean relative error, empirical variance, and total
    intersection work for ThinkD and TRIEST-FD — the trade ABACUS's
    count-every-edge design is built on.
    """
    edges = barabasi_albert_graph(60, 4, random.Random(seed))
    stream = make_fully_dynamic(edges, alpha, random.Random(seed + 1))
    graph = UndirectedGraph()
    for element in stream:
        if element.is_insertion:
            graph.add_edge(element.u, element.v)
        else:
            graph.remove_edge(element.u, element.v)
    truth = count_triangles(graph)

    def measure(factory) -> Dict[str, float]:
        estimates: List[float] = []
        work = 0
        for t in range(trials):
            estimator = factory(seed + 100 + t)
            estimates.append(estimator.process_stream(stream))
            work += estimator.total_work
        stats = _sample_stats(estimates)
        return {
            "mean_error": abs(stats["mean"] - truth) / truth,
            "variance": stats["variance"],
            "mean_work": work / trials,
        }

    results = {
        "ThinkD": measure(lambda s: ThinkD(budget, seed=s)),
        "TriestFD": measure(lambda s: TriestFD(budget, seed=s)),
    }
    rows = [
        (
            name,
            info["mean_error"],
            info["variance"],
            info["mean_work"],
        )
        for name, info in results.items()
    ]
    text = render_table(
        ("estimator", "mean rel. error", "variance", "mean work"),
        rows,
        title=(
            f"Triangle lineage: eager vs lazy (k={budget}, "
            f"truth={truth}, alpha={alpha}, {trials} trials)"
        ),
    )
    return {"text": text, "truth": truth, "results": results}
