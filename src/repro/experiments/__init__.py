"""Experiment harness reproducing the paper's evaluation (Section VI)."""

from repro.experiments.datasets import (
    DATASETS,
    DatasetSpec,
    get_dataset,
    list_datasets,
)
from repro.experiments.runner import (
    ExperimentContext,
    ground_truth_final_count,
    make_estimator,
)
from repro.experiments.plotting import bar_chart, histogram, line_chart
from repro.experiments.report import render_series, render_table

__all__ = [
    "bar_chart",
    "histogram",
    "line_chart",
    "DATASETS",
    "DatasetSpec",
    "get_dataset",
    "list_datasets",
    "ExperimentContext",
    "ground_truth_final_count",
    "make_estimator",
    "render_table",
    "render_series",
]
