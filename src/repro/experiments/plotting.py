"""Dependency-free ASCII charts for the experiment harness.

The benchmarks print the rows/series behind every figure in the paper;
for quick visual inspection in a terminal the CLI can additionally
*draw* them.  Two chart types cover all of the paper's figures:

* :func:`line_chart` — multi-series line/scatter plots (Figs. 3-9):
  each series is plotted with its own glyph on a shared canvas with
  axis labels and a legend.
* :func:`bar_chart` — horizontal bars (Fig. 10's per-thread workload).

Everything renders to a plain ``str``; no terminal control codes, so
output is safe to pipe into files and diffs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: Glyph cycle for up to six overlaid series.
_GLYPHS = "*o+x#@"


def _format_number(value: float) -> str:
    """Compact axis-label formatting (trims trailing zeros)."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1_000_000:
        return f"{value / 1_000_000:.3g}M"
    if magnitude >= 10_000:
        return f"{value / 1_000:.3g}K"
    if magnitude >= 1:
        return f"{value:.4g}"
    return f"{value:.3g}"


def _scale(
    value: float, low: float, high: float, cells: int
) -> int:
    """Map ``value`` in ``[low, high]`` to a cell index ``[0, cells-1]``."""
    if high <= low:
        return 0
    ratio = (value - low) / (high - low)
    return min(cells - 1, max(0, round(ratio * (cells - 1))))


def line_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
    y_min: Optional[float] = None,
) -> str:
    """Render named ``(xs, ys)`` series onto one ASCII canvas.

    Args:
        series: mapping from series name to its x and y vectors (equal
            lengths, at least one point overall).
        width / height: canvas size in characters (excluding axes).
        title: optional heading line.
        x_label / y_label: axis captions.
        y_min: force the y-axis floor (default: data minimum; pass 0.0
            for error/throughput plots so bars are comparable).

    Returns:
        The chart as a multi-line string.
    """
    if not series:
        raise ExperimentError("line_chart needs at least one series")
    if len(series) > len(_GLYPHS):
        raise ExperimentError(
            f"at most {len(_GLYPHS)} series supported, got {len(series)}"
        )
    if width < 8 or height < 4:
        raise ExperimentError("canvas too small (min 8x4)")
    all_x: List[float] = []
    all_y: List[float] = []
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ExperimentError(
                f"series {name!r}: x and y lengths differ "
                f"({len(xs)} vs {len(ys)})"
            )
        all_x.extend(xs)
        all_y.extend(ys)
    if not all_x:
        raise ExperimentError("line_chart needs at least one point")
    x_low, x_high = min(all_x), max(all_x)
    y_low = min(all_y) if y_min is None else y_min
    y_high = max(max(all_y), y_low)

    canvas = [[" "] * width for _ in range(height)]
    for glyph, (name, (xs, ys)) in zip(_GLYPHS, series.items()):
        for x, y in zip(xs, ys):
            col = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            canvas[row][col] = glyph

    margin = max(
        len(_format_number(y_high)), len(_format_number(y_low))
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(canvas):
        if i == 0:
            label = _format_number(y_high)
        elif i == height - 1:
            label = _format_number(y_low)
        else:
            label = ""
        lines.append(f"{label.rjust(margin)} |{''.join(row)}")
    lines.append(f"{' ' * margin} +{'-' * width}")
    x_left = _format_number(x_low)
    x_right = _format_number(x_high)
    gap = width - len(x_left) - len(x_right)
    lines.append(
        f"{' ' * margin}  {x_left}{' ' * max(1, gap)}{x_right}"
    )
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, series)
    )
    lines.append(f"{' ' * margin}  {x_label}  [{y_label}]  {legend}")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart (one row per label).

    Bars are scaled to the maximum value; each row shows the label, the
    bar, and the numeric value.

    Example:
        >>> print(bar_chart(["t0", "t1"], [10, 5], width=10))
        t0 | ########## 10
        t1 | #####      5
    """
    if len(labels) != len(values):
        raise ExperimentError(
            f"labels and values lengths differ "
            f"({len(labels)} vs {len(values)})"
        )
    if not labels:
        raise ExperimentError("bar_chart needs at least one bar")
    if any(v < 0 for v in values):
        raise ExperimentError("bar_chart values must be non-negative")
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        cells = 0 if peak == 0 else round(width * value / peak)
        bar = "#" * cells
        rendered = _format_number(value)
        if unit:
            rendered = f"{rendered} {unit}"
        lines.append(
            f"{label.ljust(label_width)} | {bar.ljust(width)} {rendered}"
        )
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 48,
    title: Optional[str] = None,
) -> str:
    """Equal-width histogram rendered with :func:`bar_chart`.

    Useful for eyeballing estimate distributions across trials (the
    unbiasedness benchmarks print one).
    """
    if not values:
        raise ExperimentError("histogram needs at least one value")
    if bins < 1:
        raise ExperimentError(f"bins must be positive, got {bins}")
    low, high = min(values), max(values)
    if high == low:
        return bar_chart([_format_number(low)], [len(values)],
                         width=width, title=title)
    span = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span))
        counts[index] += 1
    labels = [
        f"[{_format_number(low + i * span)}, "
        f"{_format_number(low + (i + 1) * span)})"
        for i in range(bins)
    ]
    return bar_chart(labels, counts, width=width, title=title)
