"""Per-figure experiment definitions (Table II and Figures 3-10).

Each ``run_*`` function executes one of the paper's experiments on the
scaled synthetic analogues and returns a result dict with a rendered
``text`` report plus the structured series, so benchmarks, the CLI, and
EXPERIMENTS.md generation all share one implementation.

Runtime is controlled by two knobs every function accepts:

* ``trials`` — independent repetitions (paper: 10);
* ``datasets`` — subset of registry names (paper: all four).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.api.registry import EstimatorSpec, build_estimator
from repro.core.base import ButterflyEstimator
from repro.errors import ExperimentError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import butterfly_density, count_butterflies
from repro.metrics.throughput import Stopwatch
from repro.metrics.workload import workload_balance
from repro.experiments.datasets import DATASETS, get_dataset
from repro.experiments.report import render_series, render_table
from repro.experiments.runner import ExperimentContext

DEFAULT_ALPHA = 0.2
SIZE_LABELS = ("small", "mid", "large")  # stand-ins for 75K/150K/300K


def _estimator(name: str, **params) -> ButterflyEstimator:
    """Build a registered estimator from keyword params (figures idiom)."""
    return build_estimator(EstimatorSpec(name, params))


def _dataset_names(datasets: Optional[Iterable[str]]) -> List[str]:
    names = list(datasets) if datasets is not None else list(DATASETS)
    for name in names:
        get_dataset(name)  # validate early
    return names


# ---------------------------------------------------------------------------
# Table II — dataset statistics
# ---------------------------------------------------------------------------
def run_table2(datasets: Optional[Iterable[str]] = None) -> Dict:
    """|E|, |L|, |R|, exact butterflies, and butterfly density."""
    rows = []
    stats = {}
    for name in _dataset_names(datasets):
        spec = get_dataset(name)
        graph = BipartiteGraph(spec.edges())
        butterflies = count_butterflies(graph)
        density = butterfly_density(graph, butterflies)
        stats[name] = {
            "edges": graph.num_edges,
            "left": graph.num_left,
            "right": graph.num_right,
            "butterflies": butterflies,
            "density": density,
        }
        rows.append(
            (
                spec.paper_name,
                graph.num_edges,
                graph.num_left,
                graph.num_right,
                butterflies,
                f"{density:.3g}",
            )
        )
    text = render_table(
        ["Graph", "|E|", "|L|", "|R|", "Butterflies", "Butterfly Density"],
        rows,
        title="Table II (scaled analogues): dataset statistics",
    )
    return {"title": "table2", "text": text, "stats": stats}


# ---------------------------------------------------------------------------
# Figures 3 & 5 — accuracy vs sample size (alpha = 20% / 0%)
# ---------------------------------------------------------------------------
def run_accuracy_vs_sample_size(
    alpha: float = DEFAULT_ALPHA,
    trials: int = 5,
    datasets: Optional[Iterable[str]] = None,
    methods: Sequence[str] = ("abacus", "fleet", "cas"),
    context: Optional[ExperimentContext] = None,
) -> Dict:
    """Relative error of each method while varying the sample size.

    ``alpha=0.2`` reproduces Figure 3; ``alpha=0.0`` reproduces
    Figure 5.  Also derives the headline "ABACUS is N x more accurate"
    ratios of Section VI-B.
    """
    ctx = context or ExperimentContext()
    results: Dict[str, Dict] = {}
    blocks: List[str] = []
    for name in _dataset_names(datasets):
        spec = get_dataset(name)
        per_method: Dict[str, List[float]] = {m: [] for m in methods}
        for budget in spec.sample_sizes:
            for method in methods:
                summary = ctx.accuracy(
                    spec, method, budget, alpha, trials
                )
                per_method[method].append(summary.mean)
        results[name] = {
            "sample_sizes": list(spec.sample_sizes),
            "errors": per_method,
        }
        series = {
            m.upper(): [e * 100.0 for e in errs]
            for m, errs in per_method.items()
        }
        blocks.append(
            render_series(
                "k (edges)",
                list(spec.sample_sizes),
                series,
                title=(
                    f"{spec.paper_name}: relative error (%) at "
                    f"alpha={alpha:.0%}, trials={trials}"
                ),
                y_format="{:.2f}",
            )
        )
        improvements = _improvement_lines(per_method, methods)
        if improvements:
            blocks.append(improvements)
    figure = "Figure 3" if alpha > 0 else "Figure 5"
    text = f"== {figure}: accuracy vs sample size (alpha={alpha:.0%}) ==\n"
    text += "\n\n".join(blocks)
    return {"title": figure, "text": text, "results": results}


def _improvement_lines(
    per_method: Dict[str, List[float]], methods: Sequence[str]
) -> str:
    """'ABACUS is X-Y x more accurate than <baseline>' summary lines."""
    if "abacus" not in per_method:
        return ""
    abacus_errors = per_method["abacus"]
    lines = []
    for method in methods:
        if method == "abacus":
            continue
        ratios = [
            other / max(ours, 1e-12)
            for ours, other in zip(abacus_errors, per_method[method])
        ]
        lines.append(
            f"  ABACUS vs {method.upper()}: "
            f"{min(ratios):.1f}x - {max(ratios):.1f}x more accurate"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 4 — throughput vs sample size
# ---------------------------------------------------------------------------
def run_throughput_vs_sample_size(
    alpha: float = DEFAULT_ALPHA,
    datasets: Optional[Iterable[str]] = None,
    batch_size: int = 500,
    num_threads: int = 40,
    context: Optional[ExperimentContext] = None,
) -> Dict:
    """Throughput (K elements/s) of every method while varying k.

    Matches Figure 4's five bars: PARABACUS (Ins+Del), ABACUS (Ins+Del),
    ABACUS (Ins-only), FLEET (Ins-only), CAS (Ins-only).  PARABACUS
    additionally reports its work-model throughput (DESIGN.md
    substitution #2) since CPython threads serialise the real clock.
    """
    ctx = context or ExperimentContext()
    results: Dict[str, Dict] = {}
    blocks: List[str] = []
    for name in _dataset_names(datasets):
        spec = get_dataset(name)
        columns = {
            "Parabacus (Ins+Del)": [],
            "Parabacus modeled": [],
            "Abacus (Ins+Del)": [],
            "Abacus (Ins-only)": [],
            "FLEET (Ins-only)": [],
            "CAS (Ins-only)": [],
        }
        for budget in spec.sample_sizes:
            abacus_full = ctx.throughput(spec, "abacus", budget, alpha)
            columns["Abacus (Ins+Del)"].append(abacus_full / 1000.0)
            columns["Abacus (Ins-only)"].append(
                ctx.throughput(
                    spec, "abacus", budget, alpha, insertions_only=True
                )
                / 1000.0
            )
            columns["FLEET (Ins-only)"].append(
                ctx.throughput(spec, "fleet", budget, alpha) / 1000.0
            )
            columns["CAS (Ins-only)"].append(
                ctx.throughput(spec, "cas", budget, alpha) / 1000.0
            )
            para_eps, para_model = _parabacus_throughput(
                ctx, spec, budget, alpha, batch_size, num_threads
            )
            columns["Parabacus (Ins+Del)"].append(para_eps / 1000.0)
            columns["Parabacus modeled"].append(para_model / 1000.0)
        results[name] = {
            "sample_sizes": list(spec.sample_sizes),
            "throughput_keps": columns,
        }
        blocks.append(
            render_series(
                "k (edges)",
                list(spec.sample_sizes),
                columns,
                title=(
                    f"{spec.paper_name}: throughput (K edges/s), "
                    f"alpha={alpha:.0%}"
                ),
                y_format="{:.1f}",
            )
        )
    text = "== Figure 4: throughput vs sample size ==\n" + "\n\n".join(blocks)
    return {"title": "Figure 4", "text": text, "results": results}


def _parabacus_throughput(
    ctx: ExperimentContext,
    spec,
    budget: int,
    alpha: float,
    batch_size: int,
    num_threads: int,
) -> tuple:
    """(wall-clock eps, work-model eps) for PARABACUS."""
    stream = ctx.stream(spec, alpha, 0)
    estimator = _estimator(
        "parabacus",
        budget=budget,
        batch_size=batch_size,
        num_threads=num_threads,
        seed=spec.base_seed + 31337,
    )
    watch = Stopwatch()
    with watch:
        estimator.process_stream(stream)
        estimator.flush()
    wall_eps = len(stream) / watch.elapsed
    modeled_eps = wall_eps * estimator.modeled_speedup()
    return wall_eps, modeled_eps


# ---------------------------------------------------------------------------
# Figure 6 — impact of the deletion ratio alpha
# ---------------------------------------------------------------------------
def run_deletion_ratio_impact(
    alphas: Sequence[float] = (0.05, 0.10, 0.20, 0.30),
    trials: int = 3,
    budget_index: int = 1,
    datasets: Optional[Iterable[str]] = None,
    context: Optional[ExperimentContext] = None,
) -> Dict:
    """ABACUS error (6a) and throughput (6b) across deletion ratios."""
    ctx = context or ExperimentContext()
    names = _dataset_names(datasets)
    error_series: Dict[str, List[float]] = {}
    throughput_series: Dict[str, List[float]] = {}
    for name in names:
        spec = get_dataset(name)
        budget = spec.sample_sizes[budget_index]
        errors = []
        rates = []
        for alpha in alphas:
            summary = ctx.accuracy(spec, "abacus", budget, alpha, trials)
            errors.append(summary.mean * 100.0)
            rates.append(
                ctx.throughput(spec, "abacus", budget, alpha) / 1000.0
            )
        error_series[spec.paper_name] = errors
        throughput_series[spec.paper_name] = rates
    alphas_pct = [f"{a:.0%}" for a in alphas]
    text = "== Figure 6: impact of deletions ==\n"
    text += render_series(
        "alpha",
        alphas_pct,
        error_series,
        title="(a) ABACUS relative error (%) vs deletion ratio",
        y_format="{:.2f}",
    )
    text += "\n\n"
    text += render_series(
        "alpha",
        alphas_pct,
        throughput_series,
        title="(b) ABACUS throughput (K edges/s) vs deletion ratio",
        y_format="{:.1f}",
    )
    return {
        "title": "Figure 6",
        "text": text,
        "alphas": list(alphas),
        "errors_pct": error_series,
        "throughput_keps": throughput_series,
    }


# ---------------------------------------------------------------------------
# Figure 7 — scalability with the stream size
# ---------------------------------------------------------------------------
def run_scalability(
    datasets: Optional[Iterable[str]] = None,
    alpha: float = DEFAULT_ALPHA,
    parts: int = 10,
    context: Optional[ExperimentContext] = None,
) -> Dict:
    """Elapsed processing time at each 10% of the stream, per budget.

    Linear growth of elapsed time with elements processed reproduces the
    O(k^2 t) bound of Theorem 3 at fixed k.
    """
    ctx = context or ExperimentContext()
    names = _dataset_names(
        datasets if datasets is not None else ("trackers_like", "orkut_like")
    )
    results: Dict[str, Dict] = {}
    blocks: List[str] = []
    for name in names:
        spec = get_dataset(name)
        stream = ctx.stream(spec, alpha, 0)
        marks = stream.checkpoints(parts)
        series: Dict[str, List[float]] = {}
        for budget in spec.sample_sizes:
            estimator = _estimator(
                "abacus", budget=budget, seed=spec.base_seed
            )
            elapsed: List[float] = []
            watch = Stopwatch()
            watch.start()
            estimator.process_stream(
                stream,
                checkpoints=marks,
                on_checkpoint=lambda _n, _e: elapsed.append(watch.elapsed),
            )
            watch.stop()
            series[f"k={budget}"] = elapsed
        results[name] = {"checkpoints": marks, "elapsed_s": series}
        blocks.append(
            render_series(
                "elements",
                marks,
                series,
                title=(
                    f"{spec.paper_name}: elapsed seconds vs elements processed"
                ),
                y_format="{:.2f}",
            )
        )
    text = "== Figure 7: scalability ==\n" + "\n\n".join(blocks)
    return {"title": "Figure 7", "text": text, "results": results}


# ---------------------------------------------------------------------------
# Figures 8 & 9 — PARABACUS speedup
# ---------------------------------------------------------------------------
def run_minibatch_speedup(
    batch_sizes: Sequence[int] = (100, 500, 1000, 5000, 10000),
    num_threads: int = 40,
    alpha: float = DEFAULT_ALPHA,
    datasets: Optional[Iterable[str]] = None,
    dispatch_cost_per_batch: float = 2000.0,
    context: Optional[ExperimentContext] = None,
) -> Dict:
    """Work-model speedup of PARABACUS while varying the mini-batch size.

    Two series per budget: the pure work model (``k=X``) and the model
    with a fixed per-batch fork/join dispatch cost (``k=X+ovh``) — the
    mechanism that penalises small mini-batches on real hardware and
    produces the paper's growth-in-M shape.
    """
    ctx = context or ExperimentContext()
    results: Dict[str, Dict] = {}
    blocks: List[str] = []
    for name in _dataset_names(datasets):
        spec = get_dataset(name)
        stream = ctx.stream(spec, alpha, 0)
        series: Dict[str, List[float]] = {}
        for budget in spec.sample_sizes:
            speedups = []
            adjusted = []
            for batch_size in batch_sizes:
                estimator = _estimator(
                    "parabacus",
                    budget=budget,
                    batch_size=batch_size,
                    num_threads=num_threads,
                    seed=spec.base_seed,
                )
                estimator.process_stream(stream)
                estimator.flush()
                speedups.append(estimator.modeled_speedup())
                adjusted.append(
                    estimator.modeled_speedup(
                        dispatch_cost_per_batch=dispatch_cost_per_batch
                    )
                )
            series[f"k={budget}"] = speedups
            series[f"k={budget}+ovh"] = adjusted
        results[name] = {"batch_sizes": list(batch_sizes), "speedup": series}
        blocks.append(
            render_series(
                "M (edges)",
                list(batch_sizes),
                series,
                title=(
                    f"{spec.paper_name}: PARABACUS speedup vs mini-batch size "
                    f"(p={num_threads} threads, work model)"
                ),
                y_format="{:.2f}",
            )
        )
    text = "== Figure 8: speedup vs mini-batch size ==\n" + "\n\n".join(blocks)
    return {"title": "Figure 8", "text": text, "results": results}


def run_thread_speedup(
    thread_counts: Sequence[int] = (8, 16, 24, 32, 40),
    batch_size: int = 10000,
    alpha: float = DEFAULT_ALPHA,
    datasets: Optional[Iterable[str]] = None,
    context: Optional[ExperimentContext] = None,
) -> Dict:
    """Work-model speedup of PARABACUS while varying the thread count."""
    ctx = context or ExperimentContext()
    results: Dict[str, Dict] = {}
    blocks: List[str] = []
    for name in _dataset_names(datasets):
        spec = get_dataset(name)
        stream = ctx.stream(spec, alpha, 0)
        series: Dict[str, List[float]] = {}
        for budget in spec.sample_sizes:
            speedups = []
            for p in thread_counts:
                estimator = _estimator(
                    "parabacus",
                    budget=budget,
                    batch_size=batch_size,
                    num_threads=p,
                    seed=spec.base_seed,
                )
                estimator.process_stream(stream)
                estimator.flush()
                speedups.append(estimator.modeled_speedup())
            series[f"k={budget}"] = speedups
        results[name] = {
            "thread_counts": list(thread_counts),
            "speedup": series,
        }
        blocks.append(
            render_series(
                "threads",
                list(thread_counts),
                series,
                title=(
                    f"{spec.paper_name}: PARABACUS speedup vs threads "
                    f"(M={batch_size}, work model)"
                ),
                y_format="{:.2f}",
            )
        )
    text = "== Figure 9: speedup vs number of threads ==\n" + "\n\n".join(
        blocks
    )
    return {"title": "Figure 9", "text": text, "results": results}


# ---------------------------------------------------------------------------
# Figure 10 — per-thread workload balance
# ---------------------------------------------------------------------------
def run_load_balance(
    datasets: Optional[Iterable[str]] = None,
    budget_index: int = 1,
    batch_size: int = 10000,
    num_threads: int = 32,
    alpha: float = DEFAULT_ALPHA,
    context: Optional[ExperimentContext] = None,
) -> Dict:
    """Per-thread set-intersection workloads (element checks)."""
    ctx = context or ExperimentContext()
    names = _dataset_names(
        datasets if datasets is not None else ("movielens_like", "orkut_like")
    )
    results: Dict[str, Dict] = {}
    blocks: List[str] = []
    for name in names:
        spec = get_dataset(name)
        budget = spec.sample_sizes[budget_index]
        stream = ctx.stream(spec, alpha, 0)
        estimator = _estimator(
            "parabacus",
            budget=budget,
            batch_size=batch_size,
            num_threads=num_threads,
            seed=spec.base_seed,
        )
        estimator.process_stream(stream)
        estimator.flush()
        balance = workload_balance(estimator.per_thread_work)
        results[name] = {
            "per_thread_work": list(estimator.per_thread_work),
            "balance": balance,
        }
        rows = [
            (tid + 1, work)
            for tid, work in enumerate(estimator.per_thread_work)
        ]
        blocks.append(
            render_table(
                ["Thread", "Workload (element checks)"],
                rows,
                title=(
                    f"{spec.paper_name}: per-thread workload "
                    f"(k={budget}, M={batch_size}, p={num_threads}) "
                    f"— {balance}"
                ),
            )
        )
    text = "== Figure 10: workload per thread ==\n" + "\n\n".join(blocks)
    return {"title": "Figure 10", "text": text, "results": results}


# ---------------------------------------------------------------------------
# Extra: empirical unbiasedness (Theorem 1) and ablations
# ---------------------------------------------------------------------------
def run_unbiasedness(
    n_edges: int = 1200,
    budget: int = 150,
    alpha: float = 0.25,
    trials: int = 200,
    seed: int = 13,
) -> Dict:
    """Average of many independent ABACUS estimates vs the exact count.

    Theorem 1 says E[c] equals the true count; the sample mean over
    ``trials`` runs should land within a few standard errors of it.
    """
    from repro.experiments.datasets import tiny_dataset

    spec = tiny_dataset(n_edges=n_edges, seed=seed)
    stream = spec.stream(alpha=alpha, trial=0)
    from repro.experiments.runner import ground_truth_final_count

    truth = ground_truth_final_count(stream)
    if truth <= 0:
        raise ExperimentError("unbiasedness workload has no butterflies")
    estimates = []
    for trial in range(trials):
        estimator = _estimator(
            "abacus", budget=budget, seed=seed + 7 * trial + 1
        )
        estimates.append(estimator.process_stream(stream))
    mean_estimate = sum(estimates) / len(estimates)
    variance = sum((e - mean_estimate) ** 2 for e in estimates) / max(
        1, len(estimates) - 1
    )
    std_error = (variance / len(estimates)) ** 0.5
    z = (mean_estimate - truth) / std_error if std_error > 0 else 0.0
    text = render_table(
        ["truth", "mean estimate", "std error", "z-score", "trials"],
        [
            (
                truth,
                f"{mean_estimate:.1f}",
                f"{std_error:.1f}",
                f"{z:.2f}",
                trials,
            )
        ],
        title="Empirical unbiasedness of ABACUS (Theorem 1)",
    )
    return {
        "title": "unbiasedness",
        "text": text,
        "truth": truth,
        "mean_estimate": mean_estimate,
        "std_error": std_error,
        "z": z,
    }


def run_ablation_heuristics(
    datasets: Optional[Iterable[str]] = None,
    budget_index: int = 1,
    alpha: float = DEFAULT_ALPHA,
    trials: int = 3,
    context: Optional[ExperimentContext] = None,
) -> Dict:
    """Ablations called out in DESIGN.md.

    (a) cheapest-side heuristic: identical estimates, less intersection
        work; (b) naive increment (ignoring cb/cg in Equation 1):
        biased under deletions.
    """
    ctx = context or ExperimentContext()
    rows = []
    results: Dict[str, Dict] = {}
    for name in _dataset_names(
        datasets if datasets is not None else ("movielens_like",)
    ):
        spec = get_dataset(name)
        budget = spec.sample_sizes[budget_index]
        stream = ctx.stream(spec, alpha, 0)
        truth = ctx.truth(spec, alpha, 0)

        def _mean_error_and_work(**kwargs):
            errors = []
            work = 0
            for trial in range(trials):
                estimator = _estimator(
                    "abacus", budget=budget,
                    seed=spec.base_seed + 31 * trial, **kwargs
                )
                estimate = estimator.process_stream(
                    ctx.stream(spec, alpha, trial)
                )
                t = ctx.truth(spec, alpha, trial)
                errors.append(abs(t - estimate) / t)
                work += estimator.total_work
            return sum(errors) / len(errors), work // trials

        base_err, base_work = _mean_error_and_work()
        no_heur_err, no_heur_work = _mean_error_and_work(cheapest_side=False)
        naive_err, naive_work = _mean_error_and_work(naive_increment=True)
        results[name] = {
            "default": {"error": base_err, "work": base_work},
            "no_cheapest_side": {"error": no_heur_err, "work": no_heur_work},
            "naive_increment": {"error": naive_err, "work": naive_work},
        }
        rows.extend(
            [
                (spec.paper_name, "default", f"{base_err:.2%}", base_work),
                (
                    spec.paper_name,
                    "no cheapest-side",
                    f"{no_heur_err:.2%}",
                    no_heur_work,
                ),
                (
                    spec.paper_name,
                    "naive increment",
                    f"{naive_err:.2%}",
                    naive_work,
                ),
            ]
        )
        del stream, truth
    text = render_table(
        ["Graph", "Variant", "Mean rel. error", "Avg intersection work"],
        rows,
        title="Ablation: side-selection heuristic and Equation 1 refinement",
    )
    return {"title": "ablation", "text": text, "results": results}
