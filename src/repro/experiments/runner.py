"""Shared machinery for running the paper's experiments.

Provides estimator factories keyed by method name, ground-truth
computation, and an :class:`ExperimentContext` that caches the expensive
artifacts (streams, final-graph truths) across experiments in one
process.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.api.registry import EstimatorSpec, build_estimator, get_registration
from repro.core.base import ButterflyEstimator
from repro.core.parabacus import Parabacus
from repro.errors import ExperimentError, SpecError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import count_butterflies
from repro.metrics.accuracy import relative_error, summarize_errors
from repro.metrics.throughput import Stopwatch, throughput_eps
from repro.experiments.datasets import DatasetSpec
from repro.streams.stream import EdgeStream
from repro.types import Op, StreamElement

#: Methods available to experiments and the CLI.
METHOD_NAMES = ("abacus", "parabacus", "fleet", "cas", "sgrapp", "exact")


def make_estimator(
    method: str,
    budget: int,
    seed: Optional[int] = None,
    batch_size: int = 500,
    num_threads: int = 4,
) -> ButterflyEstimator:
    """Instantiate an estimator by method name via the API registry.

    A thin convenience over :func:`repro.api.build_estimator` that maps
    the harness's uniform ``(budget, seed, batch_size, num_threads)``
    signature onto whatever parameters the named estimator actually
    declares (``exact`` takes none; only PARABACUS takes the batch
    knobs; sGrapp maps the budget onto its window).

    Args:
        method: one of :data:`METHOD_NAMES` (any registered name works).
        budget: memory budget ``k`` (ignored by ``exact``).
        seed: RNG seed for sampling decisions.
        batch_size / num_threads: PARABACUS parameters.
    """
    try:
        registration = get_registration(method)
        candidates = {
            "budget": budget,
            "seed": seed,
            "batch_size": batch_size,
            "num_threads": num_threads,
        }
        params = {
            key: value
            for key, value in candidates.items()
            if key in registration.param_names and value is not None
        }
        return build_estimator(EstimatorSpec(registration.name, params))
    except SpecError as exc:
        raise ExperimentError(
            f"unknown method {method!r}; available: {METHOD_NAMES}"
        ) from exc


def ground_truth_final_count(stream: Iterable[StreamElement]) -> int:
    """Exact ``|B|`` of the graph remaining after the whole stream.

    Applies all insertions/deletions to a graph and counts once at the
    end — far cheaper than streaming-exact and sufficient for the
    end-of-stream relative errors the paper reports.
    """
    graph = BipartiteGraph()
    for element in stream:
        if element.op is Op.INSERT:
            graph.add_edge(element.u, element.v)
        else:
            graph.remove_edge(element.u, element.v)
    return count_butterflies(graph)


class ExperimentContext:
    """Caches streams and ground truths across experiment calls.

    Keyed by ``(dataset name, alpha, trial)`` — dataset edge lists are
    already memoised by the dataset registry.
    """

    def __init__(self) -> None:
        self._streams: Dict[Tuple[str, float, int], EdgeStream] = {}
        self._truths: Dict[Tuple[str, float, int], int] = {}

    def stream(
        self, spec: DatasetSpec, alpha: float, trial: int
    ) -> EdgeStream:
        key = (spec.name, alpha, trial)
        cached = self._streams.get(key)
        if cached is None:
            cached = spec.stream(alpha=alpha, trial=trial)
            self._streams[key] = cached
        return cached

    def truth(self, spec: DatasetSpec, alpha: float, trial: int) -> int:
        key = (spec.name, alpha, trial)
        cached = self._truths.get(key)
        if cached is None:
            cached = ground_truth_final_count(self.stream(spec, alpha, trial))
            self._truths[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def accuracy(
        self,
        spec: DatasetSpec,
        method: str,
        budget: int,
        alpha: float,
        trials: int,
        batch_size: int = 500,
        num_threads: int = 4,
    ):
        """Mean relative error over ``trials`` independent runs."""
        errors = []
        for trial in range(trials):
            stream = self.stream(spec, alpha, trial)
            truth = self.truth(spec, alpha, trial)
            estimator = make_estimator(
                method,
                budget,
                seed=spec.base_seed + 104729 * (trial + 1),
                batch_size=batch_size,
                num_threads=num_threads,
            )
            estimate = estimator.process_stream(stream)
            if isinstance(estimator, Parabacus):
                estimator.flush()
                estimate = estimator.estimate
            errors.append(relative_error(truth, estimate))
        return summarize_errors(errors)

    def throughput(
        self,
        spec: DatasetSpec,
        method: str,
        budget: int,
        alpha: float,
        trial: int = 0,
        insertions_only: bool = False,
        batch_size: int = 500,
        num_threads: int = 4,
    ) -> float:
        """Elements per second of pure processing time."""
        stream = self.stream(spec, alpha, trial)
        if insertions_only:
            stream = stream.insertions_only()
        estimator = make_estimator(
            method,
            budget,
            seed=spec.base_seed + 15485863,
            batch_size=batch_size,
            num_threads=num_threads,
        )
        watch = Stopwatch()
        with watch:
            estimator.process_stream(stream)
            if isinstance(estimator, Parabacus):
                estimator.flush()
        return throughput_eps(len(stream), watch.elapsed)
