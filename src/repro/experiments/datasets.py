"""Synthetic analogues of the paper's four datasets (Table II).

The paper evaluates on MovieLens (10M edges), LiveJournal (112M),
Trackers (140.6M), and Orkut (327M) from KONECT.  None of these is
available offline, and a pure-Python reproduction processes streams
about three orders of magnitude smaller; DESIGN.md substitution #1
explains the scaling argument.

Each analogue is a Chung–Lu power-law bipartite graph whose shape
parameters were tuned so that the *butterfly-density ordering* of
Table II is preserved:

    MovieLens-like  >>  Trackers-like  >  LiveJournal-like  >  Orkut-like

MovieLens has a small, heavily reused right side (movies), making it by
far the densest in butterflies; Orkut's group-membership graph is the
sparsest.  Sample sizes are scaled with the streams: the paper's
75K/150K/300K edges become the per-dataset ``sample_sizes`` below,
keeping sample-to-stream ratios in a comparable regime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ExperimentError
from repro.graph.generators import bipartite_chung_lu
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.streams.stream import EdgeStream
from repro.types import Edge


@dataclass(frozen=True)
class DatasetSpec:
    """A reproducible synthetic dataset configuration.

    Attributes:
        name: registry key (e.g. ``"movielens_like"``).
        paper_name: the dataset this analogue stands in for.
        n_left / n_right: partition sizes offered to the generator.
        n_edges: number of distinct edges (insertion stream length).
        left_exponent / right_exponent: power-law exponents of the two
            weight sequences (lower = heavier tail = more hubs).
        sample_sizes: the three memory budgets standing in for the
            paper's 75K / 150K / 300K edges.
        base_seed: generator seed; trial ``i`` uses ``base_seed + i``
            for stream-level randomness while keeping the graph fixed.
    """

    name: str
    paper_name: str
    n_left: int
    n_right: int
    n_edges: int
    left_exponent: float
    right_exponent: float
    sample_sizes: Tuple[int, int, int] = (1500, 3000, 6000)
    base_seed: int = 20240312

    def edges(self) -> List[Edge]:
        """Generate the dataset's edge list (deterministic)."""
        rng = random.Random(self.base_seed)
        return bipartite_chung_lu(
            self.n_left,
            self.n_right,
            self.n_edges,
            left_exponent=self.left_exponent,
            right_exponent=self.right_exponent,
            rng=rng,
        )

    def stream(self, alpha: float = 0.2, trial: int = 0) -> EdgeStream:
        """The fully dynamic stream for one trial.

        The underlying graph is fixed per dataset; the deletion choice
        and placement vary with ``trial`` (matching the paper's 10
        repeated runs per configuration).
        """
        edges = _edge_cache(self)
        if alpha == 0.0:
            return stream_from_edges(edges)
        rng = random.Random(self.base_seed + 7919 * (trial + 1))
        return make_fully_dynamic(edges, alpha, rng)


# Edge lists are deterministic per spec, so memoise them per process.
_EDGE_CACHE: Dict[str, List[Edge]] = {}


def _edge_cache(spec: DatasetSpec) -> List[Edge]:
    cached = _EDGE_CACHE.get(spec.name)
    if cached is None:
        cached = spec.edges()
        _EDGE_CACHE[spec.name] = cached
    return cached


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="movielens_like",
            paper_name="MovieLens",
            n_left=3000,
            n_right=400,
            n_edges=30000,
            left_exponent=2.1,
            right_exponent=1.9,
        ),
        DatasetSpec(
            name="livejournal_like",
            paper_name="LiveJournal",
            n_left=12000,
            n_right=9000,
            n_edges=45000,
            left_exponent=2.2,
            right_exponent=2.1,
        ),
        DatasetSpec(
            name="trackers_like",
            paper_name="Trackers",
            n_left=15000,
            n_right=4000,
            n_edges=45000,
            left_exponent=2.3,
            right_exponent=1.95,
        ),
        DatasetSpec(
            name="orkut_like",
            paper_name="Orkut",
            n_left=10000,
            n_right=12000,
            n_edges=50000,
            left_exponent=2.45,
            right_exponent=2.3,
        ),
    )
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by registry name."""
    spec = DATASETS.get(name)
    if spec is None:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return spec


def list_datasets() -> List[str]:
    """Registry names, in the paper's Table II order."""
    return list(DATASETS)


def tiny_dataset(n_edges: int = 2000, seed: int = 7) -> DatasetSpec:
    """A miniature spec for fast tests (not part of the registry)."""
    return DatasetSpec(
        name=f"tiny_{n_edges}_{seed}",
        paper_name="Tiny",
        n_left=max(60, n_edges // 8),
        n_right=max(30, n_edges // 16),
        n_edges=n_edges,
        left_exponent=2.1,
        right_exponent=2.0,
        sample_sizes=(200, 400, 800),
        base_seed=seed,
    )
