"""Plain-text rendering of experiment results.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Monospace table with column auto-sizing.

    Floats are rendered with 4 significant digits; everything else via
    ``str``.
    """
    materialized: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    y_format: str = "{:.4g}",
) -> str:
    """One row per x value, one column per named series (figure data)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(y_format.format(values[i]) if i < len(values) else "-")
        rows.append(row)
    return render_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
