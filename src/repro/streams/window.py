"""Sliding-window to fully-dynamic stream adapter.

The paper targets *infinite window* semantics (count butterflies over
everything not explicitly deleted).  Many deployments want a *sliding
window* instead: only the most recent ``W`` interactions matter.  A
sliding window is just a deterministic deletion policy — each insertion
expires exactly ``W`` arrivals later — so any fully dynamic estimator
(ABACUS/PARABACUS) computes sliding-window butterfly counts for free.
This adapter materialises that reduction, turning an insert-only edge
sequence into a valid fully dynamic stream with the expiry deletions
interleaved at the right positions.

This is exactly the kind of extension the fully-dynamic model enables
and insert-only estimators cannot express.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, Sequence

from repro.errors import StreamError
from repro.types import Edge, StreamElement, deletion, insertion


def sliding_window_stream(
    edges: Sequence[Edge], window: int
) -> Iterator[StreamElement]:
    """Interleave expiry deletions into an insert-only edge sequence.

    Before the ``t``-th edge (0-based) is inserted, the edge inserted at
    ``t - window`` (if any) is deleted, so at any point at most
    ``window`` edges are live and they are exactly the most recent ones.
    After the last insertion the remaining live edges are *not* deleted
    (the window simply stops sliding), matching streaming-systems
    semantics where the tail window stays queryable.

    Args:
        edges: distinct edges in arrival order.
        window: window length ``W`` in arrivals (>= 1).

    Yields:
        Stream elements satisfying the fully-dynamic contract.

    Raises:
        StreamError: if ``window < 1`` or ``edges`` repeats an edge
            while a previous occurrence is still inside the window.
    """
    if window < 1:
        raise StreamError(f"window must be >= 1, got {window}")
    live: Deque[Edge] = deque()
    live_set = set()
    for u, v in edges:
        if len(live) == window:
            old = live.popleft()
            live_set.discard(old)
            yield deletion(*old)
        if (u, v) in live_set:
            raise StreamError(
                f"edge ({u!r}, {v!r}) re-inserted while still in the window"
            )
        live.append((u, v))
        live_set.add((u, v))
        yield insertion(u, v)


def windowed_counts(
    estimator,
    edges: Sequence[Edge],
    window: int,
    every: int = 1000,
) -> list:
    """Drive an estimator over a sliding window, sampling its estimate.

    Args:
        estimator: any :class:`~repro.core.base.ButterflyEstimator`.
        edges: insert-only edge sequence.
        window: sliding-window size in arrivals.
        every: sample the estimate every ``every`` *insertions*.

    Returns:
        List of ``(insertions_processed, estimate)`` pairs.
    """
    points = []
    insertions_seen = 0
    for element in sliding_window_stream(edges, window):
        estimator.process(element)
        if element.is_insertion:
            insertions_seen += 1
            if insertions_seen % every == 0:
                points.append((insertions_seen, estimator.estimate))
    return points


def window_deletion_ratio(n_edges: int, window: int) -> float:
    """Fraction of stream elements that are deletions for given sizes.

    Useful for sizing experiments: a length-``n`` edge sequence with
    window ``W`` produces ``n + max(0, n - W)`` elements.
    """
    if n_edges <= 0:
        return 0.0
    expirations = max(0, n_edges - window)
    return expirations / (n_edges + expirations)


def expired_edges(edges: Iterable[Edge], window: int) -> Iterator[Edge]:
    """The edges a sliding window of size ``window`` would expire."""
    buffer: Deque[Edge] = deque()
    for edge in edges:
        if len(buffer) == window:
            yield buffer.popleft()
        buffer.append(edge)
