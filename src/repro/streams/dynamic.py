"""Synthesis and validation of fully dynamic streams.

The paper's datasets are insertion-only; Section VI-A describes how
fully dynamic workloads are produced:

    (a) create the insertions of each edge in their natural order,
    (b) create deletions by selecting α% of the edges,
    (c) place each deletion at a random position after its insertion.

:func:`make_fully_dynamic` implements exactly that protocol.
:func:`validate_stream` checks the fully-dynamic contract (no duplicate
live insertions, deletions only of live edges) that every estimator in
this library assumes.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import StreamError
from repro.streams.stream import EdgeStream
from repro.types import Edge, Op, StreamElement, deletion, insertion


def stream_from_edges(edges: Iterable[Edge]) -> EdgeStream:
    """Wrap an insertion-only edge list into an :class:`EdgeStream`."""
    return EdgeStream(insertion(u, v) for u, v in edges)


def make_fully_dynamic(
    edges: Sequence[Edge],
    alpha: float = 0.2,
    rng: Optional[random.Random] = None,
) -> EdgeStream:
    """Inject deletions into an insertion-only edge list.

    Args:
        edges: edges in natural (arrival) order; must be distinct.
        alpha: fraction of edges that additionally receive a deletion
            (paper default 20%, varied 5%–30% in Fig. 6).
        rng: randomness source for selecting deleted edges and deletion
            positions; pass a seeded ``random.Random`` for
            reproducibility.

    Returns:
        A stream of ``len(edges) * (1 + alpha)`` elements (rounded) in
        which every deletion appears strictly after its insertion.

    Raises:
        StreamError: if ``alpha`` is outside ``[0, 1]`` or ``edges``
            contains duplicates.
    """
    if not 0.0 <= alpha <= 1.0:
        raise StreamError(f"alpha must be within [0, 1], got {alpha}")
    if len(set(edges)) != len(edges):
        raise StreamError("input edge list contains duplicate edges")
    rng = rng or random.Random()
    n = len(edges)
    num_deletions = round(n * alpha)
    victims = rng.sample(range(n), num_deletions) if num_deletions else []

    # Build the element list incrementally.  For each victim insertion at
    # index i we must place a deletion at a uniformly random later slot.
    # We do this with the classic two-pass trick: first assign each
    # deletion a target position among the final positions, then merge.
    elements: List[StreamElement] = [insertion(u, v) for u, v in edges]
    # Process victims from the *end* of the stream backwards so that
    # insertion positions recorded earlier stay valid while we insert
    # deletion elements.
    for i in sorted(victims, reverse=True):
        u, v = edges[i]
        slot = rng.randrange(i + 1, len(elements) + 1)
        elements.insert(slot, deletion(u, v))
    return EdgeStream(elements)


def validate_stream(stream: Iterable[StreamElement]) -> Tuple[int, int]:
    """Check the fully-dynamic contract; return (max_edges, final_edges).

    Contract (Definition 1): an insertion requires the edge to be
    currently absent; a deletion requires it to be currently present.

    Raises:
        StreamError: on the first violating element, with its index.
    """
    live: Set[Edge] = set()
    max_edges = 0
    for t, element in enumerate(stream):
        edge = element.edge
        if element.op is Op.INSERT:
            if edge in live:
                raise StreamError(
                    f"element {t}: insertion of live edge {edge}"
                )
            live.add(edge)
            max_edges = max(max_edges, len(live))
        else:
            if edge not in live:
                raise StreamError(
                    f"element {t}: deletion of absent edge {edge}"
                )
            live.remove(edge)
    return max_edges, len(live)


def interleave_reinsertions(
    edges: Sequence[Edge],
    alpha: float,
    reinsert_fraction: float = 0.5,
    rng: Optional[random.Random] = None,
) -> EdgeStream:
    """A stress variant: some deleted edges get re-inserted later.

    The paper's protocol never reuses a deleted edge; this generator
    produces a harder, still-contract-valid workload in which
    ``reinsert_fraction`` of the deleted edges are inserted again after
    their deletion (and stay live).  Used by robustness tests.
    """
    if not 0.0 <= reinsert_fraction <= 1.0:
        raise StreamError(
            f"reinsert_fraction must be within [0, 1], got {reinsert_fraction}"
        )
    rng = rng or random.Random()
    base = make_fully_dynamic(edges, alpha, rng)
    elements = list(base)
    deletions = [
        (idx, e) for idx, e in enumerate(elements) if e.op is Op.DELETE
    ]
    chosen = rng.sample(
        deletions, round(len(deletions) * reinsert_fraction)
    ) if deletions else []
    # Insert re-insertions back-to-front to keep earlier indices valid.
    for idx, element in sorted(chosen, key=lambda p: p[0], reverse=True):
        slot = rng.randrange(idx + 1, len(elements) + 1)
        elements.insert(slot, element.inverted())
    return EdgeStream(elements)
