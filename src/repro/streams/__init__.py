"""Fully dynamic bipartite graph stream model.

Provides the stream container, synthesis of fully dynamic streams from
insertion-only edge lists (the paper's deletion-injection protocol),
stream file I/O, replay/validation utilities, and mini-batching for
PARABACUS.
"""

from repro.streams.stream import EdgeStream
from repro.streams.dynamic import (
    make_fully_dynamic,
    validate_stream,
    stream_from_edges,
)
from repro.streams.io import (
    load_konect,
    read_stream,
    write_stream,
)
from repro.streams.minibatch import iter_minibatches
from repro.streams.window import sliding_window_stream, windowed_counts
from repro.streams.profile import StreamProfile, StreamProfiler
from repro.streams.transform import (
    SanitizeReport,
    deletion_tail,
    inverse,
    merged,
    relabeled,
    sanitized,
    suspicious_elements,
)
from repro.streams.adversarial import (
    butterfly_bomb,
    churn_stream,
    deletion_storm,
    hub_stream,
)

__all__ = [
    "EdgeStream",
    "make_fully_dynamic",
    "stream_from_edges",
    "validate_stream",
    "load_konect",
    "read_stream",
    "write_stream",
    "iter_minibatches",
    "sliding_window_stream",
    "windowed_counts",
    "StreamProfile",
    "StreamProfiler",
    "SanitizeReport",
    "sanitized",
    "suspicious_elements",
    "relabeled",
    "merged",
    "inverse",
    "deletion_tail",
    "butterfly_bomb",
    "churn_stream",
    "deletion_storm",
    "hub_stream",
]
