"""Mini-batch iteration for PARABACUS.

PARABACUS consumes the stream in fixed-size mini-batches of ``M``
elements (Section V).  :func:`iter_minibatches` yields successive
batches; the final batch may be shorter.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.errors import StreamError
from repro.types import StreamElement


def iter_minibatches(
    stream: Iterable[StreamElement], batch_size: int
) -> Iterator[List[StreamElement]]:
    """Yield lists of up to ``batch_size`` consecutive stream elements.

    Args:
        stream: any iterable of stream elements.
        batch_size: the mini-batch size ``M`` (paper default 500 for the
            throughput comparison, up to 10K in the speedup studies).

    Raises:
        StreamError: if ``batch_size`` is not positive.
    """
    if batch_size <= 0:
        raise StreamError(f"batch_size must be positive, got {batch_size}")
    batch: List[StreamElement] = []
    for element in stream:
        batch.append(element)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def partition_round_robin(
    items: List, num_parts: int
) -> List[List]:
    """Split ``items`` into ``num_parts`` near-equal contiguous chunks.

    PARABACUS "groups the edges into p equal-sized sets"; contiguous
    chunking keeps each thread's sample versions close together, which
    minimises delta-replay work.  Empty chunks are returned when there
    are fewer items than parts so callers can zip chunks with workers.
    """
    if num_parts <= 0:
        raise StreamError(f"num_parts must be positive, got {num_parts}")
    n = len(items)
    base, extra = divmod(n, num_parts)
    chunks: List[List] = []
    start = 0
    for i in range(num_parts):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks
