"""The :class:`EdgeStream` container.

An :class:`EdgeStream` is an ordered sequence of
:class:`~repro.types.StreamElement` values together with a few cheap
summary statistics.  It supports iteration (the only access pattern the
data-stream model allows an *algorithm*), plus indexing and slicing for
the convenience of the experiment harness, which is allowed to replay
prefixes to compute ground truth at checkpoints.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, overload

from repro.errors import StreamError
from repro.types import Op, StreamElement


class EdgeStream(Sequence[StreamElement]):
    """An in-memory fully dynamic bipartite graph stream.

    Attributes are computed once at construction:

    * ``num_insertions`` / ``num_deletions`` — element counts by type.
    * ``deletion_ratio`` — fraction of elements that are deletions
      (the paper's α when the stream was built with
      :func:`repro.streams.make_fully_dynamic`).
    """

    __slots__ = ("_elements", "num_insertions", "num_deletions")

    def __init__(self, elements: Iterable[StreamElement]) -> None:
        self._elements: List[StreamElement] = list(elements)
        self.num_insertions = sum(
            1 for e in self._elements if e.op is Op.INSERT
        )
        self.num_deletions = len(self._elements) - self.num_insertions

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    @overload
    def __getitem__(self, index: int) -> StreamElement: ...

    @overload
    def __getitem__(self, index: slice) -> "EdgeStream": ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EdgeStream(self._elements[index])
        return self._elements[index]

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._elements)

    # -- Summary -----------------------------------------------------------
    @property
    def deletion_ratio(self) -> float:
        """Fraction of stream elements that are deletions."""
        if not self._elements:
            return 0.0
        return self.num_deletions / len(self._elements)

    @property
    def final_num_edges(self) -> int:
        """Edges remaining after the whole stream is applied."""
        return self.num_insertions - self.num_deletions

    def prefix(self, n: int) -> "EdgeStream":
        """The first ``n`` elements as a new stream."""
        if n < 0:
            raise StreamError(f"prefix length must be >= 0, got {n}")
        return self[:n]

    def insertions_only(self) -> "EdgeStream":
        """Drop all deletion elements (what FLEET/CAS effectively see)."""
        return EdgeStream(e for e in self._elements if e.op is Op.INSERT)

    def checkpoints(self, parts: int = 10) -> List[int]:
        """Element indices splitting the stream into ``parts`` chunks.

        Used by the scalability experiment (Fig. 7), which records the
        elapsed time after each 10% of the stream.
        """
        if parts <= 0:
            raise StreamError(f"parts must be positive, got {parts}")
        n = len(self._elements)
        return [max(1, round(n * (i + 1) / parts)) for i in range(parts)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeStream(len={len(self)}, ins={self.num_insertions}, "
            f"del={self.num_deletions})"
        )
