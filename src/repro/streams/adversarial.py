"""Adversarial and stress workload generators.

The paper evaluates on organic KONECT graphs with uniformly placed
deletions; a robust library also needs the workloads that make
estimators fail.  Each generator here targets a specific weakness:

* :func:`deletion_storm` — a long insert phase followed by a burst of
  deletions.  Stresses Random Pairing's compensation counters (``cb``,
  ``cg`` grow large before any insertion can compensate) — the regime
  where insert-only samplers are maximally biased.
* :func:`churn_stream` — the same edge set inserted and deleted over
  and over.  The true count returns to zero after every cycle; any
  estimator whose deletions are ignored drifts upward without bound.
* :func:`butterfly_bomb` — a planted complete biclique arriving in one
  burst, the canonical anomaly signature (Section I's anomaly
  detection motivation).
* :func:`hub_stream` — a high-degree star.  Contains *zero*
  butterflies but maximal wedge counts, stressing the cheapest-side
  heuristic's work bound.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import StreamError
from repro.streams.stream import EdgeStream
from repro.types import Edge, StreamElement, deletion, insertion


def deletion_storm(
    edges: Sequence[Edge],
    storm_fraction: float = 0.5,
    rng: Optional[random.Random] = None,
) -> EdgeStream:
    """Insert all edges, then delete a random fraction in one burst.

    Args:
        edges: distinct edges, inserted in the given order.
        storm_fraction: fraction deleted in the trailing burst.
        rng: randomness for victim choice and burst order.

    Returns:
        A contract-valid stream of ``len(edges) * (1 + storm_fraction)``
        elements (rounded) whose deletions are all at the end.
    """
    if not 0.0 <= storm_fraction <= 1.0:
        raise StreamError(
            f"storm_fraction must be within [0, 1], got {storm_fraction}"
        )
    if len(set(edges)) != len(edges):
        raise StreamError("input edge list contains duplicate edges")
    rng = rng or random.Random()
    victims = rng.sample(
        list(edges), round(len(edges) * storm_fraction)
    )
    elements: List[StreamElement] = [insertion(u, v) for u, v in edges]
    elements.extend(deletion(u, v) for u, v in victims)
    return EdgeStream(elements)


def churn_stream(
    edges: Sequence[Edge],
    cycles: int = 3,
    rng: Optional[random.Random] = None,
) -> EdgeStream:
    """Insert and fully delete the same edge set ``cycles`` times.

    After every complete cycle the live graph — and hence the true
    butterfly count — is exactly zero, while the *stream* keeps
    growing: `2 * cycles * len(edges)` elements total.  Insert-only
    estimators accumulate a bias proportional to ``cycles``.

    Deletion order within each cycle is randomised when ``rng`` is
    given, otherwise reverse-insertion order.
    """
    if cycles <= 0:
        raise StreamError(f"cycles must be positive, got {cycles}")
    if len(set(edges)) != len(edges):
        raise StreamError("input edge list contains duplicate edges")
    elements: List[StreamElement] = []
    for _ in range(cycles):
        elements.extend(insertion(u, v) for u, v in edges)
        order = list(edges)
        if rng is not None:
            rng.shuffle(order)
        else:
            order.reverse()
        elements.extend(deletion(u, v) for u, v in order)
    return EdgeStream(elements)


def butterfly_bomb(
    num_left: int,
    num_right: int,
    background: Sequence[Edge] = (),
    bomb_position: Optional[int] = None,
    rng: Optional[random.Random] = None,
    left_prefix: str = "bomb_l",
    right_prefix: str = "bomb_r",
) -> Tuple[EdgeStream, int]:
    """Plant a complete ``num_left x num_right`` biclique in a stream.

    The biclique's ``num_left * num_right`` insertions arrive
    back-to-back at ``bomb_position`` (default: the middle) inside the
    ``background`` insertions, modelling the sudden dense-subgraph
    burst that anomaly detectors look for.

    Returns:
        ``(stream, planted_butterflies)`` where the second component is
        ``C(num_left, 2) * C(num_right, 2)`` — the butterflies the bomb
        alone contributes.
    """
    if num_left < 2 or num_right < 2:
        raise StreamError(
            "a butterfly bomb needs at least a 2x2 biclique, got "
            f"{num_left}x{num_right}"
        )
    bomb_edges = [
        (f"{left_prefix}{i}", f"{right_prefix}{j}")
        for i in range(num_left)
        for j in range(num_right)
    ]
    if rng is not None:
        rng.shuffle(bomb_edges)
    background_elements = [insertion(u, v) for u, v in background]
    if bomb_position is None:
        bomb_position = len(background_elements) // 2
    if not 0 <= bomb_position <= len(background_elements):
        raise StreamError(
            f"bomb_position {bomb_position} outside "
            f"[0, {len(background_elements)}]"
        )
    elements = (
        background_elements[:bomb_position]
        + [insertion(u, v) for u, v in bomb_edges]
        + background_elements[bomb_position:]
    )
    planted = (
        num_left * (num_left - 1) // 2 * (num_right * (num_right - 1) // 2)
    )
    return EdgeStream(elements), planted


def hub_stream(
    num_leaves: int,
    hub: str = "hub",
    two_sided: bool = False,
) -> EdgeStream:
    """A star: one left hub connected to ``num_leaves`` right leaves.

    Contains no butterfly (a butterfly needs two vertices per side with
    two common neighbours) yet the hub's degree is maximal, so every
    arriving edge triggers the largest possible neighbour sets — a
    worst case for naive per-edge counting and the workload where the
    cheapest-side heuristic saves the most work.

    With ``two_sided`` a mirrored right-hub star over fresh vertices is
    appended, exercising both sides of the heuristic.
    """
    if num_leaves <= 0:
        raise StreamError(f"num_leaves must be positive, got {num_leaves}")
    elements = [
        insertion(hub, f"leaf_{i}") for i in range(num_leaves)
    ]
    if two_sided:
        elements.extend(
            insertion(f"spoke_{i}", f"{hub}_mirror")
            for i in range(num_leaves)
        )
    return EdgeStream(elements)
