"""Stream and graph file I/O.

Two formats are supported:

* **Stream format** (this library's native format): one element per
  line, ``<op> <u> <v>`` where ``op`` is ``+`` or ``-`` and the vertex
  ids are integers.  Lines starting with ``%`` or ``#`` are comments.
* **KONECT format**: the Koblenz Network Collection's ``out.*`` files
  (used by the paper's four datasets): whitespace-separated
  ``<left> <right> [weight [timestamp]]`` with ``%`` comment lines.
  Left and right ids share a numeric namespace in some KONECT dumps, so
  the loader re-maps right ids by an offset to keep the partitions
  disjoint.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional

from repro.errors import StreamError
from repro.streams.stream import EdgeStream
from repro.types import Edge, Op, StreamElement


def write_stream(
    stream: Iterable[StreamElement], path: str | os.PathLike
) -> None:
    """Write a stream in the native ``<op> <u> <v>`` format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro stream format: <op> <u> <v>\n")
        for element in stream:
            handle.write(
                f"{element.op.value} {element.u} {element.v}\n"
            )


def read_stream(path: str | os.PathLike) -> EdgeStream:
    """Read a stream written by :func:`write_stream`.

    Vertex ids are parsed as integers when possible and kept as strings
    otherwise.

    Raises:
        StreamError: on malformed lines.
    """
    elements: List[StreamElement] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise StreamError(
                    f"{path}:{lineno}: expected '<op> <u> <v>', got {line!r}"
                )
            op_symbol, raw_u, raw_v = parts
            try:
                op = Op.from_symbol(op_symbol)
            except ValueError as exc:
                raise StreamError(f"{path}:{lineno}: {exc}") from exc
            elements.append(
                StreamElement(_parse_vertex(raw_u), _parse_vertex(raw_v), op)
            )
    return EdgeStream(elements)


def load_konect(
    path: str | os.PathLike,
    right_offset: Optional[int] = None,
    deduplicate: bool = True,
    limit: Optional[int] = None,
) -> List[Edge]:
    """Load a KONECT ``out.*`` edge list as an insertion-order edge list.

    Args:
        path: path to the KONECT file.
        right_offset: value added to right-side ids to keep partitions
            disjoint.  Defaults to ``1 + max left id`` (two passes).
        deduplicate: drop repeated edges, keeping first occurrence (the
            paper removes duplicate edges during preprocessing).
        limit: optionally keep only the first ``limit`` distinct edges.

    Returns:
        Edges in file order — the "natural order" used for stream
        arrival in the experiments.
    """
    rows: List[tuple[int, int]] = []
    max_left = -1
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("%", "#")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise StreamError(
                    f"{path}:{lineno}: expected at least two columns"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
            except ValueError as exc:
                raise StreamError(
                    f"{path}:{lineno}: non-integer vertex id"
                ) from exc
            rows.append((u, v))
            max_left = max(max_left, u)
    offset = right_offset if right_offset is not None else max_left + 1
    edges: List[Edge] = []
    seen: set[Edge] = set()
    for u, v in rows:
        edge = (u, v + offset)
        if deduplicate:
            if edge in seen:
                continue
            seen.add(edge)
        edges.append(edge)
        if limit is not None and len(edges) >= limit:
            break
    return edges


def _parse_vertex(token: str):
    """Integers stay integers; anything else is kept verbatim."""
    try:
        return int(token)
    except ValueError:
        return token
