"""Composable stream transformations.

Real deployments rarely feed an estimator the pristine streams of the
paper's model; these helpers bridge the gap:

* :func:`sanitized` — exact guard enforcing the fully-dynamic contract
  (Definition 1): duplicate insertions and deletions of absent edges
  are dropped and reported instead of corrupting the estimator state.
* :func:`suspicious_elements` — the same check in bounded memory using
  a counting Bloom filter; flags (never drops) possibly-violating
  elements for a slow path.
* :func:`relabeled` — map arbitrary vertex identifiers to dense
  integers per side, the representation the generators use for speed.
* :func:`merged` — interleave several streams into one, optionally
  namespacing vertices so the merge cannot collide partitions.
* :func:`inverse` — the stream that exactly undoes another one; running
  a stream followed by its inverse must return every estimator to an
  empty graph (used heavily by the property tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import StreamError
from repro.sketch.bloom import CountingBloomFilter
from repro.streams.stream import EdgeStream
from repro.types import Edge, Op, StreamElement, Vertex


@dataclass
class SanitizeReport:
    """What :func:`sanitized` removed from a dirty stream.

    Attributes:
        duplicate_insertions: elements inserting an already-live edge.
        absent_deletions: elements deleting an edge that was not live.
        kept: number of elements that passed the guard.
    """

    duplicate_insertions: int = 0
    absent_deletions: int = 0
    kept: int = 0
    dropped_indices: List[int] = field(default_factory=list)

    @property
    def dropped(self) -> int:
        """Total elements removed."""
        return self.duplicate_insertions + self.absent_deletions


def sanitized(
    stream: Iterable[StreamElement],
) -> Tuple[EdgeStream, SanitizeReport]:
    """Drop contract-violating elements from a possibly dirty stream.

    Exact: keeps the live edge set in memory, so the output always
    satisfies :func:`repro.streams.validate_stream`.

    Returns:
        ``(clean_stream, report)``.
    """
    live: Set[Edge] = set()
    kept: List[StreamElement] = []
    report = SanitizeReport()
    for index, element in enumerate(stream):
        edge = element.edge
        if element.op is Op.INSERT:
            if edge in live:
                report.duplicate_insertions += 1
                report.dropped_indices.append(index)
                continue
            live.add(edge)
        else:
            if edge not in live:
                report.absent_deletions += 1
                report.dropped_indices.append(index)
                continue
            live.remove(edge)
        kept.append(element)
    report.kept = len(kept)
    return EdgeStream(kept), report


def suspicious_elements(
    stream: Iterable[StreamElement],
    capacity: int,
    fp_rate: float = 0.01,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Indices of elements that *may* violate the stream contract.

    Uses a counting Bloom filter over the live edge set, so memory is
    ``O(capacity)`` bits regardless of stream length.  Guarantees:

    * every actual violation is flagged (no false negatives, from the
      Bloom no-false-negative property);
    * a valid element is flagged only with roughly the filter's
      false-positive probability.

    Flagged elements are *not* removed — an exact slow path (or
    :func:`sanitized` on the flagged region) should decide.
    """
    guard = CountingBloomFilter(capacity, fp_rate, rng=rng)
    flagged: List[int] = []
    # Flagged elements do not update the guard: the filter tracks the
    # stream *as sanitised*, so a duplicate insertion cannot mask the
    # invalid deletion of its extra copy later on.
    for index, element in enumerate(stream):
        edge = element.edge
        if element.op is Op.INSERT:
            if edge in guard:
                flagged.append(index)
            else:
                guard.add(edge)
        else:
            if edge in guard:
                guard.remove(edge)
            else:
                flagged.append(index)
    return flagged


def relabeled(
    stream: Iterable[StreamElement],
) -> Tuple[EdgeStream, Dict[Vertex, int], Dict[Vertex, int]]:
    """Rewrite vertices as dense integers, separately per side.

    Left vertices are numbered 0, 1, ... in first-appearance order;
    right vertices likewise (the two numberings are independent, so the
    same integer may appear on both sides — sides are disjoint
    namespaces in the bipartite model).

    Returns:
        ``(stream, left_map, right_map)`` where the maps send original
        identifiers to their dense labels.
    """
    left_map: Dict[Vertex, int] = {}
    right_map: Dict[Vertex, int] = {}
    elements: List[StreamElement] = []
    for element in stream:
        u = left_map.setdefault(element.u, len(left_map))
        v = right_map.setdefault(element.v, len(right_map))
        elements.append(StreamElement(u, v, element.op))
    return EdgeStream(elements), left_map, right_map


def merged(
    streams: Sequence[Iterable[StreamElement]],
    rng: Optional[random.Random] = None,
    namespace: bool = True,
) -> EdgeStream:
    """Interleave several streams into one, preserving per-stream order.

    Args:
        streams: the input streams (consumed eagerly).
        rng: if given, the interleaving is a uniformly random merge;
            otherwise round-robin.
        namespace: prefix every vertex with its stream index (as a
            tuple ``(stream_index, vertex)``) so edges from different
            streams can never collide.  Disable only when the caller
            guarantees the streams touch disjoint edges.

    Returns:
        The merged stream; contract-valid whenever every input is and
        either ``namespace`` is set or the inputs are edge-disjoint.
    """
    queues: List[List[StreamElement]] = []
    for index, stream in enumerate(streams):
        elements = list(stream)
        if namespace:
            elements = [
                StreamElement((index, e.u), (index, e.v), e.op)
                for e in elements
            ]
        queues.append(elements)
    positions = [0] * len(queues)
    remaining = sum(len(q) for q in queues)
    out: List[StreamElement] = []
    cursor = 0
    while remaining:
        if rng is not None:
            # Draw a source weighted by elements left, which yields a
            # uniformly random merge of the sequences.
            pick = rng.randrange(remaining)
            source = 0
            while True:
                left_here = len(queues[source]) - positions[source]
                if pick < left_here:
                    break
                pick -= left_here
                source += 1
        else:
            source = cursor
            while positions[source] >= len(queues[source]):
                source = (source + 1) % len(queues)
            cursor = (source + 1) % len(queues)
        out.append(queues[source][positions[source]])
        positions[source] += 1
        remaining -= 1
    return EdgeStream(out)


def inverse(stream: Iterable[StreamElement]) -> EdgeStream:
    """The stream that undoes ``stream``, element by element.

    Reverses the order and flips every operation; applying ``stream``
    then ``inverse(stream)`` leaves the graph empty whenever ``stream``
    itself is contract-valid starting from an empty graph.
    """
    elements = list(stream)
    return EdgeStream(e.inverted() for e in reversed(elements))


def deletion_tail(stream: Iterable[StreamElement]) -> EdgeStream:
    """Extend a stream so it ends with an empty graph.

    Appends one deletion for every edge still live after ``stream``.
    Useful for drain-down tests: any unbiased estimator must end near
    zero.

    Raises:
        StreamError: if the input itself violates the contract.
    """
    elements = list(stream)
    live: Set[Edge] = set()
    for t, element in enumerate(elements):
        if element.op is Op.INSERT:
            if element.edge in live:
                raise StreamError(
                    f"element {t}: insertion of live edge {element.edge}"
                )
            live.add(element.edge)
        else:
            if element.edge not in live:
                raise StreamError(
                    f"element {t}: deletion of absent edge {element.edge}"
                )
            live.remove(element.edge)
    # Deterministic order keeps tests reproducible.
    for u, v in sorted(live, key=repr):
        elements.append(StreamElement(u, v, Op.DELETE))
    return EdgeStream(elements)
