"""One-pass, bounded-memory stream profiling.

Table II characterises each dataset (|E|, |L|, |R|, butterfly density)
offline; a streaming system wants the same characterisation *online*
while the stream flows, in memory that does not grow with the graph.
:class:`StreamProfiler` combines the sketch substrate into one pass:

* exact running tallies that cost O(1): element/insertion/deletion
  counts, live-edge count, peak live edges;
* HyperLogLog estimates of distinct left/right vertices and edges ever
  seen (:class:`~repro.sketch.hyperloglog.StreamCardinalityTracker`);
* Count-Min heavy-hitter tracking of the highest-degree vertices per
  side — the hubs that dominate wedge counts and therefore butterfly
  formation.

The profile pairs naturally with an estimator: degree skew explains
per-dataset throughput differences (Section VI-G correlates workload
with butterfly density, which heavy degrees drive), and the live-edge
trajectory explains sampling-rate dynamics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Tuple

from repro.sketch.countmin import HeavyHitterTracker
from repro.sketch.hyperloglog import StreamCardinalityTracker
from repro.types import StreamElement


@dataclass
class StreamProfile:
    """The summary a finished :class:`StreamProfiler` reports.

    Cardinalities are HyperLogLog estimates (relative error ~1-2% at
    the default precision); heavy-hitter degrees are exact from
    promotion onwards and never underestimates before it.
    """

    elements: int
    insertions: int
    deletions: int
    live_edges: int
    peak_live_edges: int
    distinct_left: float
    distinct_right: float
    distinct_edges: float
    top_left: List[Tuple[Hashable, int]] = field(default_factory=list)
    top_right: List[Tuple[Hashable, int]] = field(default_factory=list)

    @property
    def deletion_ratio(self) -> float:
        """Fraction of elements that were deletions (the paper's α
        relates to this by ``alpha = deletions / insertions``)."""
        if self.elements == 0:
            return 0.0
        return self.deletions / self.elements

    @property
    def average_left_degree(self) -> float:
        """Insertions per distinct left vertex (ever-seen basis)."""
        if self.distinct_left == 0:
            return 0.0
        return self.insertions / self.distinct_left

    @property
    def average_right_degree(self) -> float:
        """Insertions per distinct right vertex (ever-seen basis)."""
        if self.distinct_right == 0:
            return 0.0
        return self.insertions / self.distinct_right

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"elements            : {self.elements:,}",
            f"  insertions        : {self.insertions:,}",
            f"  deletions         : {self.deletions:,} "
            f"({self.deletion_ratio:.1%} of elements)",
            f"live edges at end   : {self.live_edges:,} "
            f"(peak {self.peak_live_edges:,})",
            f"distinct left  (~)  : {self.distinct_left:,.0f}",
            f"distinct right (~)  : {self.distinct_right:,.0f}",
            f"distinct edges (~)  : {self.distinct_edges:,.0f}",
            f"avg degree L/R (~)  : {self.average_left_degree:.2f} / "
            f"{self.average_right_degree:.2f}",
        ]
        if self.top_left:
            lines.append("top left hubs       : " + ", ".join(
                f"{v!r}~{d}" for v, d in self.top_left
            ))
        if self.top_right:
            lines.append("top right hubs      : " + ", ".join(
                f"{v!r}~{d}" for v, d in self.top_right
            ))
        return "\n".join(lines)


class StreamProfiler:
    """Bounded-memory, one-pass profiler for fully dynamic streams.

    Args:
        precision: HyperLogLog precision for the cardinality estimates.
        hub_fraction: degree heavy-hitter threshold as a fraction of
            the insertions seen so far (per side).
        rng: randomness for the sketch salts; seed for reproducibility.

    Example:
        >>> from repro.types import insertion
        >>> profiler = StreamProfiler(rng=random.Random(0))
        >>> profiler.observe(insertion("u", "v"))
        >>> profiler.profile().elements
        1
    """

    __slots__ = (
        "_cardinalities",
        "_left_hubs",
        "_right_hubs",
        "_elements",
        "_insertions",
        "_deletions",
        "_live",
        "_peak_live",
        "_top_k",
    )

    def __init__(
        self,
        precision: int = 12,
        hub_fraction: float = 0.01,
        top_k: int = 5,
        rng: Optional[random.Random] = None,
    ) -> None:
        rng = rng or random.Random()
        self._cardinalities = StreamCardinalityTracker(
            precision=precision, rng=rng
        )
        self._left_hubs = HeavyHitterTracker(
            threshold_fraction=hub_fraction, rng=rng
        )
        self._right_hubs = HeavyHitterTracker(
            threshold_fraction=hub_fraction, rng=rng
        )
        self._elements = 0
        self._insertions = 0
        self._deletions = 0
        self._live = 0
        self._peak_live = 0
        self._top_k = top_k

    def observe(self, element: StreamElement) -> None:
        """Feed one stream element."""
        self._elements += 1
        if element.is_insertion:
            self._insertions += 1
            self._live += 1
            if self._live > self._peak_live:
                self._peak_live = self._live
            self._cardinalities.observe(element)
            self._left_hubs.update(element.u)
            self._right_hubs.update(element.v)
        else:
            self._deletions += 1
            self._live -= 1

    def observe_stream(
        self, stream: Iterable[StreamElement]
    ) -> "StreamProfile":
        """Feed a whole stream; return the resulting profile."""
        for element in stream:
            self.observe(element)
        return self.profile()

    def profile(self) -> StreamProfile:
        """Snapshot the current profile (cheap; callable mid-stream)."""
        return StreamProfile(
            elements=self._elements,
            insertions=self._insertions,
            deletions=self._deletions,
            live_edges=self._live,
            peak_live_edges=self._peak_live,
            distinct_left=self._cardinalities.distinct_left(),
            distinct_right=self._cardinalities.distinct_right(),
            distinct_edges=self._cardinalities.distinct_edges(),
            top_left=self._left_hubs.heavy_hitters()[: self._top_k],
            top_right=self._right_hubs.heavy_hitters()[: self._top_k],
        )
