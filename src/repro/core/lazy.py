"""LazyAbacus — a TRIEST-style ablation of ABACUS.

Section VII of the paper contrasts two philosophies from the triangle
literature: TRIEST "plainly discards the edges that are not sampled
without using them for updating its count estimates", while ThinkD (and
ABACUS) "leverages the non-sampled edges to update its estimates before
discarding them".

This module implements the *lazy* (TRIEST-style) variant on top of the
same Random Pairing sampler so the trade-off can be measured:

* An **insertion** refines the count only when Random Pairing *accepts*
  the edge into the sample.  Acceptance is an independent Bernoulli
  draw with a known probability ``q``, so each discovered butterfly is
  weighted by ``1 / (q * p3)`` where ``p3`` is Equation 1.
* A **deletion** refines the count only when the deleted edge *was*
  sampled, which happens with the 4-edge inclusion probability ``p4``;
  discovered butterflies are weighted by ``1 / p4``.

The payoff is doing per-edge counting for only a ``~q`` fraction of
insertions (big work savings when ``k << |E|``); the cost is higher
variance and a known corner-case bias: while ``cb = 0 < cg`` (pending
deletions all missed the sample), Random Pairing accepts *no* new edge,
so butterflies created in that regime are never observed (``q = 0``).
ABACUS's count-every-edge design avoids exactly this — which is the
point of the ablation.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.base import ButterflyEstimator
from repro.core.counting import count_with_sample
from repro.core.probabilities import (
    discovery_probability,
    subset_inclusion_probability,
)
from repro.errors import EstimatorError, SamplingError, StreamError
from repro.sampling.adjacency_sample import GraphSample
from repro.types import Op, StreamElement


class LazyAbacus(ButterflyEstimator):
    """Count butterflies only on sample transitions (TRIEST-style).

    The Random Pairing update is inlined (rather than delegated to
    :class:`~repro.sampling.random_pairing.RandomPairing`) because the
    counting decision must reuse the *same* acceptance draw that decides
    the sample update.

    Args:
        budget: memory budget ``k``.
        seed / rng: randomness source.
    """

    name = "LazyAbacus"

    __slots__ = (
        "budget",
        "sample",
        "num_live_edges",
        "cb",
        "cg",
        "_rng",
        "_estimate",
        "total_work",
        "elements_processed",
        "counted_elements",
    )

    def __init__(
        self,
        budget: int,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if budget < 2:
            raise SamplingError(f"memory budget must be >= 2, got {budget}")
        self.budget = budget
        self.sample = GraphSample()
        self.num_live_edges = 0
        self.cb = 0
        self.cg = 0
        self._rng = rng if rng is not None else random.Random(seed)
        self._estimate = 0.0
        self.total_work = 0
        self.elements_processed = 0
        self.counted_elements = 0

    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def memory_edges(self) -> int:
        return self.sample.num_edges

    @property
    def counting_fraction(self) -> float:
        """Fraction of elements that triggered per-edge counting."""
        if self.elements_processed == 0:
            return 0.0
        return self.counted_elements / self.elements_processed

    def process(self, element: StreamElement) -> float:
        self.elements_processed += 1
        if element.op is Op.INSERT:
            return self._process_insertion(element)
        return self._process_deletion(element)

    # ------------------------------------------------------------------
    # Insertions: count iff the edge is accepted into the sample
    # ------------------------------------------------------------------
    def _process_insertion(self, element: StreamElement) -> float:
        u, v = element.u, element.v
        # Pre-update state for the Equation 1 probability.
        pre_live, pre_cb, pre_cg = self.num_live_edges, self.cb, self.cg
        self.num_live_edges += 1
        uncompensated = self.cb + self.cg
        delta = 0.0
        if uncompensated == 0:
            if self.sample.num_edges < self.budget:
                accept, q = True, 1.0
            else:
                q = self.budget / self.num_live_edges
                accept = self._rng.random() < q
            if accept:
                # Count against S^(t-1) BEFORE the eviction/insertion.
                delta = self._count_and_refine(
                    u, v, sign=1, acceptance_probability=q,
                    pre_state=(pre_live, pre_cb, pre_cg),
                )
                if self.sample.num_edges >= self.budget:
                    self.sample.evict_random_edge(self._rng)
                self.sample.add_edge(u, v)
        else:
            q = self.cb / uncompensated
            if self._rng.random() < q:
                delta = self._count_and_refine(
                    u, v, sign=1, acceptance_probability=q,
                    pre_state=(pre_live, pre_cb, pre_cg),
                )
                self.sample.add_edge(u, v)
                self.cb -= 1
            else:
                self.cg -= 1
        return delta

    # ------------------------------------------------------------------
    # Deletions: count iff the edge was sampled
    # ------------------------------------------------------------------
    def _process_deletion(self, element: StreamElement) -> float:
        u, v = element.u, element.v
        if self.num_live_edges <= 0:
            raise StreamError(
                f"deletion of ({u!r}, {v!r}) with no live edges"
            )
        pre_live, pre_cb, pre_cg = self.num_live_edges, self.cb, self.cg
        self.num_live_edges -= 1
        delta = 0.0
        if self.sample.contains(u, v):
            # The deleted edge and the three butterfly partners must all
            # be sampled: 4-edge inclusion probability on the pre-update
            # state.
            t = pre_live + pre_cb + pre_cg
            y = min(self.budget, t)
            p4 = subset_inclusion_probability(t, y, 4)
            # Count against the sample with the edge still present; the
            # counting core excludes the edge's own endpoints.
            found, work = count_with_sample(self.sample, u, v)
            self.total_work += work
            self.counted_elements += 1
            if found:
                if p4 <= 0.0:
                    raise EstimatorError(
                        "sampled deletion with zero inclusion probability"
                    )
                delta = -found / p4
                self._estimate += delta
            self.sample.remove_edge(u, v)
            self.cb += 1
        else:
            self.cg += 1
        return delta

    def _count_and_refine(
        self,
        u,
        v,
        sign: int,
        acceptance_probability: float,
        pre_state,
    ) -> float:
        pre_live, pre_cb, pre_cg = pre_state
        found, work = count_with_sample(self.sample, u, v)
        self.total_work += work
        self.counted_elements += 1
        if not found:
            return 0.0
        p3 = discovery_probability(pre_live, pre_cb, pre_cg, self.budget)
        joint = acceptance_probability * p3
        if joint <= 0.0:
            raise EstimatorError(
                "butterfly discovered with zero joint probability"
            )
        delta = sign * found / joint
        self._estimate += delta
        return delta
