"""Ensembles of independent estimators for variance reduction.

Theorem 2 bounds a single ABACUS instance's variance; averaging ``r``
independent instances divides that variance by ``r`` while preserving
unbiasedness (each replica is unbiased by Theorem 1, and the mean of
unbiased estimators is unbiased).  The median combiner trades a little
bias for robustness against the heavy upper tail that reciprocal
weighting produces on sparse graphs, and median-of-means gives the
standard exponential concentration at the cost of a small grouping
overhead.

Two memory accountings are supported:

* ``share_budget=False`` (default) — each replica gets the full ``k``;
  total memory is ``r * k``.  The right mode when the question is "how
  much does more memory help".
* ``share_budget=True`` — the budget is split evenly, total memory
  stays ``~k``.  The right mode for a fair comparison against a single
  instance; whether splitting helps depends on the variance curve
  (Theorem 2 is superlinear in ``1/k``, so a single big sample usually
  wins — the ablation benchmark quantifies this).
"""

from __future__ import annotations

import random
import statistics
from typing import Callable, List, Optional

from repro.core.abacus import Abacus
from repro.core.base import ButterflyEstimator
from repro.errors import EstimatorError
from repro.types import StreamElement

#: Signature of a replica factory: gets a replica index and a seeded
#: RNG, returns a fresh estimator.
ReplicaFactory = Callable[[int, random.Random], ButterflyEstimator]

_COMBINERS = ("mean", "median", "median_of_means")


class EnsembleEstimator(ButterflyEstimator):
    """Combine independent replicas of a streaming estimator.

    Args:
        replicas: number of independent instances (>= 1).
        factory: builds replica ``i`` from ``(i, rng)``; defaults to
            plain :class:`~repro.core.abacus.Abacus` with the given
            budget.
        budget: per-replica (or shared, see ``share_budget``) memory
            budget; only used by the default factory.
        combiner: ``"mean"``, ``"median"``, or ``"median_of_means"``.
        groups: number of groups for median-of-means (defaults to
            ``round(sqrt(replicas))``).
        share_budget: split ``budget`` across replicas instead of
            granting it to each.
        seed: master seed; replica RNGs are derived from it.

    Example:
        >>> from repro.types import insertion
        >>> ensemble = EnsembleEstimator(replicas=4, budget=100, seed=7)
        >>> ensemble.process(insertion("a", "x"))
        0.0
        >>> ensemble.estimate
        0.0
    """

    name = "EnsembleAbacus"

    def __init__(
        self,
        replicas: int,
        factory: Optional[ReplicaFactory] = None,
        budget: Optional[int] = None,
        combiner: str = "mean",
        groups: Optional[int] = None,
        share_budget: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        if replicas < 1:
            raise EstimatorError(
                f"an ensemble needs >= 1 replica, got {replicas}"
            )
        if combiner not in _COMBINERS:
            raise EstimatorError(
                f"unknown combiner {combiner!r}; pick one of {_COMBINERS}"
            )
        if factory is None:
            if budget is None:
                raise EstimatorError(
                    "provide either a replica factory or a budget for "
                    "the default Abacus factory"
                )
            per_replica = (
                max(2, budget // replicas) if share_budget else budget
            )

            def factory(index: int, rng: random.Random) -> Abacus:
                return Abacus(per_replica, rng=rng)

        master = random.Random(seed)
        self._members: List[ButterflyEstimator] = [
            factory(i, random.Random(master.getrandbits(64)))
            for i in range(replicas)
        ]
        self.combiner = combiner
        if groups is None:
            groups = max(1, round(replicas ** 0.5))
        if not 1 <= groups <= replicas:
            raise EstimatorError(
                f"groups must be in [1, {replicas}], got {groups}"
            )
        self._groups = groups
        self.elements_processed = 0

    # ------------------------------------------------------------------
    # ButterflyEstimator interface
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> float:
        return self._combine([m.estimate for m in self._members])

    @property
    def memory_edges(self) -> int:
        return sum(m.memory_edges for m in self._members)

    @property
    def replicas(self) -> int:
        return len(self._members)

    @property
    def members(self) -> List[ButterflyEstimator]:
        """The underlying replicas (read-only use intended)."""
        return list(self._members)

    def process(self, element: StreamElement) -> float:
        """Feed the element to every replica; return the combined delta."""
        self.elements_processed += 1
        before = self.estimate
        for member in self._members:
            member.process(element)
        return self.estimate - before

    # ------------------------------------------------------------------
    # Ensemble statistics
    # ------------------------------------------------------------------
    def member_estimates(self) -> List[float]:
        """Each replica's individual estimate."""
        return [m.estimate for m in self._members]

    def spread(self) -> float:
        """Sample standard deviation across replicas (0 for one)."""
        values = self.member_estimates()
        if len(values) < 2:
            return 0.0
        return statistics.stdev(values)

    def standard_error(self) -> float:
        """Estimated standard error of the mean combiner."""
        if len(self._members) < 2:
            return float("inf")
        return self.spread() / (len(self._members) ** 0.5)

    def confidence_interval(self, z: float = 2.0) -> tuple:
        """A ``mean +- z * stderr`` interval (normal approximation)."""
        center = statistics.fmean(self.member_estimates())
        half_width = z * self.standard_error()
        return center - half_width, center + half_width

    def _combine(self, values: List[float]) -> float:
        if self.combiner == "mean":
            return statistics.fmean(values)
        if self.combiner == "median":
            return statistics.median(values)
        # median_of_means: split replicas into contiguous groups.
        group_means = []
        size = len(values) / self._groups
        for g in range(self._groups):
            chunk = values[round(g * size): round((g + 1) * size)]
            if chunk:
                group_means.append(statistics.fmean(chunk))
        return statistics.median(group_means)
