"""The estimator interface shared by ABACUS, PARABACUS, and baselines.

Every estimator ingests a fully dynamic stream element-by-element and
maintains a running butterfly-count estimate.  The common driver,
:meth:`ButterflyEstimator.process_stream`, also supports checkpoint
callbacks, which the experiment harness uses to record error/throughput
trajectories without re-running streams.
"""

from __future__ import annotations

import abc
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.types import StreamElement

# Invoked as callback(elements_processed, estimator) at each checkpoint.
CheckpointCallback = Callable[[int, "ButterflyEstimator"], None]


@runtime_checkable
class StatefulEstimator(Protocol):
    """An estimator whose complete state round-trips through a dict.

    The contract behind the snapshot/restore facilities of
    :mod:`repro.api.session` and :mod:`repro.core.checkpoint`:

    * :meth:`state_to_dict` returns a JSON-serialisable dict capturing
      *everything* — configuration, counters, sampled edges, and RNG
      state — using only public accessors.
    * ``from_state_dict`` (a classmethod) rebuilds an instance that,
      fed the remainder of a stream, produces **bit-identical** results
      to the uninterrupted original.

    Vertex identifiers must be JSON-representable (int or str) for the
    dict to serialise; the library's generators and loaders guarantee
    that.
    """

    def state_to_dict(self) -> Dict[str, Any]:
        """Capture the full estimator state as a JSON-ready dict."""
        ...

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "StatefulEstimator":
        """Rebuild an estimator from :meth:`state_to_dict` output."""
        ...


class ButterflyEstimator(abc.ABC):
    """Abstract streaming butterfly-count estimator."""

    #: Human-readable name used in benchmark tables.
    name: str = "estimator"

    #: Whether :meth:`process_batch` is a genuine fast path for this
    #: class.  Estimators that leave the default element-loop
    #: implementation keep this False; the :mod:`repro.api` layer uses
    #: the flag to decide whether chunked ingestion buys anything.
    supports_batch: bool = False

    #: Whether instances may run as shards of
    #: :class:`repro.shard.engine.ShardedEstimator`.  True by default —
    #: any estimator of this interface handles a partitioned substream;
    #: classes whose semantics do not survive partitioning (e.g.
    #: sGrapp's global window fitting) opt out, and the registry
    #: surfaces the flag as ``Registration.supports_sharding``.
    supports_sharding: bool = True

    #: Whether the estimator *applies* deletion elements.  True for the
    #: fully dynamic estimators; the insert-only baselines (FLEET, CAS,
    #: sGrapp) skip deletions by design and set this False.  The
    #: sliding-window engine refuses inners without it — a window works
    #: by synthesizing deletions, and an inner that drops them would
    #: silently report infinite-window counts.  Surfaced as
    #: ``Registration.supports_windowing``.
    supports_deletions: bool = True

    @abc.abstractmethod
    def process(self, element: StreamElement) -> float:
        """Ingest one stream element.

        Returns:
            The signed change applied to the estimate by this element
            (0.0 when the estimator discovered nothing or, for
            insert-only baselines, when it skipped a deletion).
        """

    @property
    @abc.abstractmethod
    def estimate(self) -> float:
        """The current butterfly count estimate ``c``."""

    @property
    @abc.abstractmethod
    def memory_edges(self) -> int:
        """Number of edges currently held in memory (sample size)."""

    def process_batch(self, batch: Sequence[StreamElement]) -> float:
        """Ingest a contiguous run of stream elements; return the delta.

        The contract — enforced for every implementation by
        ``tests/properties/test_batch_equivalence.py`` — is strict
        observational equivalence with the per-element path: for any
        split of a stream into batches, the estimate, the complete
        ``state_to_dict()`` (where supported), and every consumed
        random draw must be **identical** to calling :meth:`process`
        once per element in order.  Implementations are therefore free
        to reorganise *computation* (vectorized counting, inlined
        loops) but not *observable effects*.

        This default simply loops; subclasses with a real fast path set
        :attr:`supports_batch` and override.

        >>> from repro.core.exact import ExactStreamingCounter
        >>> from repro.types import insertion
        >>> counter = ExactStreamingCounter()
        >>> counter.process_batch([insertion("u1", "v1"), insertion("u1", "v2"),
        ...                        insertion("u2", "v1"), insertion("u2", "v2")])
        1.0
        >>> counter.estimate
        1.0
        """
        process = self.process
        total = 0.0
        for element in batch:
            total += process(element)
        return total

    def process_stream(
        self,
        stream: Iterable[StreamElement],
        checkpoints: Optional[List[int]] = None,
        on_checkpoint: Optional[CheckpointCallback] = None,
    ) -> float:
        """Ingest a whole stream; return the final estimate.

        Args:
            stream: stream elements in arrival order.
            checkpoints: element counts at which to invoke
                ``on_checkpoint`` (e.g. every 10% for Fig. 7).  The
                list need not be sorted; duplicate values fire the
                callback once *per listed entry*.
            on_checkpoint: callback receiving (elements_processed, self).
        """
        # Sort ascending then pop from the end, so unsorted inputs fire
        # at the right element counts and duplicates each get a call.
        pending = sorted(checkpoints, reverse=True) if checkpoints else []
        processed = 0
        for element in stream:
            self.process(element)
            processed += 1
            while pending and processed >= pending[-1]:
                mark = pending.pop()
                if on_checkpoint is not None:
                    on_checkpoint(mark, self)
        return self.estimate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(estimate={self.estimate:.1f})"
