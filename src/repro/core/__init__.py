"""Core estimators: ABACUS, PARABACUS, and the exact streaming oracle."""

from repro.core.abacus import Abacus
from repro.core.base import ButterflyEstimator, StatefulEstimator
from repro.core.checkpoint import (
    abacus_from_dict,
    abacus_to_dict,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.ensemble import EnsembleEstimator
from repro.core.exact import ExactStreamingCounter
from repro.core.lazy import LazyAbacus
from repro.core.local import AbacusLocal
from repro.core.parabacus import Parabacus
from repro.core.support import AbacusSupport
from repro.core.probabilities import (
    chebyshev_bound,
    discovery_probability,
    extrapolation_factor,
    subset_inclusion_probability,
    variance_closed_form,
    variance_upper_bound,
)

__all__ = [
    "Abacus",
    "AbacusLocal",
    "AbacusSupport",
    "EnsembleEstimator",
    "LazyAbacus",
    "Parabacus",
    "ButterflyEstimator",
    "StatefulEstimator",
    "ExactStreamingCounter",
    "abacus_to_dict",
    "abacus_from_dict",
    "save_checkpoint",
    "load_checkpoint",
    "discovery_probability",
    "subset_inclusion_probability",
    "extrapolation_factor",
    "variance_closed_form",
    "variance_upper_bound",
    "chebyshev_bound",
]
