"""Per-edge butterfly counting against a sample (Algorithm 1, lines 7-11).

Given an incoming edge ``{u, v}``, count the butterflies it forms with
the sampled edges.  A butterfly ``{u, v, w, x}`` is discovered through
the sample iff its other three edges ``{u, w}``, ``{x, v}``, ``{x, w}``
are all sampled, which the algorithm detects with one set intersection
per sampled neighbour ``w`` of the chosen endpoint.

Two flavours are provided:

* :func:`count_with_sample` — against a live :class:`GraphSample`
  (used by ABACUS and, with the scaling adapted, by FLEET).
* :func:`count_with_versioned_sample` — against one version of a
  :class:`VersionedGraphSample` (used by PARABACUS's parallel phase).

Both return ``(count, work)`` where ``work`` is the number of element
checks performed inside set intersections — the exact per-thread
workload metric the paper plots in Figure 10.

The *cheapest-side heuristic* (line 7 of Algorithm 1) explores the
endpoint whose sampled neighbours have the smaller cumulative sample
degree; it can be disabled for the ablation study.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.sampling.adjacency_sample import GraphSample
from repro.sampling.ndadjacency import NUMPY_AVAILABLE, NdAdjacency
from repro.sampling.versioned import VersionedGraphSample
from repro.types import Vertex

if NUMPY_AVAILABLE:
    import numpy as np

#: Below this combined endpoint degree the vectorized kernel defers to
#: the scalar one: a handful of set probes beats the fixed cost of the
#: array calls.  Both kernels are exact, so the cutoff only moves work
#: between implementations — results are identical on either side.
VECTOR_CUTOFF = 16


def count_with_sample(
    sample: GraphSample,
    u: Vertex,
    v: Vertex,
    cheapest_side: bool = True,
) -> Tuple[int, int]:
    """Butterflies the edge ``{u, v}`` forms with sampled edges.

    Args:
        sample: the sampled subgraph ``S``.
        u: left endpoint of the incoming edge.
        v: right endpoint.
        cheapest_side: apply the cumulative-degree side selection
            (disable only for ablations).

    Returns:
        ``(count, work)`` — discovered butterflies and intersection
        element checks.
    """
    neighbors_u = sample.neighbors(u)
    neighbors_v = sample.neighbors(v)
    if not neighbors_u or not neighbors_v:
        return 0, 0
    if cheapest_side:
        cumulative_u = sample.degree_sum(neighbors_u)
        cumulative_v = sample.degree_sum(neighbors_v)
        explore_u_side = cumulative_u < cumulative_v
    else:
        explore_u_side = True
    if explore_u_side:
        anchors, opposite = neighbors_u, neighbors_v
        skip_anchor, skip_common = v, u
    else:
        anchors, opposite = neighbors_v, neighbors_u
        skip_anchor, skip_common = u, v
    count = 0
    work = 0
    for w in anchors:
        if w == skip_anchor:
            continue
        neighbors_w = sample.neighbors(w)
        if len(neighbors_w) <= len(opposite):
            small, large = neighbors_w, opposite
        else:
            small, large = opposite, neighbors_w
        work += len(small)
        for x in small:
            if x != skip_common and x in large:
                count += 1
    return count, work


def count_with_mirror(
    mirror: NdAdjacency,
    sample: GraphSample,
    u: Vertex,
    v: Vertex,
    cheapest_side: bool = True,
) -> Tuple[int, int]:
    """Vectorized :func:`count_with_sample` over an in-sync mirror.

    Replaces the per-pair Python loops with array operations on the
    mirror's sorted neighbour-id rows:

    * side selection — one fancy-indexed degree sum per endpoint,
    * the per-anchor intersections — mark the opposite row in the
      mirror's boolean scratch mask, then count all anchors'
      concatenated neighbours through one boolean gather,
    * the work metric — ``min(deg(w), |opposite|)`` summed in one
      vectorized ``minimum``.

    The ``x != skip_common`` exclusion of the scalar loop collapses to
    a closed form: the explored endpoint is adjacent to every anchor by
    construction, so it is over-counted once per anchor exactly when
    the arriving edge itself is currently sampled.

    ``mirror`` must reflect ``sample`` (same :attr:`GraphSample.version`);
    the estimators' batch engines maintain that invariant.  Returns the
    same ``(count, work)`` the scalar kernel would, bit for bit.
    """
    uid = mirror.id_of(u)
    vid = mirror.id_of(v)
    if uid is None or vid is None:
        return 0, 0
    rows = mirror.rows
    row_u = rows[uid]
    row_v = rows[vid]
    size_u = row_u.shape[0]
    size_v = row_v.shape[0]
    if size_u == 0 or size_v == 0:
        return 0, 0
    if size_u + size_v < VECTOR_CUTOFF:
        return count_with_sample(sample, u, v, cheapest_side=cheapest_side)
    degrees = mirror.degrees
    if cheapest_side:
        explore_u_side = degrees.take(row_u).sum() < degrees.take(row_v).sum()
    else:
        explore_u_side = True
    if explore_u_side:
        anchors, opposite, skip_id = row_u, row_v, vid
    else:
        anchors, opposite, skip_id = row_v, row_u, uid
    # The explored endpoint neighbours every anchor, so the scalar
    # loop's skip_anchor/skip_common exclusions only ever fire when the
    # arriving edge itself is sampled ({u, v} in S): then the opposite
    # endpoint must leave the anchor set and the explored endpoint is
    # over-counted once per remaining anchor.
    edge_sampled = sample.contains(u, v)
    if edge_sampled:
        anchors = anchors[anchors != skip_id]
        if anchors.shape[0] == 0:
            return 0, 0
    work = int(np.minimum(degrees.take(anchors), opposite.shape[0]).sum())
    flat = np.concatenate([rows[w] for w in anchors.tolist()])
    mask = mirror.scratch_mask
    mask[opposite] = True
    count = int(np.count_nonzero(mask.take(flat)))
    mask[opposite] = False
    if edge_sampled:
        count -= int(anchors.shape[0])
    return count, work


def count_with_versioned_sample(
    versioned: VersionedGraphSample,
    version: int,
    u: Vertex,
    v: Vertex,
    cheapest_side: bool = True,
) -> Tuple[int, int]:
    """Same as :func:`count_with_sample`, at one sample version.

    Materialises the (few) neighbour sets it needs from the delta-coded
    versioned sample; safe to call concurrently from several threads
    once the sequential phase has finished.
    """
    neighbors_u: Set[Vertex] = versioned.neighbors_at(u, version)
    neighbors_v: Set[Vertex] = versioned.neighbors_at(v, version)
    if not neighbors_u or not neighbors_v:
        return 0, 0
    if cheapest_side:
        cumulative_u = versioned.degree_sum_at(neighbors_u, version)
        cumulative_v = versioned.degree_sum_at(neighbors_v, version)
        explore_u_side = cumulative_u < cumulative_v
    else:
        explore_u_side = True
    if explore_u_side:
        anchors, opposite = neighbors_u, neighbors_v
        skip_anchor, skip_common = v, u
    else:
        anchors, opposite = neighbors_v, neighbors_u
        skip_anchor, skip_common = u, v
    count = 0
    work = 0
    for w in anchors:
        if w == skip_anchor:
            continue
        neighbors_w = versioned.neighbors_at(w, version)
        if len(neighbors_w) <= len(opposite):
            small, large = neighbors_w, opposite
        else:
            small, large = opposite, neighbors_w
        work += len(small)
        for x in small:
            if x != skip_common and x in large:
                count += 1
    return count, work
