"""Per-edge butterfly counting against a sample (Algorithm 1, lines 7-11).

Given an incoming edge ``{u, v}``, count the butterflies it forms with
the sampled edges.  A butterfly ``{u, v, w, x}`` is discovered through
the sample iff its other three edges ``{u, w}``, ``{x, v}``, ``{x, w}``
are all sampled, which the algorithm detects with one set intersection
per sampled neighbour ``w`` of the chosen endpoint.

Two flavours are provided:

* :func:`count_with_sample` — against a live :class:`GraphSample`
  (used by ABACUS and, with the scaling adapted, by FLEET).
* :func:`count_with_versioned_sample` — against one version of a
  :class:`VersionedGraphSample` (used by PARABACUS's parallel phase).

Both return ``(count, work)`` where ``work`` is the number of element
checks performed inside set intersections — the exact per-thread
workload metric the paper plots in Figure 10.

The *cheapest-side heuristic* (line 7 of Algorithm 1) explores the
endpoint whose sampled neighbours have the smaller cumulative sample
degree; it can be disabled for the ablation study.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.sampling.adjacency_sample import GraphSample
from repro.sampling.versioned import VersionedGraphSample
from repro.types import Vertex


def count_with_sample(
    sample: GraphSample,
    u: Vertex,
    v: Vertex,
    cheapest_side: bool = True,
) -> Tuple[int, int]:
    """Butterflies the edge ``{u, v}`` forms with sampled edges.

    Args:
        sample: the sampled subgraph ``S``.
        u: left endpoint of the incoming edge.
        v: right endpoint.
        cheapest_side: apply the cumulative-degree side selection
            (disable only for ablations).

    Returns:
        ``(count, work)`` — discovered butterflies and intersection
        element checks.
    """
    neighbors_u = sample.neighbors(u)
    neighbors_v = sample.neighbors(v)
    if not neighbors_u or not neighbors_v:
        return 0, 0
    if cheapest_side:
        cumulative_u = sample.degree_sum(neighbors_u)
        cumulative_v = sample.degree_sum(neighbors_v)
        explore_u_side = cumulative_u < cumulative_v
    else:
        explore_u_side = True
    if explore_u_side:
        anchors, opposite = neighbors_u, neighbors_v
        skip_anchor, skip_common = v, u
    else:
        anchors, opposite = neighbors_v, neighbors_u
        skip_anchor, skip_common = u, v
    count = 0
    work = 0
    for w in anchors:
        if w == skip_anchor:
            continue
        neighbors_w = sample.neighbors(w)
        if len(neighbors_w) <= len(opposite):
            small, large = neighbors_w, opposite
        else:
            small, large = opposite, neighbors_w
        work += len(small)
        for x in small:
            if x != skip_common and x in large:
                count += 1
    return count, work


def count_with_versioned_sample(
    versioned: VersionedGraphSample,
    version: int,
    u: Vertex,
    v: Vertex,
    cheapest_side: bool = True,
) -> Tuple[int, int]:
    """Same as :func:`count_with_sample`, at one sample version.

    Materialises the (few) neighbour sets it needs from the delta-coded
    versioned sample; safe to call concurrently from several threads
    once the sequential phase has finished.
    """
    neighbors_u: Set[Vertex] = versioned.neighbors_at(u, version)
    neighbors_v: Set[Vertex] = versioned.neighbors_at(v, version)
    if not neighbors_u or not neighbors_v:
        return 0, 0
    if cheapest_side:
        cumulative_u = versioned.degree_sum_at(neighbors_u, version)
        cumulative_v = versioned.degree_sum_at(neighbors_v, version)
        explore_u_side = cumulative_u < cumulative_v
    else:
        explore_u_side = True
    if explore_u_side:
        anchors, opposite = neighbors_u, neighbors_v
        skip_anchor, skip_common = v, u
    else:
        anchors, opposite = neighbors_v, neighbors_u
        skip_anchor, skip_common = u, v
    count = 0
    work = 0
    for w in anchors:
        if w == skip_anchor:
            continue
        neighbors_w = versioned.neighbors_at(w, version)
        if len(neighbors_w) <= len(opposite):
            small, large = neighbors_w, opposite
        else:
            small, large = opposite, neighbors_w
        work += len(small)
        for x in small:
            if x != skip_common and x in large:
                count += 1
    return count, work
