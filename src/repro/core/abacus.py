"""ABACUS — Algorithm 1 of the paper.

For each arriving element ``({u, v}, delta)``:

1. Count the butterflies the edge forms with the current sample via
   set intersections, exploring the cheaper endpoint side.
2. Refine the estimate by ``sgn(delta) * found / Pr(|E|, cb, cg)``
   where the discovery probability (Equation 1) is evaluated on the
   sampler state *before* this element's update.
3. Hand the element to Random Pairing to update the sample.

The estimator is unbiased (Theorem 1) with the bounded variance of
Theorem 2; see ``tests/core/test_unbiasedness.py`` for the empirical
verification.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.base import ButterflyEstimator
from repro.core.counting import (
    VECTOR_CUTOFF,
    count_with_mirror,
    count_with_sample,
)
from repro.core.probabilities import discovery_probability
from repro.errors import EstimatorError
from repro.sampling.ndadjacency import NUMPY_AVAILABLE, NdAdjacency
from repro.sampling.random_pairing import RandomPairing
from repro.types import StreamElement


class Abacus(ButterflyEstimator):
    """Approximate butterfly counting for fully dynamic streams.

    Args:
        budget: memory budget ``k`` — the maximum sampled edges (>= 2;
            butterflies only become discoverable with >= 3).
        seed: convenience seed for a private ``random.Random``.
        rng: alternatively, an explicit randomness source (overrides
            ``seed``); sharing a seeded RNG with a PARABACUS instance
            reproduces Theorem 5's exact-equality experimentally.
        cheapest_side: apply the cumulative-degree side-selection
            heuristic (Algorithm 1, line 7).  Disable for ablation only;
            results are identical, performance differs.
        naive_increment: ablation switch — ignore the compensation
            counters in Equation 1 (pretend ``cb = cg = 0``).  This
            mimics what a deletion-unaware weighting would do and is
            *biased* under deletions.

    Attributes:
        total_work: cumulative set-intersection element checks.
        elements_processed: stream elements ingested so far.
    """

    name = "Abacus"
    supports_batch = True

    __slots__ = (
        "_sampler",
        "_estimate",
        "_cheapest_side",
        "_naive_increment",
        "_mirror",
        "total_work",
        "elements_processed",
    )

    def __init__(
        self,
        budget: int,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        cheapest_side: bool = True,
        naive_increment: bool = False,
    ) -> None:
        if rng is None:
            rng = random.Random(seed)
        self._sampler = RandomPairing(budget, rng)
        self._estimate = 0.0
        self._cheapest_side = cheapest_side
        self._naive_increment = naive_increment
        self._mirror: Optional[NdAdjacency] = None
        self.total_work = 0
        self.elements_processed = 0

    # ------------------------------------------------------------------
    # ButterflyEstimator interface
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def memory_edges(self) -> int:
        return self._sampler.sample.num_edges

    @property
    def sampler(self) -> RandomPairing:
        """The underlying Random Pairing sampler (read-mostly)."""
        return self._sampler

    @property
    def budget(self) -> int:
        return self._sampler.budget

    @property
    def cheapest_side(self) -> bool:
        """Whether the side-selection heuristic is enabled."""
        return self._cheapest_side

    @property
    def naive_increment(self) -> bool:
        """Whether the deletion-unaware ablation weighting is enabled."""
        return self._naive_increment

    def process(self, element: StreamElement) -> float:
        """Algorithm 1, lines 4-14, for one element."""
        self.elements_processed += 1
        found, work = count_with_sample(
            self._sampler.sample,
            element.u,
            element.v,
            cheapest_side=self._cheapest_side,
        )
        self.total_work += work
        delta = 0.0
        if found:
            probability = self._discovery_probability()
            if probability <= 0.0:
                raise EstimatorError(
                    "discovered a butterfly with zero discovery probability; "
                    "sampler state is inconsistent"
                )
            delta = element.op.sign * found / probability
            self._estimate += delta
        self._sampler.process(element)
        return delta

    def process_batch(self, batch: Sequence[StreamElement]) -> float:
        """Vectorized batch ingest, bit-identical to per-element.

        Counting for each element must see the sample state *after*
        every earlier element's update, and the acceptance draws are
        state-dependent, so the sampler updates stay interleaved in
        arrival order — exactly the draw sequence the per-element path
        consumes.  The throughput comes from the counting side: each
        element's butterfly delta is computed by the vectorized
        :func:`~repro.core.counting.count_with_mirror` kernel over a
        NumPy adjacency mirror that tracks the (rarely mutating) sample
        incrementally, instead of per-pair Python set loops.

        The mirror only pays for itself when sampled neighbourhoods are
        big enough for array operations to beat set probes, so each
        batch starts with a density check: below the vectorization
        cutoff the batch runs as a tight scalar loop with no mirror
        maintenance at all (the mirror resyncs by version when density
        returns).  Either way every observable effect — estimate,
        sampler state, RNG draws, work counters — is identical to the
        per-element path.  Without NumPy this falls back to the
        base-class element loop.
        """
        if not NUMPY_AVAILABLE:
            return super().process_batch(batch)
        sampler = self._sampler
        sample = sampler.sample
        # Mean sampled degree >= the cutoff means a typical query's two
        # endpoint rows together clear it twice over — comfortably in
        # the regime where the array kernel beats set probes.
        num_vertices = sample.num_vertices
        use_mirror = (
            num_vertices > 0
            and 2 * sample.num_edges >= VECTOR_CUTOFF * num_vertices
        )
        mirror = None
        if use_mirror:
            mirror = self._mirror
            if mirror is None:
                mirror = self._mirror = NdAdjacency()
            mirror.sync(sample)
        cheapest_side = self._cheapest_side
        naive = self._naive_increment
        budget = sampler.budget
        estimate = self._estimate
        total_work = self.total_work
        processed = self.elements_processed
        total = 0.0
        try:
            for element in batch:
                processed += 1
                if mirror is not None:
                    found, work = count_with_mirror(
                        mirror, sample, element.u, element.v, cheapest_side
                    )
                else:
                    found, work = count_with_sample(
                        sample, element.u, element.v, cheapest_side
                    )
                total_work += work
                if found:
                    if naive:
                        probability = discovery_probability(
                            sampler.num_live_edges, 0, 0, budget
                        )
                    else:
                        probability = discovery_probability(
                            sampler.num_live_edges,
                            sampler.cb,
                            sampler.cg,
                            budget,
                        )
                    if probability <= 0.0:
                        raise EstimatorError(
                            "discovered a butterfly with zero discovery "
                            "probability; sampler state is inconsistent"
                        )
                    delta = element.op.sign * found / probability
                    estimate += delta
                    total += delta
                mutations = sampler.process(element)
                if mirror is not None and mutations:
                    mirror.apply(mutations)
        finally:
            self._estimate = estimate
            self.total_work = total_work
            self.elements_processed = processed
        return total

    @property
    def can_resize(self) -> bool:
        """True when the sampler is at a resize-safe (clean) point."""
        return self._sampler.can_resize

    def shrink_budget(self, new_budget: int) -> int:
        """Adapt to memory pressure: reduce ``k`` mid-stream.

        Uniformly evicts down to ``new_budget`` (see
        :meth:`repro.sampling.random_pairing.RandomPairing
        .shrink_budget`).  Only legal at a clean point
        (:attr:`can_resize`); there the running estimate stays
        unbiased: past refinements used the probabilities valid when
        they were made, and future ones use Equation 1 with the new
        ``k`` over the still-uniform sample.  Accuracy from here on
        matches a ``new_budget`` estimator — variance grows, bias does
        not.

        Returns:
            The number of sampled edges evicted.

        Raises:
            SamplingError: outside the clean state or on an invalid
                target budget.
        """
        return self._sampler.shrink_budget(new_budget)

    # ------------------------------------------------------------------
    # StatefulEstimator protocol
    # ------------------------------------------------------------------
    def state_to_dict(self) -> dict:
        """Capture the complete estimator state (JSON-serialisable).

        ABACUS's entire state is small — the sampler state (sampled
        edges, compensation counters, live-edge count, RNG state) plus
        the running estimate and work counters — so it serialises to a
        compact dict.  Restoring via :meth:`from_state_dict` continues
        bit-identically.
        """
        state = self._sampler.state_to_dict()
        state.update(
            {
                "estimate": self._estimate,
                "total_work": self.total_work,
                "elements_processed": self.elements_processed,
                "cheapest_side": self._cheapest_side,
                "naive_increment": self._naive_increment,
            }
        )
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "Abacus":
        """Rebuild an :class:`Abacus` from :meth:`state_to_dict` output."""
        estimator = cls(
            state["budget"],
            cheapest_side=state["cheapest_side"],
            naive_increment=state["naive_increment"],
        )
        estimator._sampler.restore_state(state)
        estimator._estimate = state["estimate"]
        estimator.total_work = state["total_work"]
        estimator.elements_processed = state["elements_processed"]
        return estimator

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _discovery_probability(self) -> float:
        s = self._sampler
        if self._naive_increment:
            return discovery_probability(s.num_live_edges, 0, 0, s.budget)
        return discovery_probability(s.num_live_edges, s.cb, s.cg, s.budget)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Abacus(k={self._sampler.budget}, "
            f"estimate={self._estimate:.1f}, "
            f"|S|={self._sampler.sample.num_edges})"
        )
