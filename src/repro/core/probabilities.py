"""The paper's probability and variance formulas (Section IV).

Everything here is a pure function of the sampler state, kept separate
from the estimators so the theory can be unit-tested against brute-force
enumeration and reused by the benchmark harness.

Key quantities:

* Equation 1 — the probability that the three *other* edges of a
  butterfly are all in the Random Pairing sample:

      Pr(|E|, cb, cg) = y/T * (y-1)/(T-1) * (y-2)/(T-2)

  with ``T = |E| + cb + cg`` and ``y = min(k, T)``.

* Theorem 2 — the closed-form variance of the ABACUS estimate and its
  tight upper bound, both expressed through hypergeometric inclusion
  probabilities ``C(|E|-j, k-j) / C(|E|, k)``.

* Corollary 1 — Chebyshev concentration.
"""

from __future__ import annotations

from repro.errors import EstimatorError


def subset_inclusion_probability(
    population: int, sample_size: int, j: int
) -> float:
    """P(j specific items are all in a uniform size-``sample_size`` sample.

    Equals ``C(population - j, sample_size - j) / C(population,
    sample_size)``, computed as the stable telescoping product
    ``prod_{i<j} (sample_size - i) / (population - i)`` to avoid huge
    binomials.

    Returns 0.0 when ``sample_size < j`` and 1.0 when ``j == 0``.
    """
    if j < 0:
        raise EstimatorError(f"j must be >= 0, got {j}")
    if j == 0:
        return 1.0
    if sample_size < j or population < j:
        return 0.0
    probability = 1.0
    for i in range(j):
        probability *= (sample_size - i) / (population - i)
    return probability


def discovery_probability(
    num_live_edges: int, cb: int, cg: int, budget: int
) -> float:
    """Equation 1: probability of discovering a butterfly via the sample.

    A butterfly affected by the incoming edge ``{u, v}`` is discovered
    iff its three other edges are all sampled; under Random Pairing the
    sample is a uniform ``y``-subset of a ``T``-item population with
    ``T = |E| + cb + cg`` and ``y = min(k, T)``.

    Args:
        num_live_edges: ``|E|`` — stream edges not yet deleted, *before*
            the incoming element's sample update.
        cb: uncompensated sampled ("bad") deletions.
        cg: uncompensated unsampled ("good") deletions.
        budget: the memory budget ``k``.

    Returns:
        The discovery probability; 0.0 whenever fewer than three edges
        can be sampled (no butterfly is then discoverable).
    """
    t = num_live_edges + cb + cg
    y = min(budget, t)
    return subset_inclusion_probability(t, y, 3)


def extrapolation_factor(num_edges: int, budget: int) -> float:
    """``gamma = C(|E|, k) / C(|E|-4, k-4)`` from Theorem 2.

    The reciprocal of the probability that all four edges of a butterfly
    are simultaneously sampled; ``E[c] = gamma * E[#butterflies in S]``.
    """
    p4 = subset_inclusion_probability(num_edges, min(budget, num_edges), 4)
    if p4 == 0.0:
        raise EstimatorError(
            f"gamma undefined: cannot sample 4 edges with |E|={num_edges}, "
            f"k={budget}"
        )
    return 1.0 / p4


def variance_closed_form(
    expected: float,
    num_edges: int,
    budget: int,
    pairs_sharing_0: int,
    pairs_sharing_1: int,
    pairs_sharing_2: int,
) -> float:
    """Theorem 2's closed-form variance of the ABACUS estimate.

    Args:
        expected: ``E[c]`` — the true butterfly count (unbiasedness).
        num_edges: ``|E|`` live edges.
        budget: sample budget ``k``.
        pairs_sharing_0: ``y1`` — butterfly pairs sharing no edge
            (8 distinct edges).
        pairs_sharing_1: ``y2`` — pairs sharing one edge (7 edges).
        pairs_sharing_2: ``y3`` — pairs sharing two edges (6 edges).
    """
    k = min(budget, num_edges)
    gamma = extrapolation_factor(num_edges, budget)
    p8 = subset_inclusion_probability(num_edges, k, 8)
    p7 = subset_inclusion_probability(num_edges, k, 7)
    p6 = subset_inclusion_probability(num_edges, k, 6)
    cross = (
        pairs_sharing_0 * p8 + pairs_sharing_1 * p7 + pairs_sharing_2 * p6
    )
    return gamma * expected - expected**2 + 2.0 * gamma**2 * cross


def variance_upper_bound(
    expected: float, num_edges: int, budget: int
) -> float:
    """Theorem 2's tight upper bound on the variance.

        Var[c] <= gamma*E[c] + 2*gamma^2 * C(E[c],2) * p6 - E[c]^2

    where ``p6`` is the inclusion probability of six specific edges.
    """
    k = min(budget, num_edges)
    gamma = extrapolation_factor(num_edges, budget)
    p6 = subset_inclusion_probability(num_edges, k, 6)
    pair_count = expected * (expected - 1.0) / 2.0
    return gamma * expected + 2.0 * gamma**2 * pair_count * p6 - expected**2


def chebyshev_bound(lam: float) -> float:
    """Corollary 1: P(|c - E[c]| >= lam * sqrt(Var[c])) <= 1 / lam^2."""
    if lam <= 0:
        raise EstimatorError(f"lambda must be positive, got {lam}")
    return min(1.0, 1.0 / (lam * lam))
