"""Per-edge butterfly support estimation on fully dynamic streams.

The paper motivates butterfly counting through k-bitruss computation
(Section I), which needs the butterfly count *of each edge* (its
*support*).  The exact decomposition in :mod:`repro.graph.bitruss`
requires the whole graph; this module provides the streaming analogue:
an ABACUS variant that additionally maintains unbiased support
estimates for a (bounded) watch set of edges.

The estimator applies the Theorem 1 argument per edge.  When a
butterfly ``{u, v, w, x}`` is discovered by the arrival of element
``({u, v}, delta)`` — i.e. its other three edges are all in the sample
— the discovery probability is ``Pr(|E|, cb, cg)`` of Equation 1, so
crediting ``sgn(delta)/Pr`` to each of the butterfly's four edges makes
every watched edge's estimate unbiased for its true support, by
linearity of expectation over the butterflies that contain it.

Combined with a support threshold this yields
:func:`approximate_k_bitruss_edges` — a streaming pre-image of the
k-bitruss: the watched edges whose estimated support clears ``k``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.base import ButterflyEstimator
from repro.core.probabilities import discovery_probability
from repro.errors import EstimatorError
from repro.sampling.random_pairing import RandomPairing
from repro.types import Edge, StreamElement

PHANTOM_SUPPORT_EPSILON = 1e-9


class AbacusSupport(ButterflyEstimator):
    """ABACUS with per-edge butterfly support estimates.

    Args:
        budget: memory budget ``k`` for the edge sample.
        watch: edges (as ``(left, right)`` tuples) whose support to
            maintain; ``None`` watches every edge that ever appears in
            a discovered butterfly (memory then grows with the touched
            edge count — fine for analysis, not for production).
        seed / rng: randomness as in :class:`~repro.core.abacus.Abacus`.

    Example:
        >>> from repro.types import insertion
        >>> est = AbacusSupport(budget=100, watch={("a", "x")}, seed=1)
        >>> est.process(insertion("a", "x"))
        0.0
        >>> est.support_estimate(("a", "x"))
        0.0
    """

    name = "AbacusSupport"

    def __init__(
        self,
        budget: int,
        watch: Optional[Iterable[Edge]] = None,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rng is None:
            rng = random.Random(seed)
        self._sampler = RandomPairing(budget, rng)
        self._estimate = 0.0
        self._watch: Optional[Set[Edge]] = (
            set(watch) if watch is not None else None
        )
        self._support: Dict[Edge, float] = {}
        self.elements_processed = 0
        self.total_work = 0

    # ------------------------------------------------------------------
    # ButterflyEstimator interface
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def memory_edges(self) -> int:
        return self._sampler.sample.num_edges

    @property
    def sampler(self) -> RandomPairing:
        return self._sampler

    def support_estimate(self, edge: Edge) -> float:
        """The edge's estimated butterfly support.

        Raises:
            EstimatorError: when a watch set is configured and the edge
                is not in it (its support was never tracked).
        """
        if self._watch is not None and edge not in self._watch:
            raise EstimatorError(f"edge {edge!r} is not in the watch set")
        return self._support.get(edge, 0.0)

    def support_estimates(self) -> Dict[Edge, float]:
        """Snapshot of all maintained per-edge support estimates."""
        return dict(self._support)

    def top_edges(self, limit: int = 10) -> List[Tuple[Edge, float]]:
        """Watched edges with the largest estimated support."""
        ranked = sorted(
            self._support.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:limit]

    def approximate_k_bitruss_edges(self, k: float) -> List[Edge]:
        """Watched edges whose estimated support is at least ``k``.

        A streaming surrogate for k-bitruss membership.  Note this is
        the *global*-support notion (butterflies in the whole graph),
        an upper bound on the within-subgraph support the exact
        decomposition peels by, so the result over-approximates the
        true k-bitruss edge set.
        """
        return [e for e, s in self._support.items() if s >= k]

    def process(self, element: StreamElement) -> float:
        """Discover butterflies and credit all four member edges."""
        self.elements_processed += 1
        sampler = self._sampler
        sample = sampler.sample
        u, v = element.u, element.v
        neighbors_u = sample.neighbors(u)
        neighbors_v = sample.neighbors(v)
        delta = 0.0
        if neighbors_u and neighbors_v:
            if sample.degree_sum(neighbors_u) < sample.degree_sum(
                neighbors_v
            ):
                # Anchors are sampled neighbours of u: right vertices.
                anchors, opposite = neighbors_u, neighbors_v
                anchors_of_u = True
                skip_anchor, skip_common = v, u
            else:
                anchors, opposite = neighbors_v, neighbors_u
                anchors_of_u = False
                skip_anchor, skip_common = u, v
            probability: Optional[float] = None
            sign = element.op.sign
            for w in anchors:
                if w == skip_anchor:
                    continue
                neighbors_w = sample.neighbors(w)
                if len(neighbors_w) <= len(opposite):
                    small, large = neighbors_w, opposite
                else:
                    small, large = opposite, neighbors_w
                self.total_work += len(small)
                for x in small:
                    if x == skip_common or x not in large:
                        continue
                    if probability is None:
                        probability = discovery_probability(
                            sampler.num_live_edges,
                            sampler.cb,
                            sampler.cg,
                            sampler.budget,
                        )
                        if probability <= 0.0:
                            raise EstimatorError(
                                "butterfly discovered with zero probability"
                            )
                    increment = sign / probability
                    delta += increment
                    if anchors_of_u:
                        # w right, x left: edges (u,v),(u,w),(x,v),(x,w).
                        members = ((u, v), (u, w), (x, v), (x, w))
                    else:
                        # w left, x right: edges (u,v),(w,v),(w,x),(u,x).
                        members = ((u, v), (w, v), (w, x), (u, x))
                    for edge in members:
                        self._credit(edge, increment)
            self._estimate += delta
        sampler.process(element)
        return delta

    def prune(self, floor: float = PHANTOM_SUPPORT_EPSILON) -> int:
        """Drop tracked edges whose estimate fell to ``<= floor``.

        Deletions drive supports back toward zero; pruning keeps the
        watch-all mode's memory proportional to the *live* butterfly
        structure.  Returns the number of entries removed.
        """
        victims = [e for e, s in self._support.items() if s <= floor]
        for edge in victims:
            del self._support[edge]
        return len(victims)

    def _credit(self, edge: Edge, increment: float) -> None:
        if self._watch is None or edge in self._watch:
            self._support[edge] = self._support.get(edge, 0.0) + increment
