"""PARABACUS — mini-batch parallel ABACUS (Section V).

Processing of each mini-batch of ``M`` elements has three phases:

1. **Sequential versioning** — replay the batch through Random Pairing,
   recording per-version sample deltas and the ``(|E|, cb, cg)`` triplet
   each element observed.  O(1) amortised work per element.
2. **Parallel per-edge counting** — partition the batch into
   ``num_threads`` contiguous chunks; each worker counts the butterflies
   its elements form with *their* sample version and multiplies by the
   Equation 1 increment computed from the cached triplet, producing a
   partial (signed) count.
3. **Consolidation** — the partial counts are summed into the running
   estimate; the live sample already sits at the post-batch state, which
   becomes version ``S_0`` of the next batch.

Because phase 1 consumes randomness in exactly the order ABACUS would
and phase 2 computes exactly ABACUS's per-element increments, PARABACUS
produces *identical* estimates to an ABACUS driven by the same seeded
RNG (Theorem 5) — a property the test-suite asserts.

CPython's GIL prevents real speedup from threads for this CPU-bound
inner loop, so besides wall-clock the implementation meters each
worker's *workload* (set-intersection element checks, the paper's
Fig. 10 metric) and exposes the deterministic work-model speedup used by
the Figure 8/9 benchmarks; see DESIGN.md substitution #2.
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.base import ButterflyEstimator
from repro.core.counting import count_with_versioned_sample
from repro.core.probabilities import discovery_probability
from repro.errors import EstimatorError
from repro.sampling.random_pairing import RandomPairing
from repro.sampling.versioned import VersionedGraphSample
from repro.streams.minibatch import iter_minibatches, partition_round_robin
from repro.types import Op, StreamElement


class Parabacus(ButterflyEstimator):
    """Parallel mini-batch butterfly estimation with versioned samples.

    Args:
        budget: memory budget ``k``.
        batch_size: mini-batch size ``M`` (paper default 500).
        num_threads: worker count ``p`` for the counting phase.
        seed / rng: randomness (see :class:`~repro.core.abacus.Abacus`).
        use_thread_pool: execute phase 2 on a real
            ``ThreadPoolExecutor``.  When False the chunks run serially
            (bit-identical results, still fully metered) — the default
            for benchmarks because CPython threads cannot speed up this
            loop anyway.
        cheapest_side: side-selection heuristic toggle (ablation).

    Attributes:
        total_work: cumulative intersection element checks.
        last_batch_workloads: per-worker work of the most recent batch.
        per_thread_work: cumulative per-worker work across all batches.
        versioning_elements: elements processed by the sequential phase
            (the O(M) cost term in Theorem 6).
    """

    name = "Parabacus"
    supports_batch = True

    def __init__(
        self,
        budget: int,
        batch_size: int = 500,
        num_threads: int = 4,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        use_thread_pool: bool = False,
        cheapest_side: bool = True,
    ) -> None:
        if batch_size <= 0:
            raise EstimatorError(
                f"batch_size must be positive, got {batch_size}"
            )
        if num_threads <= 0:
            raise EstimatorError(
                f"num_threads must be positive, got {num_threads}"
            )
        if rng is None:
            rng = random.Random(seed)
        self.batch_size = batch_size
        self.num_threads = num_threads
        self._sampler = RandomPairing(budget, rng)
        self._versioned = VersionedGraphSample(self._sampler.sample)
        self._estimate = 0.0
        self._cheapest_side = cheapest_side
        self._use_thread_pool = use_thread_pool
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pending: List[StreamElement] = []
        self.total_work = 0
        self.elements_processed = 0
        self.versioning_elements = 0
        self.num_batches = 0
        self.last_batch_workloads: List[int] = []
        self.per_thread_work: List[int] = [0] * num_threads

    # ------------------------------------------------------------------
    # ButterflyEstimator interface
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def memory_edges(self) -> int:
        return self._sampler.sample.num_edges

    @property
    def sampler(self) -> RandomPairing:
        return self._sampler

    @property
    def budget(self) -> int:
        return self._sampler.budget

    def process(self, element: StreamElement) -> float:
        """Buffer one element; flush a full mini-batch when reached.

        Element-wise deltas are not individually meaningful in the
        mini-batch model, so the return value is the estimate change
        caused by a flush (0.0 while buffering).
        """
        self._pending.append(element)
        if len(self._pending) >= self.batch_size:
            return self.flush()
        return 0.0

    def process_stream(
        self, stream, checkpoints=None, on_checkpoint=None
    ) -> float:
        """Batch-oriented stream driver (overrides the per-element one).

        Checkpoints are honoured at mini-batch granularity: the callback
        fires at the first batch boundary at or past each checkpoint.
        """
        pending_marks = sorted(checkpoints) if checkpoints else []
        mark_index = 0
        for batch in iter_minibatches(stream, self.batch_size):
            self.run_minibatch(batch)
            while (
                mark_index < len(pending_marks)
                and self.elements_processed >= pending_marks[mark_index]
            ):
                if on_checkpoint is not None:
                    on_checkpoint(pending_marks[mark_index], self)
                mark_index += 1
        return self._estimate

    def flush(self) -> float:
        """Process whatever is buffered as a (possibly short) batch."""
        if not self._pending:
            return 0.0
        batch = self._pending
        self._pending = []
        return self.run_minibatch(batch)

    def process_batch(self, batch: Sequence[StreamElement]) -> float:
        """Batch ingest under the equivalence contract of the base class.

        Observably identical to calling :meth:`process` per element:
        the arrivals join the pending buffer and every time it reaches
        ``M`` elements a mini-batch runs — so the mini-batch boundaries
        (and therefore ``num_batches``, the per-thread work split, and
        the flush-time estimate deltas) land exactly where per-element
        feeding would put them, regardless of how the caller chunked
        the stream.  The fast path merely replaces ``len(batch)``
        buffered :meth:`process` calls with one ``extend`` and drives
        each full mini-batch through :meth:`run_minibatch` directly.
        """
        pending = self._pending
        pending.extend(batch)
        if len(pending) < self.batch_size:
            return 0.0
        total = 0.0
        while len(pending) >= self.batch_size:
            chunk = pending[: self.batch_size]
            del pending[: self.batch_size]
            total += self.run_minibatch(chunk)
        return total

    # ------------------------------------------------------------------
    # The mini-batch pipeline
    # ------------------------------------------------------------------
    def run_minibatch(self, batch: Sequence[StreamElement]) -> float:
        """Run the three phases on ``batch``; return the estimate delta."""
        if not batch:
            return 0.0
        versioned = self._versioned
        sampler = self._sampler

        # Phase 1: sequential sample-version creation.
        versioned.begin_batch()
        for element in batch:
            versioned.note_element_state(
                sampler.num_live_edges, sampler.cb, sampler.cg
            )
            sampler.process(element)
        versioned.end_batch()
        self.versioning_elements += len(batch)

        # Phase 2: parallel per-edge counting.
        indexed = list(enumerate(batch))
        chunks = partition_round_robin(indexed, self.num_threads)
        if self._use_thread_pool and len(batch) > 1:
            executor = self._ensure_executor()
            results = list(executor.map(self._count_chunk, chunks))
        else:
            results = [self._count_chunk(chunk) for chunk in chunks]

        # Phase 3: consolidation.
        batch_delta = 0.0
        self.last_batch_workloads = []
        for worker_id, (partial, work) in enumerate(results):
            batch_delta += partial
            self.total_work += work
            self.per_thread_work[worker_id] += work
            self.last_batch_workloads.append(work)
        self._estimate += batch_delta
        self.elements_processed += len(batch)
        self.num_batches += 1
        return batch_delta

    def _count_chunk(
        self, chunk: Iterable[Tuple[int, StreamElement]]
    ) -> Tuple[float, int]:
        """Count one worker's share; returns (partial estimate, work)."""
        versioned = self._versioned
        budget = self._sampler.budget
        partial = 0.0
        work_done = 0
        for version, element in chunk:
            found, work = count_with_versioned_sample(
                versioned,
                version,
                element.u,
                element.v,
                cheapest_side=self._cheapest_side,
            )
            work_done += work
            if not found:
                continue
            live, cb, cg = versioned.triplet(version)
            probability = discovery_probability(live, cb, cg, budget)
            if probability <= 0.0:
                raise EstimatorError(
                    "discovered a butterfly with zero discovery probability "
                    f"at version {version}"
                )
            partial += element.op.sign * found / probability
        return partial, work_done

    # ------------------------------------------------------------------
    # StatefulEstimator protocol
    # ------------------------------------------------------------------
    def state_to_dict(self) -> dict:
        """Capture the complete estimator state (JSON-serialisable).

        Besides the shared sampler state this includes the mini-batch
        configuration, the work/batch counters, and — crucially — the
        still-buffered elements of a partially filled batch, so a
        snapshot taken mid-buffer continues bit-identically.
        """
        state = self._sampler.state_to_dict()
        state.update(
            {
                "estimate": self._estimate,
                "batch_size": self.batch_size,
                "num_threads": self.num_threads,
                "cheapest_side": self._cheapest_side,
                "use_thread_pool": self._use_thread_pool,
                "total_work": self.total_work,
                "elements_processed": self.elements_processed,
                "versioning_elements": self.versioning_elements,
                "num_batches": self.num_batches,
                "last_batch_workloads": list(self.last_batch_workloads),
                "per_thread_work": list(self.per_thread_work),
                "pending": [
                    [element.u, element.v, element.op.value]
                    for element in self._pending
                ],
            }
        )
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "Parabacus":
        """Rebuild a :class:`Parabacus` from :meth:`state_to_dict` output."""
        estimator = cls(
            state["budget"],
            batch_size=state["batch_size"],
            num_threads=state["num_threads"],
            use_thread_pool=state["use_thread_pool"],
            cheapest_side=state["cheapest_side"],
        )
        estimator._sampler.restore_state(state)
        estimator._estimate = state["estimate"]
        estimator.total_work = state["total_work"]
        estimator.elements_processed = state["elements_processed"]
        estimator.versioning_elements = state["versioning_elements"]
        estimator.num_batches = state["num_batches"]
        estimator.last_batch_workloads = list(state["last_batch_workloads"])
        estimator.per_thread_work = list(state["per_thread_work"])
        estimator._pending = [
            StreamElement(u, v, Op.from_symbol(symbol))
            for u, v, symbol in state["pending"]
        ]
        return estimator

    # ------------------------------------------------------------------
    # Work-model speedup (DESIGN.md substitution #2)
    # ------------------------------------------------------------------
    def modeled_speedup(
        self,
        versioning_cost_per_element: float = 1.0,
        dispatch_cost_per_batch: float = 0.0,
    ) -> float:
        """Deterministic speedup estimate over single-threaded ABACUS.

        ABACUS cost model: all counting work plus one unit per element.
        PARABACUS cost model: sequential versioning (one unit per
        element), an optional fixed dispatch cost per mini-batch (the
        fork/join synchronisation a real thread pool pays — this is the
        term that makes small mini-batches unattractive on hardware, cf.
        the paper's Figure 8), plus the *maximum* per-worker counting
        work (critical path of the parallel phase).

        Args:
            versioning_cost_per_element: relative cost of one sequential
                sample update versus one intersection element check.
            dispatch_cost_per_batch: fixed fork/join cost per mini-batch
                in element-check units; 0 gives the pure work model.
        """
        if not any(self.per_thread_work):
            return 1.0
        sequential_cost = (
            self.total_work
            + versioning_cost_per_element * self.elements_processed
        )
        parallel_cost = (
            versioning_cost_per_element * self.versioning_elements
            + dispatch_cost_per_batch * self.num_batches
            + max(self.per_thread_work)
        )
        if parallel_cost <= 0:
            return 1.0
        return sequential_cost / parallel_cost

    def close(self) -> None:
        """Shut down the thread pool, if one was created."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "Parabacus":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.num_threads)
        return self._executor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Parabacus(k={self._sampler.budget}, M={self.batch_size}, "
            f"p={self.num_threads}, estimate={self._estimate:.1f})"
        )
