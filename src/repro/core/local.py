"""Per-vertex (local) butterfly estimation on fully dynamic streams.

Global counts answer "how cohesive is the graph"; many applications
(anomaly scoring of a specific account, per-community monitoring) want
the butterfly count *of a vertex*: the number of butterflies the vertex
participates in.  The TRIEST/ThinkD line of triangle work maintains such
local counts alongside the global one, and the same extension applies to
ABACUS: every butterfly ``{u, v, w, x}`` discovered through the sample
with increment ``1/p`` contributes ``sgn/p`` to each of its four
vertices' local estimates.  By linearity of expectation, each local
estimate is unbiased for the vertex's true participation count.

Memory: the global ABACUS state plus one float per *watched* vertex.
Watch either an explicit set of vertices (bounded, production-style) or
every vertex ever touched (unbounded, convenient for analysis).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Set

from repro.core.base import ButterflyEstimator
from repro.core.probabilities import discovery_probability
from repro.errors import EstimatorError
from repro.sampling.random_pairing import RandomPairing
from repro.types import StreamElement, Vertex


class AbacusLocal(ButterflyEstimator):
    """ABACUS with per-vertex butterfly estimates.

    Args:
        budget: memory budget ``k`` for the edge sample.
        watch: vertices whose local counts to maintain; ``None`` watches
            every vertex that ever appears in a discovered butterfly
            (memory then grows with the touched-vertex count).
        seed / rng: randomness as in :class:`~repro.core.abacus.Abacus`.

    Example:
        >>> from repro.types import insertion
        >>> est = AbacusLocal(budget=100, watch={"alice"}, seed=1)
        >>> est.process(insertion("alice", "item1"))
        0.0
        >>> est.local_estimate("alice")
        0.0
    """

    name = "AbacusLocal"

    def __init__(
        self,
        budget: int,
        watch: Optional[Iterable[Vertex]] = None,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rng is None:
            rng = random.Random(seed)
        self._sampler = RandomPairing(budget, rng)
        self._estimate = 0.0
        self._watch: Optional[Set[Vertex]] = (
            set(watch) if watch is not None else None
        )
        self._local: Dict[Vertex, float] = {}
        self.elements_processed = 0
        self.total_work = 0

    # ------------------------------------------------------------------
    # ButterflyEstimator interface
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def memory_edges(self) -> int:
        return self._sampler.sample.num_edges

    @property
    def sampler(self) -> RandomPairing:
        return self._sampler

    def local_estimate(self, vertex: Vertex) -> float:
        """The vertex's estimated butterfly participation count."""
        if self._watch is not None and vertex not in self._watch:
            raise EstimatorError(
                f"vertex {vertex!r} is not in the watch set"
            )
        return self._local.get(vertex, 0.0)

    def local_estimates(self) -> Dict[Vertex, float]:
        """Snapshot of all maintained local estimates."""
        return dict(self._local)

    def top_vertices(self, limit: int = 10):
        """Watched vertices with the largest local estimates."""
        ranked = sorted(
            self._local.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:limit]

    def process(self, element: StreamElement) -> float:
        """Count butterflies per discovered (w, x) pair, then sample.

        Unlike :func:`repro.core.counting.count_with_sample`, the
        discovery loop here keeps the identities of the third and fourth
        vertices so their local counts can be credited.
        """
        self.elements_processed += 1
        sampler = self._sampler
        sample = sampler.sample
        u, v = element.u, element.v
        neighbors_u = sample.neighbors(u)
        neighbors_v = sample.neighbors(v)
        delta = 0.0
        if neighbors_u and neighbors_v:
            if sample.degree_sum(neighbors_u) < sample.degree_sum(neighbors_v):
                anchors, opposite = neighbors_u, neighbors_v
                skip_anchor, skip_common = v, u
            else:
                anchors, opposite = neighbors_v, neighbors_u
                skip_anchor, skip_common = u, v
            probability: Optional[float] = None
            sign = element.op.sign
            for w in anchors:
                if w == skip_anchor:
                    continue
                neighbors_w = sample.neighbors(w)
                if len(neighbors_w) <= len(opposite):
                    small, large = neighbors_w, opposite
                else:
                    small, large = opposite, neighbors_w
                self.total_work += len(small)
                for x in small:
                    if x == skip_common or x not in large:
                        continue
                    if probability is None:
                        probability = discovery_probability(
                            sampler.num_live_edges,
                            sampler.cb,
                            sampler.cg,
                            sampler.budget,
                        )
                        if probability <= 0.0:
                            raise EstimatorError(
                                "butterfly discovered with zero probability"
                            )
                    increment = sign / probability
                    delta += increment
                    self._credit(u, increment)
                    self._credit(v, increment)
                    self._credit(w, increment)
                    self._credit(x, increment)
            self._estimate += delta
        sampler.process(element)
        return delta

    def _credit(self, vertex: Vertex, increment: float) -> None:
        if self._watch is None or vertex in self._watch:
            self._local[vertex] = self._local.get(vertex, 0.0) + increment
