"""Checkpoint/restore of ABACUS estimator state.

Long-running streaming jobs need to survive restarts without replaying
the whole stream.  ABACUS's entire state is small — the sampled edges,
the compensation counters, the live-edge count, the estimate, and the
RNG state — so it serialises to a compact JSON document.  Restoring
reproduces the estimator *exactly*: continuing a restored instance
yields bit-identical results to the uninterrupted run (tested).

Vertex identifiers must be JSON-representable (int or str); the integer
vertices produced by the library's generators and loaders always are.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.core.abacus import Abacus
from repro.errors import EstimatorError

_FORMAT_VERSION = 1


def abacus_to_dict(estimator: Abacus) -> Dict[str, Any]:
    """Capture the complete state of an :class:`Abacus` instance."""
    sampler = estimator.sampler
    rng_state = sampler._rng.getstate()
    return {
        "format_version": _FORMAT_VERSION,
        "budget": sampler.budget,
        "estimate": estimator.estimate,
        "num_live_edges": sampler.num_live_edges,
        "cb": sampler.cb,
        "cg": sampler.cg,
        "sample_edges": [list(edge) for edge in sampler.sample.edges()],
        "total_work": estimator.total_work,
        "elements_processed": estimator.elements_processed,
        "cheapest_side": estimator._cheapest_side,
        "naive_increment": estimator._naive_increment,
        # random.Random.getstate() -> (version, tuple-of-ints, gauss).
        "rng_state": [
            rng_state[0],
            list(rng_state[1]),
            rng_state[2],
        ],
    }


def abacus_from_dict(state: Dict[str, Any]) -> Abacus:
    """Rebuild an :class:`Abacus` from :func:`abacus_to_dict` output."""
    version = state.get("format_version")
    if version != _FORMAT_VERSION:
        raise EstimatorError(
            f"unsupported checkpoint format version: {version!r}"
        )
    estimator = Abacus(
        state["budget"],
        cheapest_side=state["cheapest_side"],
        naive_increment=state["naive_increment"],
    )
    sampler = estimator.sampler
    raw_version, raw_internal, raw_gauss = state["rng_state"]
    sampler._rng.setstate(
        (raw_version, tuple(raw_internal), raw_gauss)
    )
    sampler.num_live_edges = state["num_live_edges"]
    sampler.cb = state["cb"]
    sampler.cg = state["cg"]
    for u, v in state["sample_edges"]:
        sampler.sample.add_edge(u, v)
    estimator._estimate = state["estimate"]
    estimator.total_work = state["total_work"]
    estimator.elements_processed = state["elements_processed"]
    return estimator


def save_checkpoint(estimator: Abacus, path: str | os.PathLike) -> None:
    """Write an ABACUS checkpoint as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(abacus_to_dict(estimator), handle)


def load_checkpoint(path: str | os.PathLike) -> Abacus:
    """Read an ABACUS checkpoint written by :func:`save_checkpoint`.

    Raises:
        EstimatorError: on a malformed or version-incompatible file.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except json.JSONDecodeError as exc:
        raise EstimatorError(f"malformed checkpoint file {path}") from exc
    if not isinstance(state, dict):
        raise EstimatorError(f"malformed checkpoint file {path}")
    try:
        return abacus_from_dict(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise EstimatorError(
            f"checkpoint file {path} is missing or corrupts fields"
        ) from exc
