"""Checkpoint/restore of ABACUS estimator state (legacy wrapper).

Long-running streaming jobs need to survive restarts without replaying
the whole stream.  The state capture itself now lives on the estimators
(:meth:`~repro.core.abacus.Abacus.state_to_dict` /
``from_state_dict`` — the :class:`~repro.core.base.StatefulEstimator`
protocol, built entirely from public accessors) and the general
session-level snapshot API is :meth:`repro.api.session.Session.snapshot`,
which also covers PARABACUS.  This module keeps the original
ABACUS-only JSON file format (format version 1) working as a thin
wrapper for existing callers.

Restoring reproduces the estimator *exactly*: continuing a restored
instance yields bit-identical results to the uninterrupted run
(tested).  Vertex identifiers must be JSON-representable (int or str);
the integer vertices produced by the library's generators and loaders
always are.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.core.abacus import Abacus
from repro.errors import EstimatorError

_FORMAT_VERSION = 1


def abacus_to_dict(estimator: Abacus) -> Dict[str, Any]:
    """Capture the complete state of an :class:`Abacus` instance."""
    state = estimator.state_to_dict()
    state["format_version"] = _FORMAT_VERSION
    return state


def abacus_from_dict(state: Dict[str, Any]) -> Abacus:
    """Rebuild an :class:`Abacus` from :func:`abacus_to_dict` output."""
    version = state.get("format_version")
    if version != _FORMAT_VERSION:
        raise EstimatorError(
            f"unsupported checkpoint format version: {version!r}"
        )
    return Abacus.from_state_dict(state)


def save_checkpoint(estimator: Abacus, path: str | os.PathLike) -> None:
    """Write an ABACUS checkpoint as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(abacus_to_dict(estimator), handle)


def load_checkpoint(path: str | os.PathLike) -> Abacus:
    """Read an ABACUS checkpoint written by :func:`save_checkpoint`.

    Raises:
        EstimatorError: on a malformed or version-incompatible file.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except json.JSONDecodeError as exc:
        raise EstimatorError(f"malformed checkpoint file {path}") from exc
    if not isinstance(state, dict):
        raise EstimatorError(f"malformed checkpoint file {path}")
    try:
        return abacus_from_dict(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise EstimatorError(
            f"checkpoint file {path} is missing or corrupts fields"
        ) from exc
