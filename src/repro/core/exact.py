"""Exact streaming butterfly counter (the ground-truth oracle).

Maintains the full current graph and updates the exact count with the
per-edge delta of each insertion/deletion.  This is the "prohibitive"
exact approach the paper argues against for real streams (it stores the
whole graph), but at reproduction scale it is affordable and provides
the ground truth ``|B(t)|`` every accuracy experiment needs.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import ButterflyEstimator
from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import butterflies_containing_edge
from repro.types import Op, StreamElement


class ExactStreamingCounter(ButterflyEstimator):
    """Exact ``|B(t)|`` maintained under insertions and deletions.

    The per-edge delta of inserting ``{u, v}`` equals the number of
    butterflies containing that edge in the graph *after* insertion,
    which is computed against the pre-insertion adjacency (the formula
    never consults the edge itself).  Deletions are symmetric: remove
    first, then count what disappeared.
    """

    name = "Exact"
    supports_batch = True

    __slots__ = ("_graph", "_count")

    def __init__(self) -> None:
        self._graph = BipartiteGraph()
        self._count = 0

    @property
    def graph(self) -> BipartiteGraph:
        """The full current graph (read-only use expected)."""
        return self._graph

    @property
    def estimate(self) -> float:
        return float(self._count)

    @property
    def exact_count(self) -> int:
        """The exact butterfly count as an integer."""
        return self._count

    @property
    def memory_edges(self) -> int:
        return self._graph.num_edges

    def process(self, element: StreamElement) -> float:
        u, v = element.u, element.v
        if element.op is Op.INSERT:
            delta = butterflies_containing_edge(self._graph, u, v)
            self._graph.add_edge(u, v)
            self._count += delta
            return float(delta)
        self._graph.remove_edge(u, v)
        delta = butterflies_containing_edge(self._graph, u, v)
        self._count -= delta
        return float(-delta)

    def process_batch(self, batch: Sequence[StreamElement]) -> float:
        """Per-element deltas with the dispatch hoisted out of the loop.

        All state is integer graph bookkeeping, so equivalence with the
        per-element path is structural; the win is dropping the method
        and attribute lookups that dominate when deltas are cheap.
        """
        graph = self._graph
        count = self._count
        insert = Op.INSERT
        for element in batch:
            u, v = element.u, element.v
            if element.op is insert:
                count += butterflies_containing_edge(graph, u, v)
                graph.add_edge(u, v)
            else:
                graph.remove_edge(u, v)
                count -= butterflies_containing_edge(graph, u, v)
        delta = float(count - self._count)
        self._count = count
        return delta
