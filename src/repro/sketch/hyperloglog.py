"""HyperLogLog: distinct counting in a few kilobytes.

Streaming graph statistics want the number of *distinct* left/right
vertices and edges seen so far without storing them (Table II reports
|L|, |R|, |E| per dataset; a streaming system computes these one-pass).
HyperLogLog estimates distinct counts with a relative standard error of
``1.04 / sqrt(m)`` using ``m`` byte-sized registers.

This is the original Flajolet et al. estimator with the two standard
corrections: linear counting for small cardinalities (when empty
registers remain) and the large-range correction is omitted because we
hash into 64 bits, where collisions are negligible at any realistic
stream size.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, Optional

from repro.errors import SamplingError
from repro.sketch.hashing import as_int_key, mix64


def _alpha(num_registers: int) -> float:
    """Bias-correction constant for ``m`` registers."""
    if num_registers == 16:
        return 0.673
    if num_registers == 32:
        return 0.697
    if num_registers == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / num_registers)


class HyperLogLog:
    """HyperLogLog distinct counter with ``2**precision`` registers.

    Args:
        precision: register-index bits ``p`` (4..18); memory is ``2**p``
            registers and relative error about ``1.04 / sqrt(2**p)``.
        rng: randomness for the hash salt (seed for reproducibility).

    Example:
        >>> hll = HyperLogLog(precision=12, rng=random.Random(9))
        >>> for i in range(10000):
        ...     hll.add(i)
        >>> abs(hll.cardinality() - 10000) / 10000 < 0.05
        True
    """

    __slots__ = ("precision", "num_registers", "_registers", "_salt")

    def __init__(
        self, precision: int = 12, rng: Optional[random.Random] = None
    ) -> None:
        if not 4 <= precision <= 18:
            raise SamplingError(
                f"precision must be in [4, 18], got {precision}"
            )
        rng = rng or random.Random()
        self.precision = precision
        self.num_registers = 1 << precision
        self._registers = bytearray(self.num_registers)
        self._salt = rng.getrandbits(64)

    def add(self, key: Hashable) -> None:
        """Observe ``key``; duplicates do not change the estimate."""
        hashed = mix64(self._salt, as_int_key(key))
        index = hashed & (self.num_registers - 1)
        remaining = hashed >> self.precision
        # Rank = position of the first 1-bit in the remaining 64-p bits
        # (1-based); an all-zero remainder gets the maximum rank.
        width = 64 - self.precision
        if remaining == 0:
            rank = width + 1
        else:
            rank = width - remaining.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def cardinality(self) -> float:
        """Estimated number of distinct keys added so far."""
        m = self.num_registers
        inverse_sum = 0.0
        zero_registers = 0
        for register in self._registers:
            inverse_sum += 2.0 ** -register
            if register == 0:
                zero_registers += 1
        raw = _alpha(m) * m * m / inverse_sum
        if raw <= 2.5 * m and zero_registers:
            # Small-range (linear counting) correction.
            return m * math.log(m / zero_registers)
        return raw

    def relative_error(self) -> float:
        """The theoretical standard error for this precision."""
        return 1.04 / math.sqrt(self.num_registers)

    def merge(self, other: "HyperLogLog") -> None:
        """Fold another counter into this one (register-wise max).

        After merging, the estimate covers the union of both observed
        key sets.  Both counters must share precision and salt.
        """
        if (
            self.precision != other.precision
            or self._salt != other._salt
        ):
            raise SamplingError(
                "HyperLogLog counters must share precision and hash salt"
            )
        for i, register in enumerate(other._registers):
            if register > self._registers[i]:
                self._registers[i] = register

    def spawn_compatible(self) -> "HyperLogLog":
        """A fresh empty counter sharing this one's precision and salt."""
        clone = HyperLogLog.__new__(HyperLogLog)
        clone.precision = self.precision
        clone.num_registers = self.num_registers
        clone._registers = bytearray(self.num_registers)
        clone._salt = self._salt
        return clone

    def clear(self) -> None:
        """Reset to the empty state."""
        for i in range(self.num_registers):
            self._registers[i] = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HyperLogLog(p={self.precision}, "
            f"estimate={self.cardinality():.0f})"
        )


class StreamCardinalityTracker:
    """One-pass distinct |L|, |R|, |E| tracking for a bipartite stream.

    Feeds three HyperLogLog counters from the insertion elements of a
    fully dynamic stream.  Deletions are ignored: HLL cannot retract,
    so the tracker reports *ever-seen* distinct counts, which is the
    quantity Table II-style dataset characterisation needs.

    Example:
        >>> from repro.types import insertion
        >>> tracker = StreamCardinalityTracker(precision=10,
        ...                                    rng=random.Random(1))
        >>> tracker.observe(insertion(1, 2))
        >>> tracker.distinct_edges() > 0
        True
    """

    __slots__ = ("_left", "_right", "_edges")

    def __init__(
        self, precision: int = 12, rng: Optional[random.Random] = None
    ) -> None:
        rng = rng or random.Random()
        self._left = HyperLogLog(precision, rng=rng)
        self._right = HyperLogLog(precision, rng=rng)
        self._edges = HyperLogLog(precision, rng=rng)

    def observe(self, element) -> None:
        """Feed one stream element (deletions are skipped)."""
        if element.is_deletion:
            return
        self._left.add(element.u)
        self._right.add(element.v)
        self._edges.add((element.u, element.v))

    def distinct_left(self) -> float:
        """Estimated distinct left vertices ever inserted."""
        return self._left.cardinality()

    def distinct_right(self) -> float:
        """Estimated distinct right vertices ever inserted."""
        return self._right.cardinality()

    def distinct_edges(self) -> float:
        """Estimated distinct edges ever inserted."""
        return self._edges.cardinality()
