"""Count-Min sketch for frequency estimation over streams.

A Count-Min sketch summarises a non-negative frequency vector in
``depth * width`` counters.  Point queries return the minimum counter a
key hashes to, which *never underestimates* the true frequency and
overestimates by at most ``epsilon * total`` with probability at least
``1 - delta`` when sized via :meth:`CountMinSketch.from_error_bounds`.

In this repository the sketch backs degree tracking for streaming graph
statistics (:mod:`repro.graph.stats` characterises datasets one-pass)
and the heavy-hitter tracker below, which surfaces the high-degree
vertices that dominate butterfly formation — a useful diagnostic when
interpreting per-dataset accuracy differences (Section VI-G of the
paper correlates workload with butterfly density, which is driven by
degree skew).

The optional *conservative update* mode only raises the counters that
are actually at the current minimum, which provably never hurts and in
practice substantially tightens point queries on skewed streams.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, List, Optional, Tuple

from repro.errors import SamplingError
from repro.sketch.hashing import as_int_key, mix64


class CountMinSketch:
    """Count-Min frequency sketch with optional conservative update.

    Args:
        width: number of counters per row (controls the additive error
            ``epsilon ~ e / width``).
        depth: number of independent rows (controls the failure
            probability ``delta ~ exp(-depth)``).
        rng: randomness source for the per-row hash salts; pass a seeded
            ``random.Random`` for reproducible sketches.
        conservative: if True, updates only raise the counters that
            equal the current minimum (tighter estimates, but the
            sketch then only supports non-negative unit increments).

    Example:
        >>> sketch = CountMinSketch(width=256, depth=4,
        ...                         rng=random.Random(7))
        >>> for _ in range(100):
        ...     sketch.update("popular")
        >>> sketch.estimate("popular") >= 100
        True
    """

    __slots__ = ("width", "depth", "conservative", "_rows", "_salts", "_total")

    def __init__(
        self,
        width: int,
        depth: int = 4,
        rng: Optional[random.Random] = None,
        conservative: bool = False,
    ) -> None:
        if width <= 0 or depth <= 0:
            raise SamplingError(
                f"sketch dimensions must be positive, got {width}x{depth}"
            )
        rng = rng or random.Random()
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self._salts: List[int] = [rng.getrandbits(64) for _ in range(depth)]
        self._total = 0

    @classmethod
    def from_error_bounds(
        cls,
        epsilon: float,
        delta: float,
        rng: Optional[random.Random] = None,
        conservative: bool = False,
    ) -> "CountMinSketch":
        """Size a sketch for additive error ``epsilon * total``.

        Guarantees ``estimate(key) <= true + epsilon * total`` with
        probability at least ``1 - delta``, using the standard
        ``width = ceil(e / epsilon)``, ``depth = ceil(ln(1 / delta))``.
        """
        if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
            raise SamplingError(
                f"error bounds must lie in (0, 1), got "
                f"epsilon={epsilon}, delta={delta}"
            )
        width = math.ceil(math.e / epsilon)
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width, depth, rng=rng, conservative=conservative)

    @property
    def total(self) -> int:
        """Sum of all applied increments (the stream length ``||f||_1``)."""
        return self._total

    @property
    def num_counters(self) -> int:
        """Memory footprint in counters."""
        return self.width * self.depth

    def _buckets(self, key: Hashable) -> List[int]:
        ikey = as_int_key(key)
        return [mix64(salt, ikey) % self.width for salt in self._salts]

    def update(self, key: Hashable, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``.

        Raises:
            SamplingError: on negative counts (Count-Min counters must
                stay non-negative for the minimum to be an upper bound).
        """
        if count < 0:
            raise SamplingError("Count-Min does not support decrements")
        if count == 0:
            return
        buckets = self._buckets(key)
        self._total += count
        if self.conservative:
            current = min(
                row[b] for row, b in zip(self._rows, buckets)
            )
            target = current + count
            for row, b in zip(self._rows, buckets):
                if row[b] < target:
                    row[b] = target
        else:
            for row, b in zip(self._rows, buckets):
                row[b] += count

    def estimate(self, key: Hashable) -> int:
        """Point query: an upper bound on the frequency of ``key``."""
        buckets = self._buckets(key)
        return min(row[b] for row, b in zip(self._rows, buckets))

    def inner_product(self, other: "CountMinSketch") -> int:
        """Upper bound on the inner product of two frequency vectors.

        Both sketches must share dimensions and salts (e.g. created by
        :meth:`spawn_compatible`).
        """
        self._require_compatible(other)
        return min(
            sum(a * b for a, b in zip(row_a, row_b))
            for row_a, row_b in zip(self._rows, other._rows)
        )

    def merge(self, other: "CountMinSketch") -> None:
        """Fold another sketch of the same shape/salts into this one."""
        self._require_compatible(other)
        if other.conservative or self.conservative:
            raise SamplingError(
                "conservative sketches are not mergeable (their counters "
                "are not linear in the input)"
            )
        for row, other_row in zip(self._rows, other._rows):
            for i, value in enumerate(other_row):
                row[i] += value
        self._total += other._total

    def spawn_compatible(self) -> "CountMinSketch":
        """A fresh empty sketch sharing this one's shape and salts."""
        clone = CountMinSketch.__new__(CountMinSketch)
        clone.width = self.width
        clone.depth = self.depth
        clone.conservative = self.conservative
        clone._rows = [[0] * self.width for _ in range(self.depth)]
        clone._salts = list(self._salts)
        clone._total = 0
        return clone

    def clear(self) -> None:
        """Reset every counter to zero."""
        for row in self._rows:
            for i in range(self.width):
                row[i] = 0
        self._total = 0

    def _require_compatible(self, other: "CountMinSketch") -> None:
        if (
            self.width != other.width
            or self.depth != other.depth
            or self._salts != other._salts
        ):
            raise SamplingError(
                "sketches must share width, depth, and hash salts"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CountMinSketch({self.width}x{self.depth}, "
            f"total={self._total}, conservative={self.conservative})"
        )


class HeavyHitterTracker:
    """Approximate top-degree tracking over a vertex stream.

    Combines a Count-Min sketch with an exact candidate dictionary: any
    key whose sketch estimate reaches ``threshold_fraction * total`` is
    promoted into the candidate set, whose (at most ``1 /
    threshold_fraction`` by the Count-Min guarantee, modulo
    overestimates) members are tracked exactly from promotion onwards.

    This is the classic "sketch + heap" heavy-hitters recipe; we keep a
    dict instead of a heap because candidate sets are tiny.

    Example:
        >>> tracker = HeavyHitterTracker(threshold_fraction=0.1,
        ...                              rng=random.Random(3))
        >>> for _ in range(50):
        ...     tracker.update("hub")
        >>> tracker.update("leaf")
        >>> [k for k, _ in tracker.heavy_hitters()]
        ['hub']
    """

    __slots__ = ("threshold_fraction", "_sketch", "_candidates")

    def __init__(
        self,
        threshold_fraction: float = 0.01,
        width: int = 1024,
        depth: int = 4,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 < threshold_fraction <= 1.0:
            raise SamplingError(
                f"threshold_fraction must be in (0, 1], "
                f"got {threshold_fraction}"
            )
        self.threshold_fraction = threshold_fraction
        self._sketch = CountMinSketch(
            width, depth, rng=rng, conservative=True
        )
        self._candidates: dict = {}

    @property
    def total(self) -> int:
        return self._sketch.total

    def update(self, key: Hashable, count: int = 1) -> None:
        """Record ``count`` occurrences of ``key``."""
        self._sketch.update(key, count)
        if key in self._candidates:
            self._candidates[key] += count
            return
        threshold = self.threshold_fraction * self._sketch.total
        estimate = self._sketch.estimate(key)
        if estimate >= threshold:
            self._candidates[key] = estimate

    def heavy_hitters(self) -> List[Tuple[Hashable, int]]:
        """Keys estimated above the threshold, heaviest first."""
        threshold = self.threshold_fraction * self._sketch.total
        hitters = [
            (key, count)
            for key, count in self._candidates.items()
            if count >= threshold
        ]
        hitters.sort(key=lambda item: (-item[1], repr(item[0])))
        return hitters

    def estimate(self, key: Hashable) -> int:
        """Frequency estimate for any key (exact for tracked candidates)."""
        if key in self._candidates:
            return self._candidates[key]
        return self._sketch.estimate(key)
