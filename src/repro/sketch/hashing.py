"""k-universal hash families over a Mersenne-prime field.

AMS sketches need 4-wise independent +/-1 hash functions to make their
variance analysis go through.  We implement polynomial hashing over
GF(p) with p = 2^61 - 1 (a Mersenne prime, so reduction is a couple of
shifts), the textbook construction: a degree-(k-1) polynomial with
random coefficients is a k-universal family.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

_MERSENNE_P = (1 << 61) - 1
_MASK64 = (1 << 64) - 1


def mix64(salt: int, key: int) -> int:
    """Salted splitmix64 finalizer: 64 well-mixed bits from (salt, key).

    This is the shared fast mixing primitive of the sketch subpackage
    (Count-Min, Bloom, HyperLogLog, and the AMS "fast" family).  It is
    not provably k-universal but its avalanche quality is the de-facto
    standard for non-cryptographic hashing.
    """
    z = (key ^ salt) & _MASK64
    z = (z * 0x9E3779B97F4A7C15) & _MASK64
    z ^= z >> 30
    z = (z * 0xBF58476D1CE4E5B9) & _MASK64
    z ^= z >> 27
    z = (z * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return z


def as_int_key(key: Hashable) -> int:
    """Map an arbitrary hashable key to an integer for sketch hashing.

    Integers map to themselves (so results are reproducible across
    processes for the common integer-vertex case); anything else goes
    through the built-in ``hash``, which is stable within one process.
    """
    if isinstance(key, int):
        return key
    return hash(key)


class FourWiseHash:
    """A 4-universal hash function ``h : int -> [0, p)``.

    Evaluates a random cubic polynomial modulo ``2^61 - 1``.  Instances
    are cheap; CAS creates one per sketch row.
    """

    __slots__ = ("_c0", "_c1", "_c2", "_c3")

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        rng = rng or random.Random()
        self._c0 = rng.randrange(_MERSENNE_P)
        self._c1 = rng.randrange(1, _MERSENNE_P)
        self._c2 = rng.randrange(_MERSENNE_P)
        self._c3 = rng.randrange(_MERSENNE_P)

    def __call__(self, key: int) -> int:
        x = key % _MERSENNE_P
        # Horner evaluation with lazy reduction.
        acc = self._c3
        acc = (acc * x + self._c2) % _MERSENNE_P
        acc = (acc * x + self._c1) % _MERSENNE_P
        acc = (acc * x + self._c0) % _MERSENNE_P
        return acc

    def sign(self, key: int) -> int:
        """Map the hash to a +/-1 Rademacher value (lowest bit)."""
        return 1 if self(key) & 1 else -1

    def bucket(self, key: int, num_buckets: int) -> int:
        """Map the hash into ``[0, num_buckets)``."""
        return self(key) % num_buckets
