"""Sketching substrate.

The CAS baseline (Li et al., TKDE 2022) combines edge sampling with an
AMS sketch; this subpackage provides that sketch plus the other compact
summaries a streaming deployment of the estimators wants:

* :class:`~repro.sketch.ams.AmsSketch` — tug-of-war F2/point sketch
  (the CAS ingredient).
* :class:`~repro.sketch.countmin.CountMinSketch` — frequency upper
  bounds; backs :class:`~repro.sketch.countmin.HeavyHitterTracker` for
  high-degree-vertex diagnostics.
* :class:`~repro.sketch.bloom.BloomFilter` /
  :class:`~repro.sketch.bloom.CountingBloomFilter` — membership guards
  for sanitising streams that may violate the no-duplicate contract.
* :class:`~repro.sketch.hyperloglog.HyperLogLog` — distinct counting
  for one-pass dataset characterisation (|L|, |R|, |E|).
* :class:`~repro.sketch.dgim.DgimCounter` — DGIM sliding-window event
  counting; backs :class:`~repro.sketch.dgim.DeletionRateMonitor`
  (live deletion-ratio estimates).
"""

from repro.sketch.ams import AmsSketch
from repro.sketch.bloom import BloomFilter, CountingBloomFilter
from repro.sketch.countmin import CountMinSketch, HeavyHitterTracker
from repro.sketch.dgim import DeletionRateMonitor, DgimCounter
from repro.sketch.hashing import FourWiseHash, as_int_key, mix64
from repro.sketch.hyperloglog import HyperLogLog, StreamCardinalityTracker

__all__ = [
    "AmsSketch",
    "BloomFilter",
    "CountingBloomFilter",
    "CountMinSketch",
    "HeavyHitterTracker",
    "DgimCounter",
    "DeletionRateMonitor",
    "FourWiseHash",
    "HyperLogLog",
    "StreamCardinalityTracker",
    "as_int_key",
    "mix64",
]
