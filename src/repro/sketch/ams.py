"""AMS (Alon–Matias–Szegedy) second-moment sketch.

Estimates ``F2 = sum_i f_i^2`` of a frequency vector maintained under
increments, and supports Count-Sketch style point queries.  CAS uses
point queries over the "co-affiliation" (wedge-endpoint) frequency
vector to complete butterflies.

The implementation is the standard rows-of-atomic-estimators layout:
``depth`` independent rows, each with ``width`` counters; an update adds
``sign(key) * delta`` to one counter per row; F2 is the median over rows
of the squared row norms, and a point query is the median of
``sign * counter``.

Two hash families are available:

* ``"fast"`` (default) — a salted splitmix64 finalizer, whose avalanche
  quality is the de-facto standard for non-cryptographic mixing.  One
  mix per row yields both the bucket (low bits) and the Rademacher sign
  (bit 63).  Not *provably* 4-universal, but empirically
  indistinguishable for sketching and several times faster, which
  matters because CAS performs sketch operations per discovered wedge.
* ``"polynomial"`` — the textbook 4-universal cubic-polynomial family
  over GF(2^61 - 1) from :mod:`repro.sketch.hashing`, for when the
  theoretical guarantee is wanted.
"""

from __future__ import annotations

import random
import statistics
from typing import List, Optional

from repro.errors import SamplingError
from repro.sketch.hashing import FourWiseHash

_MASK64 = (1 << 64) - 1


def _mix64(salt: int, key: int) -> int:
    """Salted splitmix64 finalizer: 64 well-mixed bits from (salt, key)."""
    z = (key ^ salt) & _MASK64
    z = (z * 0x9E3779B97F4A7C15) & _MASK64
    z ^= z >> 30
    z = (z * 0xBF58476D1CE4E5B9) & _MASK64
    z ^= z >> 27
    z = (z * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return z


class AmsSketch:
    """Tug-of-war F2 sketch with ``depth`` rows and ``width`` buckets.

    Memory use is ``depth * width`` counters; CAS budgets this as a
    lambda fraction of its total memory.

    Example:
        >>> sketch = AmsSketch(width=256, depth=5, rng=random.Random(7))
        >>> for key in [1, 1, 2, 3, 3, 3]:
        ...     sketch.update(key)
        >>> # true F2 = 2^2 + 1 + 3^2 = 14; estimate is unbiased
        >>> abs(sketch.estimate_f2() - 14) < 14
        True
    """

    __slots__ = ("width", "depth", "_rows", "_salts", "_poly_hashes")

    def __init__(
        self,
        width: int,
        depth: int = 5,
        rng: Optional[random.Random] = None,
        hash_family: str = "fast",
    ) -> None:
        if width <= 0 or depth <= 0:
            raise SamplingError(
                f"sketch dimensions must be positive, got {width}x{depth}"
            )
        if hash_family not in ("fast", "polynomial"):
            raise SamplingError(
                "hash_family must be 'fast' or 'polynomial', "
                f"got {hash_family!r}"
            )
        rng = rng or random.Random()
        self.width = width
        self.depth = depth
        self._rows: List[List[float]] = [[0] * width for _ in range(depth)]
        if hash_family == "fast":
            # One salt per row; the mixed value's low bits pick the
            # bucket and bit 63 picks the Rademacher sign.
            self._salts: Optional[List[int]] = [
                rng.getrandbits(64) for _ in range(depth)
            ]
            self._poly_hashes = None
        else:
            self._salts = None
            self._poly_hashes = [
                (FourWiseHash(rng), FourWiseHash(rng)) for _ in range(depth)
            ]

    @property
    def num_counters(self) -> int:
        """Total memory footprint in counters."""
        return self.width * self.depth

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def update(self, key: int, delta: float = 1) -> None:
        """Add ``delta`` to the frequency of ``key``.

        ``delta`` may be fractional: CAS records each discovered wedge
        with weight ``1/p`` (inverse inclusion probability) so that
        point queries estimate *true* wedge counts.
        """
        width = self.width
        if self._salts is not None:
            for row, salt in zip(self._rows, self._salts):
                z = _mix64(salt, key)
                bucket = z % width
                if z >> 63:
                    row[bucket] += delta
                else:
                    row[bucket] -= delta
        else:
            for row, (bucket_hash, sign_hash) in zip(
                self._rows, self._poly_hashes
            ):
                bucket = bucket_hash.bucket(key, width)
                row[bucket] += sign_hash.sign(key) * delta

    def point_estimate(self, key: int) -> float:
        """Count-Sketch style point query: estimated frequency of ``key``.

        Median over rows of ``sign(key) * counter`` — unbiased with
        per-row error proportional to ``sqrt(F2 / width)``.
        """
        width = self.width
        estimates = []
        if self._salts is not None:
            for row, salt in zip(self._rows, self._salts):
                z = _mix64(salt, key)
                value = row[z % width]
                estimates.append(value if z >> 63 else -value)
        else:
            for row, (bucket_hash, sign_hash) in zip(
                self._rows, self._poly_hashes
            ):
                value = row[bucket_hash.bucket(key, width)]
                estimates.append(sign_hash.sign(key) * value)
        return float(statistics.median(estimates))

    def query_update(self, key: int, delta: float = 1) -> float:
        """Point-query ``key`` then add ``delta``, hashing only once.

        Equivalent to ``point_estimate(key)`` followed by
        ``update(key, delta)`` but roughly twice as fast — the pattern
        CAS executes for every discovered wedge.
        """
        width = self.width
        estimates = []
        if self._salts is not None:
            for row, salt in zip(self._rows, self._salts):
                z = _mix64(salt, key)
                bucket = z % width
                if z >> 63:
                    estimates.append(row[bucket])
                    row[bucket] += delta
                else:
                    estimates.append(-row[bucket])
                    row[bucket] -= delta
        else:
            for row, (bucket_hash, sign_hash) in zip(
                self._rows, self._poly_hashes
            ):
                bucket = bucket_hash.bucket(key, width)
                sign = sign_hash.sign(key)
                estimates.append(sign * row[bucket])
                row[bucket] += sign * delta
        return float(statistics.median(estimates))

    def estimate_f2(self) -> float:
        """Median-of-rows estimate of the second frequency moment."""
        row_estimates = [
            float(sum(c * c for c in row)) for row in self._rows
        ]
        return statistics.median(row_estimates)

    def clear(self) -> None:
        for row in self._rows:
            for i in range(self.width):
                row[i] = 0
