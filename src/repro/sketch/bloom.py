"""Bloom filters: approximate set membership for stream sanitising.

The paper's stream model (Definition 1) requires that only absent edges
are inserted and only present edges are deleted.  Real feeds violate
this; a production deployment therefore wants a cheap *guard* in front
of the estimator.  Exact deduplication needs memory linear in the
number of live edges, while a Bloom filter gives a no-false-negative
membership test in a fixed bit budget — the right trade when the guard
only needs to *flag* suspicious elements for a slow path.

Two variants are provided:

* :class:`BloomFilter` — the classic insert-only bit array.
* :class:`CountingBloomFilter` — 4-bit-style counters instead of bits,
  supporting deletions, which matches the fully dynamic setting of the
  paper (an edge that is deleted must become insertable again).

Both size themselves from ``(capacity, fp_rate)`` using the standard
optimal formulas ``bits = -n ln(p) / ln(2)^2`` and
``hashes = (bits / n) ln(2)``.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, List, Optional

from repro.errors import SamplingError
from repro.sketch.hashing import as_int_key, mix64


def optimal_parameters(capacity: int, fp_rate: float) -> tuple:
    """Optimal ``(num_bits, num_hashes)`` for the given design point."""
    if capacity <= 0:
        raise SamplingError(f"capacity must be positive, got {capacity}")
    if not 0.0 < fp_rate < 1.0:
        raise SamplingError(f"fp_rate must be in (0, 1), got {fp_rate}")
    num_bits = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
    num_hashes = max(1, round((num_bits / capacity) * math.log(2)))
    return num_bits, num_hashes


class BloomFilter:
    """Insert-only Bloom filter with no false negatives.

    Args:
        capacity: the number of distinct keys the filter is sized for.
        fp_rate: target false-positive probability at ``capacity`` keys.
        rng: randomness for the hash salts (seed for reproducibility).

    Example:
        >>> bloom = BloomFilter(capacity=1000, fp_rate=0.01,
        ...                     rng=random.Random(5))
        >>> bloom.add(("user", "item"))
        >>> ("user", "item") in bloom
        True
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "_salts", "_num_added")

    def __init__(
        self,
        capacity: int,
        fp_rate: float = 0.01,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.num_bits, self.num_hashes = optimal_parameters(
            capacity, fp_rate
        )
        rng = rng or random.Random()
        self._bits = 0  # arbitrary-precision int as a bit array
        self._salts: List[int] = [
            rng.getrandbits(64) for _ in range(self.num_hashes)
        ]
        self._num_added = 0

    @property
    def num_added(self) -> int:
        """How many ``add`` calls have been applied (with multiplicity)."""
        return self._num_added

    def _positions(self, key: Hashable) -> List[int]:
        ikey = as_int_key(key)
        return [mix64(salt, ikey) % self.num_bits for salt in self._salts]

    def add(self, key: Hashable) -> None:
        """Insert ``key`` into the filter."""
        for position in self._positions(key):
            self._bits |= 1 << position
        self._num_added += 1

    def __contains__(self, key: Hashable) -> bool:
        return all(
            (self._bits >> position) & 1
            for position in self._positions(key)
        )

    def might_contain(self, key: Hashable) -> bool:
        """Alias of ``in`` making the approximate semantics explicit."""
        return key in self

    def fill_ratio(self) -> float:
        """Fraction of bits set — drives the live false-positive rate."""
        return bin(self._bits).count("1") / self.num_bits

    def current_fp_rate(self) -> float:
        """Estimated false-positive probability at the current fill."""
        return self.fill_ratio() ** self.num_hashes

    def approximate_cardinality(self) -> float:
        """Estimate of distinct keys added (bit-count inversion).

        Uses ``-m/k * ln(1 - X/m)`` where ``X`` is the number of set
        bits; exact for small fills, degrades as the filter saturates.
        """
        set_bits = bin(self._bits).count("1")
        if set_bits >= self.num_bits:
            return float("inf")
        return (
            -self.num_bits
            / self.num_hashes
            * math.log(1.0 - set_bits / self.num_bits)
        )

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Filter containing every key added to either operand."""
        self._require_compatible(other)
        merged = BloomFilter.__new__(BloomFilter)
        merged.num_bits = self.num_bits
        merged.num_hashes = self.num_hashes
        merged._bits = self._bits | other._bits
        merged._salts = list(self._salts)
        merged._num_added = self._num_added + other._num_added
        return merged

    def _require_compatible(self, other: "BloomFilter") -> None:
        if (
            self.num_bits != other.num_bits
            or self.num_hashes != other.num_hashes
            or self._salts != other._salts
        ):
            raise SamplingError(
                "Bloom filters must share size and hash salts"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BloomFilter(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"fill={self.fill_ratio():.3f})"
        )


class CountingBloomFilter:
    """Bloom filter over counters, supporting deletions.

    Each position holds a small counter instead of a bit; ``remove``
    decrements.  As long as every ``remove`` matches an earlier ``add``
    (the fully dynamic stream contract), the filter never produces a
    false negative.

    Example:
        >>> cbf = CountingBloomFilter(capacity=100, rng=random.Random(2))
        >>> cbf.add("edge")
        >>> cbf.remove("edge")
        >>> "edge" in cbf
        False
    """

    __slots__ = ("num_counters", "num_hashes", "_counters", "_salts")

    def __init__(
        self,
        capacity: int,
        fp_rate: float = 0.01,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.num_counters, self.num_hashes = optimal_parameters(
            capacity, fp_rate
        )
        rng = rng or random.Random()
        self._counters: List[int] = [0] * self.num_counters
        self._salts: List[int] = [
            rng.getrandbits(64) for _ in range(self.num_hashes)
        ]

    def _positions(self, key: Hashable) -> List[int]:
        ikey = as_int_key(key)
        return [
            mix64(salt, ikey) % self.num_counters for salt in self._salts
        ]

    def add(self, key: Hashable) -> None:
        """Insert ``key`` (counters saturate only at Python int range)."""
        for position in self._positions(key):
            self._counters[position] += 1

    def remove(self, key: Hashable) -> None:
        """Delete one earlier insertion of ``key``.

        Raises:
            SamplingError: when the filter can prove ``key`` was never
                added (some counter is already zero) — removing it would
                corrupt the no-false-negative invariant for other keys.
        """
        positions = self._positions(key)
        if any(self._counters[p] == 0 for p in positions):
            raise SamplingError(
                f"cannot remove key {key!r}: definitely not present"
            )
        for position in positions:
            self._counters[position] -= 1

    def __contains__(self, key: Hashable) -> bool:
        return all(self._counters[p] > 0 for p in self._positions(key))

    def might_contain(self, key: Hashable) -> bool:
        """Alias of ``in`` making the approximate semantics explicit."""
        return key in self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        live = sum(1 for c in self._counters if c)
        return (
            f"CountingBloomFilter(counters={self.num_counters}, "
            f"hashes={self.num_hashes}, live={live})"
        )
