"""DGIM: counting events in a sliding window with logarithmic memory.

The estimators in this library use *infinite window* semantics
(Section II); operators monitoring a live deployment usually also ask
windowed questions — "how many deletions arrived in the last million
elements?" — whose exact answer needs O(window) memory.  The classic
Datar-Gionis-Indyk-Motwani (DGIM) algorithm answers them within a
bounded relative error using O(log^2 window) bits: it keeps buckets of
exponentially growing sizes and merges the oldest pair whenever more
than ``buckets_per_size`` buckets share a size.

Guarantee: with ``r = buckets_per_size`` the estimate is within a
``1 / r`` relative error of the true in-window count (50% at the
minimum r=2 — the textbook DGIM bound — and 10% at r=10).  The worst
case is an oldest bucket of size 2 straddling the window boundary;
for large buckets the error approaches the asymptotic
``1 / (2 * (r - 1))``.

:class:`DeletionRateMonitor` wires a DGIM counter pair to a fully
dynamic stream to expose the recent deletion ratio — the live estimate
of the paper's α, useful for alerting when a feed turns unexpectedly
deletion-heavy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.errors import SamplingError
from repro.types import StreamElement

# A bucket is (timestamp_of_newest_event, size); sizes are powers of 2.
_Bucket = Tuple[int, int]


class DgimCounter:
    """Approximate count of events in the trailing ``window`` ticks.

    Args:
        window: sliding-window length in ticks (stream elements).
        buckets_per_size: ``r >= 2``; memory grows linearly and the
            error bound shrinks as ``1 / (2 * (r - 1))``.

    Example:
        >>> counter = DgimCounter(window=100)
        >>> for i in range(200):
        ...     counter.update(True)
        >>> 50 <= counter.estimate() <= 150
        True
    """

    __slots__ = ("window", "buckets_per_size", "_buckets", "_clock")

    def __init__(self, window: int, buckets_per_size: int = 2) -> None:
        if window <= 0:
            raise SamplingError(f"window must be positive, got {window}")
        if buckets_per_size < 2:
            raise SamplingError(
                f"buckets_per_size must be >= 2, got {buckets_per_size}"
            )
        self.window = window
        self.buckets_per_size = buckets_per_size
        # Newest bucket at the left; sizes non-decreasing rightwards.
        self._buckets: Deque[_Bucket] = deque()
        self._clock = 0

    @property
    def ticks(self) -> int:
        """Stream positions observed so far."""
        return self._clock

    @property
    def num_buckets(self) -> int:
        """Current memory use in buckets (O(r log window))."""
        return len(self._buckets)

    def update(self, event: bool) -> None:
        """Advance one tick; record whether the event of interest fired."""
        self._clock += 1
        self._expire()
        if not event:
            return
        self._buckets.appendleft((self._clock, 1))
        self._merge()

    def estimate(self) -> float:
        """Estimated events within the last ``window`` ticks.

        Counts every in-window bucket fully except the oldest, which
        contributes half its size (the DGIM rule: only its newest event
        is known to be inside the window).  Two cases are exact and
        skip the halving: while the stream is shorter than the window
        nothing can have expired, and a size-1 oldest bucket pins its
        single event's timestamp exactly.
        """
        self._expire()
        if not self._buckets:
            return 0.0
        total = sum(size for _, size in self._buckets)
        oldest_size = self._buckets[-1][1]
        if self._clock <= self.window or oldest_size == 1:
            return float(total)
        return total - oldest_size / 2.0

    def error_bound(self) -> float:
        """The worst-case relative error of :meth:`estimate`.

        With at least ``r - 1`` buckets of every smaller size (the
        merge rule's invariant), an oldest bucket of size ``2^j``
        contributes at most ``2^(j-1)`` uncertainty against a true
        count of at least ``1 + (r - 1)(2^j - 1)``; the ratio is
        maximised at ``j = 1``, giving ``1 / r``.
        """
        return 1.0 / self.buckets_per_size

    def _expire(self) -> None:
        cutoff = self._clock - self.window
        while self._buckets and self._buckets[-1][0] <= cutoff:
            self._buckets.pop()

    def _merge(self) -> None:
        """Restore the <= r buckets-per-size invariant, cascading."""
        buckets = self._buckets
        size = 1
        start = 0
        while True:
            # Count consecutive buckets of the current size.
            count = 0
            index = start
            while index < len(buckets) and buckets[index][1] == size:
                count += 1
                index += 1
            if count <= self.buckets_per_size:
                if index >= len(buckets):
                    return
                start = index
                size = buckets[index][1]
                continue
            # Merge the two *oldest* buckets of this size.
            newer_ts, _ = buckets[index - 2]
            del buckets[index - 2]
            buckets[index - 2] = (newer_ts, size * 2)
            # The merged bucket heads the size-2s run; it may now
            # violate the invariant at that level, so rescan from it.
            size *= 2
            start = index - 2


class DeletionRateMonitor:
    """Live estimate of the deletion ratio over a trailing window.

    Feeds two DGIM counters — one per operation type would be
    redundant since every tick is an element, so only deletions are
    counted and the window length itself is the denominator.

    Example:
        >>> from repro.types import insertion
        >>> monitor = DeletionRateMonitor(window=1000)
        >>> monitor.observe(insertion("u", "v"))
        >>> monitor.deletion_ratio() == 0.0
        True
    """

    __slots__ = ("_deletions", "window")

    def __init__(self, window: int, buckets_per_size: int = 8) -> None:
        self.window = window
        self._deletions = DgimCounter(window, buckets_per_size)

    def observe(self, element: StreamElement) -> None:
        """Feed one stream element."""
        self._deletions.update(element.is_deletion)

    def recent_deletions(self) -> float:
        """Estimated deletions within the trailing window."""
        return self._deletions.estimate()

    def deletion_ratio(self) -> float:
        """Estimated fraction of recent elements that were deletions."""
        seen = min(self._deletions.ticks, self.window)
        if seen == 0:
            return 0.0
        return self._deletions.estimate() / seen
