"""The replication wire grammar: WAL shipping over line-delimited JSON.

Replication extends the serving protocol of
:mod:`repro.serve.protocol` rather than inventing a new transport: a
follower opens a TCP connection to the primary's **replication port**
and sends one ordinary request — the handshake.  The primary answers
with one ordinary response, and from then on the connection stops
being request/response: the primary *pushes* stream messages (element
batches and heartbeats) down the line while the follower sends acked
offsets back up it, both as one JSON object per line.

Handshake (start-offset negotiation)::

    -> {"id": 1, "op": "replicate", "follower": "f1", "have_offset": 96}
    <- {"id": 1, "ok": true, "result": {
           "mode": "stream", "start": 96, "offset": 4096,
           "spec": "abacus:budget=1000,seed=42", "version": 1}}

``have_offset`` is the element offset the follower already holds
durably.  When the primary's WAL still covers it, ``mode`` is
``"stream"`` and batches begin at ``start == have_offset``.  When
those records were pruned at a checkpoint, ``mode`` is ``"snapshot"``:
the result additionally carries the primary's newest durable
``snapshot`` envelope and its ``snapshot_offset``, the follower
installs it, and batches begin at the snapshot offset instead.  A
handshake with ``"probe": true`` only negotiates — the primary
answers and closes without streaming (the follower bootstrap uses
this to decide whether it needs the snapshot before going live).

Stream messages (primary -> follower), each carrying the global
element offset ``base`` of its first record so the follower can
detect duplicates and gaps::

    {"stream": "batch", "base": 96, "records": [["+", "u", "v"], ...]}
    {"stream": "heartbeat", "offset": 4096}

Acks (follower -> primary)::

    {"ack": 128}

Element records are the shared grammar of
:meth:`repro.types.StreamElement.to_record` — the same frames the
write-ahead log stores, which is what makes the WAL a replication log
(``docs/replication.md``).  A follower may opt in to the **packed
binary batch payload** (:mod:`repro.store.codec`) by adding
``"codec": 2`` to its handshake; a primary that supports it echoes
``"codec": 2`` in the handshake result and ships batches as
``{"stream": "batch", "base": ..., "codec": 2, "payload": "<base64>"}``
instead of ``"records"`` — the exact payload bytes a packed WAL frame
batch holds, so the primary never re-encodes elements per follower.
A handshake without the field keeps today's wire byte-compatible.

>>> message = batch_message(7, [insertion("alice", "matrix")])
>>> kind, base, elements = decode_stream_message(message)
>>> kind, base, [str(e) for e in elements]
('batch', 7, ['(alice, matrix, +)'])
>>> packed = batch_message(7, [insertion(3, 5)], codec=2)
>>> sorted(packed)
['base', 'codec', 'payload', 'stream']
>>> [str(e) for e in decode_stream_message(packed)[2]]
['(3, 5, +)']
>>> decode_stream_message(heartbeat_message(42))
('heartbeat', 42, [])
>>> decode_ack({"ack": 128})
128
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ClusterError, ServeError
from repro.serve.protocol import (
    decode_payload,
    elements_to_records,
    payload_fields,
    records_to_elements,
)
from repro.types import StreamElement, insertion  # noqa: F401 (doctest)

__all__ = [
    "CATCHUP_BATCH",
    "DEFAULT_HEARTBEAT_S",
    "REPLICATION_MAX_LINE",
    "REPLICATION_PROTOCOL_VERSION",
    "ack_message",
    "batch_message",
    "decode_ack",
    "decode_stream_message",
    "handshake_request",
]

#: Replication protocol version, echoed in the handshake result.
REPLICATION_PROTOCOL_VERSION = 1

#: Line cap for replication connections.  Larger than the serving
#: :data:`~repro.serve.protocol.MAX_LINE` because one handshake line
#: may carry a whole snapshot envelope.
REPLICATION_MAX_LINE = 64 << 20

#: Records per catch-up batch the primary ships from its WAL.
CATCHUP_BATCH = 512

#: Idle interval after which the primary sends a heartbeat (seconds).
#: Heartbeats carry the primary's current offset, so followers can
#: report lag even when no elements are flowing.
DEFAULT_HEARTBEAT_S = 0.5


def handshake_request(
    follower: str,
    have_offset: int,
    *,
    probe: bool = False,
    request_id: int = 1,
    codec: Optional[int] = None,
) -> Dict[str, Any]:
    """The request a follower opens a replication connection with.

    ``codec=2`` asks the primary to ship packed binary batch payloads;
    omitted, the wire stays the JSON record grammar it always was.
    """
    request: Dict[str, Any] = {
        "id": request_id,
        "op": "replicate",
        "follower": follower,
        "have_offset": have_offset,
    }
    if probe:
        request["probe"] = True
    if codec is not None:
        request["codec"] = codec
    return request


def batch_message(
    base: int,
    elements: Sequence[StreamElement],
    *,
    codec: Optional[int] = None,
) -> Dict[str, Any]:
    """One pushed replication batch starting at global offset ``base``.

    With ``codec=2`` the elements travel as one packed binary payload
    (base64) instead of a JSON record list — negotiated per follower
    at handshake, never assumed.
    """
    if codec == 2:
        return {"stream": "batch", "base": base, **payload_fields(elements)}
    return {
        "stream": "batch",
        "base": base,
        "records": elements_to_records(elements),
    }


def heartbeat_message(offset: int) -> Dict[str, Any]:
    """An idle-connection keepalive carrying the primary's offset."""
    return {"stream": "heartbeat", "offset": offset}


def ack_message(offset: int) -> Dict[str, Any]:
    """The follower's applied-offset report."""
    return {"ack": offset}


def decode_ack(message: Dict[str, Any]) -> Optional[int]:
    """The acked offset of a follower line, or None for other chatter."""
    offset = message.get("ack")
    if offset is None:
        return None
    if not isinstance(offset, int) or offset < 0:
        raise ClusterError(f"malformed replication ack: {message!r}")
    return offset


def decode_stream_message(
    message: Dict[str, Any],
) -> Tuple[str, int, List[StreamElement]]:
    """Parse one pushed message into ``(kind, offset, elements)``.

    ``kind`` is ``"batch"`` (offset = the batch's base, elements = its
    decoded records) or ``"heartbeat"`` (offset = the primary's
    current offset, no elements).  Anything else raises
    :class:`~repro.errors.ClusterError` — a replication stream has no
    third message kind, so tolerating one would hide protocol drift.
    """
    kind = message.get("stream")
    if kind == "batch":
        base = message.get("base")
        if not isinstance(base, int) or base < 0:
            raise ClusterError(
                f"replication batch with a malformed base: {message!r}"
            )
        try:
            if "payload" in message:
                elements = decode_payload(
                    message.get("codec"), message["payload"]
                )
            else:
                elements = records_to_elements(message.get("records"))
        except Exception as exc:
            raise ClusterError(
                f"replication batch at offset {base} carries "
                f"undecodable records: {exc}"
            ) from exc
        return "batch", base, elements
    if kind == "heartbeat":
        offset = message.get("offset")
        if not isinstance(offset, int) or offset < 0:
            raise ClusterError(
                f"replication heartbeat with a malformed offset: "
                f"{message!r}"
            )
        return "heartbeat", offset, []
    raise ClusterError(
        f"unknown replication stream message: {message!r}"
    )
