"""The replication primary: ``ReplicatingServer``.

A primary is an ordinary :class:`~repro.serve.server.EstimatorServer`
over a **durable** session, plus a second listening port that speaks
the replication grammar of :mod:`repro.cluster.protocol`.  The WAL the
session already writes is the replication log — nothing is logged
twice:

* **Handshake on the writer thread.**  Registering a follower must not
  race ingest, so the start-offset negotiation runs as a job on the
  same single-thread executor that applies mutations: it syncs the
  WAL, reads the current element offset as the *cut*, and registers
  the follower's live queue — all while no ingest can run.  Catch-up
  then ships ``[start, cut)`` straight from the WAL segments on disk,
  and every batch ingested after the cut reaches the queue, so the two
  ranges meet exactly: no gap, no duplicate.
* **Snapshot bootstrap.**  When the follower's offset predates the
  oldest WAL segment (pruned at a checkpoint), the handshake answer
  carries the newest durable snapshot instead, and streaming starts at
  the snapshot offset.
* **Push + heartbeat.**  After catch-up the connection turns into a
  push stream: ingested batches are fanned out as they happen, and an
  idle connection gets a heartbeat carrying the primary's offset so
  followers can measure lag while the stream is quiet.
* **Acked offsets.**  The follower reports each applied offset back up
  the same connection; ``stats`` folds them into the
  :func:`~repro.metrics.replication.lag_summary` that the replicated
  cluster's observability (and its benchmark gate) is built on.

Start one with :func:`replicate_in_background`, or ``repro serve
--replicate-to PORT`` on the CLI (``docs/replication.md``).
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.api.session import Session
from repro.cluster.protocol import (
    CATCHUP_BATCH,
    DEFAULT_HEARTBEAT_S,
    REPLICATION_MAX_LINE,
    REPLICATION_PROTOCOL_VERSION,
    batch_message,
    decode_ack,
    heartbeat_message,
)
from repro.errors import ClusterError, ReproError
from repro.metrics.replication import lag_summary
from repro.serve.protocol import (
    decode_message,
    encode_message,
    error_response,
    result_response,
)
from repro.serve.server import (
    BackgroundServer,
    EstimatorServer,
    _read_line,
    serve_in_background,
)
from repro.types import StreamElement

__all__ = ["ReplicatingServer", "replicate_in_background"]


class _FollowerHandle:
    """One registered follower: its live queue and acked offset."""

    __slots__ = (
        "follower_id",
        "queue",
        "acked_offset",
        "connected",
        "codec",
    )

    def __init__(
        self, follower_id: str, codec: Optional[int] = None
    ) -> None:
        self.follower_id = follower_id
        self.queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        self.acked_offset = 0
        self.connected = True
        #: negotiated batch codec (2 = packed payload, None = records).
        self.codec = codec


class ReplicatingServer(EstimatorServer):
    """An :class:`EstimatorServer` that ships its WAL to followers.

    Args:
        session: the session to serve.  Must be durable — the WAL is
            the replication log, so a primary without one has nothing
            to ship.
        host: interface to bind (both ports).
        port: serving port (0 picks a free one).
        replication_port: the port followers connect to (0 picks a
            free one; see :attr:`replication_address`).
        heartbeat_s: idle interval before a keepalive heartbeat.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        replication_port: int = 0,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ) -> None:
        if not session.durable:
            raise ClusterError(
                "a replication primary needs a durable session "
                "(open_session(..., durable_dir=...)): its WAL is "
                "the replication log"
            )
        super().__init__(session, host, port)
        self._replication_port = replication_port
        self._repl_server: Optional[asyncio.Server] = None
        self._heartbeat_s = heartbeat_s
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: live followers by id; reads happen on the loop, registration
        #: on the writer thread (see _negotiate).
        self._followers: Dict[str, _FollowerHandle] = {}
        #: last acked offset of followers that have disconnected, so
        #: stats keep telling the whole story.
        self._gone_acked: Dict[str, int] = {}
        self._repl_tasks: Set["asyncio.Task[Any]"] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await super().start()
        self._loop = asyncio.get_running_loop()
        self._repl_server = await asyncio.start_server(
            self._handle_replication_connection,
            self._host,
            self._replication_port,
            limit=REPLICATION_MAX_LINE,
        )
        self._replication_port = (
            self._repl_server.sockets[0].getsockname()[1]
        )

    @property
    def replication_address(self) -> Tuple[str, int]:
        """``(host, port)`` followers connect to, once started."""
        return (self._host, self._replication_port)

    async def aclose(self) -> None:
        if self._repl_server is not None:
            self._repl_server.close()
            await self._repl_server.wait_closed()
            self._repl_server = None
        for task in list(self._repl_tasks):
            task.cancel()
        for task in list(self._repl_tasks):
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._repl_tasks.clear()
        await super().aclose()

    # ------------------------------------------------------------------
    # Fan-out (writer thread -> loop)
    # ------------------------------------------------------------------
    def _apply_ingest(self, elements: list) -> Dict[str, Any]:
        base = self._session.elements
        result = super()._apply_ingest(elements)
        if elements and self._followers and self._loop is not None:
            self._loop.call_soon_threadsafe(
                self._fanout, base, list(elements)
            )
        return result

    def _fanout(self, base: int, elements: List[StreamElement]) -> None:
        # Encode once per negotiated codec — every follower that
        # speaks the same codec shares the identical message object,
        # so a mixed fleet costs one JSON and one packed encoding,
        # never one per follower.
        messages: Dict[Optional[int], Dict[str, Any]] = {}
        for handle in list(self._followers.values()):
            message = messages.get(handle.codec)
            if message is None:
                message = messages[handle.codec] = batch_message(
                    base, elements, codec=handle.codec
                )
            handle.queue.put_nowait(message)

    # ------------------------------------------------------------------
    # Handshake (runs on the writer thread)
    # ------------------------------------------------------------------
    def _negotiate(
        self,
        follower_id: str,
        have_offset: int,
        handle: Optional[_FollowerHandle],
    ) -> Tuple[int, Dict[str, Any]]:
        """Negotiate a start offset and register the follower.

        Runs on the single writer thread, so the cut it takes — sync
        the WAL, read the offset, register the live queue — is atomic
        with respect to ingest: every element below the cut is durable
        on disk for catch-up, every element at or past it will be
        fanned out to the queue.
        """
        session = self._session
        store = session.store
        assert store is not None  # guaranteed by __init__
        store.sync()
        cut = session.elements
        if have_offset > cut:
            raise ClusterError(
                f"follower {follower_id!r} claims offset {have_offset} "
                f"but this primary has only logged {cut} elements; "
                "it is following the wrong primary or a diverged log"
            )
        spec = session.spec
        info: Dict[str, Any] = {
            "version": REPLICATION_PROTOCOL_VERSION,
            "offset": cut,
            "spec": spec.to_string() if spec else None,
        }
        if handle is not None and handle.codec is not None:
            # Echo the accepted batch codec so the follower knows the
            # opt-in took (docs/replication.md).
            info["codec"] = handle.codec
        if have_offset >= store.oldest_offset():
            info["mode"] = "stream"
            info["start"] = have_offset
        else:
            latest = store.snapshots.latest()
            if latest is None:  # pragma: no cover - pruning implies one
                raise ClusterError(
                    "primary WAL no longer covers offset "
                    f"{have_offset} and no snapshot exists"
                )
            snapshot_offset, payload = latest
            info["mode"] = "snapshot"
            info["start"] = snapshot_offset
            info["snapshot"] = payload
            info["snapshot_offset"] = snapshot_offset
        if handle is not None:
            self._followers[follower_id] = handle
            self._gone_acked.pop(follower_id, None)
        return cut, info

    def _read_catchup_chunk(
        self, start: int, end: int
    ) -> List[StreamElement]:
        store = self._session.store
        assert store is not None
        return list(store.read_records(start, end))

    # ------------------------------------------------------------------
    # Replication connections
    # ------------------------------------------------------------------
    async def _handle_replication_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._repl_tasks.add(task)
        handle: Optional[_FollowerHandle] = None
        try:
            handle = await self._replicate(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown cancels replication tasks; ending the
            # task normally keeps asyncio's stream teardown quiet.
            pass
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            if (
                handle is not None
                and self._followers.get(handle.follower_id) is handle
            ):
                handle.connected = False
                del self._followers[handle.follower_id]
                self._gone_acked[handle.follower_id] = handle.acked_offset
            if task is not None:
                self._repl_tasks.discard(task)
            writer.close()
            with contextlib.suppress(
                ConnectionResetError, BrokenPipeError
            ):
                await writer.wait_closed()

    async def _replicate(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> Optional[_FollowerHandle]:
        """Serve one replication connection; returns its handle."""
        line = await _read_line(reader)
        if not line or line.strip() == b"":
            return None
        request_id: Optional[Any] = None
        loop = asyncio.get_running_loop()
        try:
            request = decode_message(line)
            request_id = request.get("id")
            if request.get("op") != "replicate":
                raise ClusterError(
                    "the replication port only accepts the "
                    "'replicate' handshake; queries go to the "
                    "serving port"
                )
            follower_id = str(request.get("follower") or "") or None
            if follower_id is None:
                raise ClusterError(
                    "replication handshake needs a 'follower' id"
                )
            have_offset = request.get("have_offset")
            if not isinstance(have_offset, int) or have_offset < 0:
                raise ClusterError(
                    "replication handshake needs a non-negative "
                    f"integer 'have_offset', got {have_offset!r}"
                )
            probe = bool(request.get("probe"))
            # Batch-codec opt-in: only the packed format is accepted;
            # any other value falls back to JSON records, so a newer
            # follower degrades gracefully against this primary.
            codec = request.get("codec")
            codec = 2 if codec == 2 else None
            handle = (
                None if probe else _FollowerHandle(follower_id, codec)
            )
            cut, info = await loop.run_in_executor(
                self._writer_pool,
                self._negotiate,
                follower_id,
                have_offset,
                handle,
            )
        except ReproError as exc:
            writer.write(encode_message(error_response(
                request_id, type(exc).__name__, str(exc)
            )))
            await writer.drain()
            return None
        writer.write(encode_message(result_response(request_id, info)))
        await writer.drain()
        if handle is None:  # probe: answer and close
            return None
        # Catch-up: ship [start, cut) straight from the WAL segments.
        # Reads run on the default executor so ingest stays live; a
        # checkpoint pruning a segment mid-read surfaces as a
        # StoreError that drops the connection — the follower simply
        # reconnects and renegotiates (then from the snapshot).
        start = int(info["start"])
        for chunk_start in range(start, cut, CATCHUP_BATCH):
            chunk_end = min(chunk_start + CATCHUP_BATCH, cut)
            elements = await loop.run_in_executor(
                None, self._read_catchup_chunk, chunk_start, chunk_end
            )
            writer.write(encode_message(
                batch_message(chunk_start, elements, codec=handle.codec)
            ))
            await writer.drain()
        await self._stream_live(handle, reader, writer)
        return handle

    async def _stream_live(
        self,
        handle: _FollowerHandle,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Drain the follower's queue; heartbeat when idle."""
        ack_task = asyncio.ensure_future(
            self._consume_acks(handle, reader)
        )
        try:
            while True:
                if self._followers.get(handle.follower_id) is not handle:
                    return  # superseded by a reconnect
                if ack_task.done():
                    return  # follower hung up (or sent garbage)
                try:
                    message = await asyncio.wait_for(
                        handle.queue.get(), timeout=self._heartbeat_s
                    )
                except asyncio.TimeoutError:
                    message = heartbeat_message(self._view.elements)
                writer.write(encode_message(message))
                await writer.drain()
        finally:
            ack_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await ack_task

    async def _consume_acks(
        self, handle: _FollowerHandle, reader: asyncio.StreamReader
    ) -> None:
        while True:
            line = await _read_line(reader)
            if not line:
                return
            if line.strip() == b"":
                continue
            try:
                offset = decode_ack(decode_message(line))
            except ReproError:
                return  # malformed chatter: drop the connection
            if offset is not None:
                handle.acked_offset = offset

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _read(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        result = super()._read(op, request)
        if op == "stats":
            result["role"] = "primary"
            result["replication"] = self.replication_summary()
        return result

    def replication_summary(self) -> Dict[str, Any]:
        """Per-follower lag against the published offset.

        Disconnected followers stay listed (``connected: false``) at
        their last acked offset — a follower that silently vanished is
        an operational fact, not something stats should forget.
        """
        live = {
            handle.follower_id: handle.acked_offset
            for handle in self._followers.values()
        }
        summary = lag_summary(
            self._view.elements, {**self._gone_acked, **live}
        )
        for name, info in summary["followers"].items():
            info["connected"] = name in live
        summary["port"] = self._replication_port
        return summary


def replicate_in_background(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    replication_port: int = 0,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
) -> BackgroundServer:
    """Start a :class:`ReplicatingServer` on a daemon loop thread.

    The returned handle's ``server`` is the
    :class:`ReplicatingServer`; read ``server.replication_address``
    for the port followers should connect to.
    """
    return serve_in_background(
        session,
        host,
        port,
        server_factory=lambda session, host, port: ReplicatingServer(
            session,
            host,
            port,
            replication_port=replication_port,
            heartbeat_s=heartbeat_s,
        ),
    )
