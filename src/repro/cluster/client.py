"""``ClusterClient`` — one client for a replicated serving cluster.

Routes by operation: **mutations go to the primary, reads fan out
across the followers** (round-robin), falling back to the primary when
every follower is unreachable or stale.  Each node is reached through
an ordinary :class:`~repro.serve.client.ServeClient`, created lazily
and dropped on transport failure so the next call reconnects — a
follower restarting mid-benchmark costs one retry, not a dead client.

The client also carries the cluster's **read-your-writes watermark**:
every acknowledged ``ingest`` records the global element offset the
write reached, and a ``read_your_writes`` read sends it as
``min_offset`` — a follower then waits for replication to catch up
(bounded) rather than serve the client a view older than its own
write.  ``tests/cluster/test_read_modes.py`` holds the guarantee: a
client that wrote offset ``k`` never observes fewer than ``k``
elements from any node.

Failover is explicit: :meth:`promote` sends the wire ``promote`` to a
follower and re-points writes at it (``docs/replication.md``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ClusterError, NotPrimaryError, ServeError
from repro.serve.client import ServeClient
from repro.serve.protocol import elements_to_records
from repro.types import StreamElement

__all__ = ["ClusterClient"]

Address = Tuple[str, int]


class ClusterClient:
    """Route operations across a primary and its followers.

    Args:
        primary: the primary's **serving** address.
        followers: follower serving addresses reads rotate across
            (the primary serves reads too when none are given).
        read_mode: default consistency for reads — ``"eventual"``
            (default) or ``"read_your_writes"`` (sends the client's
            write watermark; see module docstring).
        timeout: per-call socket timeout for every connection.
        connect_timeout: per-attempt connect timeout (defaults to
            ``timeout``).

    Not thread-safe (same contract as :class:`ServeClient`); give
    each thread its own.
    """

    def __init__(
        self,
        primary: Address,
        followers: Iterable[Address] = (),
        *,
        read_mode: str = "eventual",
        timeout: Optional[float] = 30.0,
        connect_timeout: Optional[float] = None,
    ) -> None:
        if read_mode not in ("eventual", "read_your_writes"):
            raise ClusterError(
                f"unknown read_mode {read_mode!r}; supported: "
                "eventual, read_your_writes"
            )
        self._primary: Address = (str(primary[0]), int(primary[1]))
        self._followers: List[Address] = [
            (str(host), int(port)) for host, port in followers
        ]
        self._read_mode = read_mode
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._clients: Dict[Address, ServeClient] = {}
        self._rotation = 0
        self._last_offset = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def primary(self) -> Address:
        return self._primary

    @property
    def followers(self) -> Tuple[Address, ...]:
        return tuple(self._followers)

    @property
    def last_offset(self) -> int:
        """The element offset of this client's last acknowledged write."""
        return self._last_offset

    def set_primary(self, address: Address) -> None:
        """Re-point writes (e.g. after an out-of-band promotion)."""
        address = (str(address[0]), int(address[1]))
        self._primary = address
        self._followers = [
            follower for follower in self._followers
            if follower != address
        ]

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _client(self, address: Address) -> ServeClient:
        client = self._clients.get(address)
        if client is None:
            client = ServeClient(
                *address,
                timeout=self._timeout,
                connect_timeout=self._connect_timeout,
            )
            self._clients[address] = client
        return client

    def _drop(self, address: Address) -> None:
        client = self._clients.pop(address, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Writes: primary only
    # ------------------------------------------------------------------
    def _call_primary(self, op: str, **fields: Any) -> Any:
        """One mutating call, retried once across a reconnect."""
        last: Optional[Exception] = None
        for attempt in range(2):
            try:
                return self._client(self._primary).call(op, **fields)
            except ServeError as exc:
                if exc.remote_type == "NotPrimaryError":
                    # The node answered — it is just not the primary
                    # anymore.  Re-raise under the cluster's own type
                    # so callers can re-point and retry.
                    raise NotPrimaryError(str(exc)) from exc
                self._drop(self._primary)
                last = exc
                if exc.remote_type is not None:
                    break  # the server answered: retrying won't help
        raise ClusterError(
            f"write {op!r} to primary {self._primary} failed: {last}"
        ) from last

    def ingest(
        self,
        elements: Union[StreamElement, Iterable[StreamElement]],
    ) -> Dict[str, Any]:
        """Ingest through the primary; advances the RYW watermark."""
        if isinstance(elements, StreamElement):
            elements = [elements]
        result = self._call_primary(
            "ingest", elements=elements_to_records(elements)
        )
        offset = result.get("elements")
        if isinstance(offset, int):
            self._last_offset = max(self._last_offset, offset)
        return result

    def flush(self) -> Dict[str, Any]:
        return self._call_primary("flush")

    def reshard(
        self,
        shards: int,
        *,
        backend: Optional[str] = None,
        partitioner: Optional[str] = None,
        salt: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Live-reshard the primary's sharded session (primary only).

        Followers keep replaying the element log through their own
        engines and are **not** resharded — their estimates agree with
        the primary's in expectation, not bit-for-bit, until they are
        rebuilt on the new topology (``docs/resharding.md`` discusses
        the caveat).  Use :meth:`topology` for the authoritative
        topology during and after the transition.
        """
        fields: Dict[str, Any] = {"shards": shards}
        if backend is not None:
            fields["backend"] = backend
        if partitioner is not None:
            fields["partitioner"] = partitioner
        if salt is not None:
            fields["salt"] = salt
        return self._call_primary("reshard", **fields)

    def topology(self) -> Optional[Dict[str, Any]]:
        """The **primary's** current shard topology (None: unsharded).

        Deliberately never read from a follower: followers do not
        reshard with the primary, so only the primary's published view
        is authoritative about the topology — reading it anywhere else
        could surface a stale epoch mid-reshard.
        """
        return self._call_primary("stats").get("topology")

    def checkpoint(self) -> int:
        return self._call_primary("checkpoint")["offset"]

    def snapshot(self) -> Dict[str, Any]:
        return self._call_primary("snapshot")["snapshot"]

    # ------------------------------------------------------------------
    # Tenant catalog: primary only (docs/multitenancy.md)
    # ------------------------------------------------------------------
    def create_tenant(
        self,
        name: str,
        spec: str,
        *,
        quota: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Create a tenant in the primary's hosted catalog.

        Tenant catalogs are primary-only state — followers replicate
        one session's WAL, not a catalog, and refuse every tenant
        operation with ``NotPrimaryError``.
        """
        fields: Dict[str, Any] = {"name": name, "spec": spec}
        if quota is not None:
            fields["quota"] = quota
        return self._call_primary("create_tenant", **fields)

    def drop_tenant(self, name: str) -> Dict[str, Any]:
        return self._call_primary("drop_tenant", name=name)

    def list_tenants(self) -> Dict[str, Any]:
        return self._call_primary("list_tenants")

    # ------------------------------------------------------------------
    # Reads: follower rotation, primary fallback
    # ------------------------------------------------------------------
    def _read_targets(self) -> List[Address]:
        if not self._followers:
            return [self._primary]
        start = self._rotation % len(self._followers)
        self._rotation += 1
        rotated = self._followers[start:] + self._followers[:start]
        return rotated + [self._primary]

    def _call_read(self, op: str, read_mode: Optional[str]) -> Any:
        mode = read_mode or self._read_mode
        fields: Dict[str, Any] = {"read_mode": mode}
        if mode == "read_your_writes":
            fields["min_offset"] = self._last_offset
        failures: List[str] = []
        for address in self._read_targets():
            try:
                return self._client(address).call(op, **fields)
            except ServeError as exc:
                if exc.remote_type is None:
                    self._drop(address)  # transport: reconnect later
                failures.append(f"{address[0]}:{address[1]}: {exc}")
        raise ClusterError(
            f"read {op!r} failed on every node — "
            + "; ".join(failures)
        )

    def estimate(
        self, *, read_mode: Optional[str] = None
    ) -> Dict[str, Any]:
        """The estimate from the next follower in rotation."""
        return self._call_read("estimate", read_mode)

    def stats(self, *, read_mode: Optional[str] = None) -> Dict[str, Any]:
        return self._call_read("stats", read_mode)

    def stats_all(self) -> Dict[str, Dict[str, Any]]:
        """``stats`` from every reachable node, keyed ``host:port``.

        Unreachable nodes are reported as ``{"error": ...}`` rather
        than aborting the sweep — this is the observability call.
        """
        everything: Dict[str, Dict[str, Any]] = {}
        for address in [self._primary, *self._followers]:
            key = f"{address[0]}:{address[1]}"
            try:
                everything[key] = self._client(address).call(
                    "stats", read_mode="eventual"
                )
            except ServeError as exc:
                self._drop(address)
                everything[key] = {"error": str(exc)}
        return everything

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def promote(self, address: Address) -> Dict[str, Any]:
        """Promote the follower at ``address`` and re-point writes.

        The old primary (if it still appears in the topology) is
        dropped from rotation — after a failover it holds a log that
        may have diverged from the new primary's.
        """
        address = (str(address[0]), int(address[1]))
        try:
            result = self._client(address).call("promote")
        except ServeError as exc:
            self._drop(address)
            raise ClusterError(
                f"promotion of {address[0]}:{address[1]} failed: {exc}"
            ) from exc
        old_primary = self._primary
        self.set_primary(address)
        self._drop(old_primary)
        return result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        for address in list(self._clients):
            self._drop(address)

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterClient(primary={self._primary!r}, "
            f"followers={self._followers!r})"
        )
