"""The replicated serving cluster: WAL shipping over the wire.

One durable primary (:mod:`repro.cluster.primary`) ships its
write-ahead log to any number of followers
(:mod:`repro.cluster.follower`), each of which re-logs the stream to
its own disk and serves reads from it; a
:class:`~repro.cluster.client.ClusterClient` routes mutations to the
primary and fans reads across the followers.  The replication wire
grammar lives in :mod:`repro.cluster.protocol`, lag accounting in
:func:`repro.metrics.replication.lag_summary`, and the design —
including the proven failover contract — in ``docs/replication.md``.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.follower import (
    FollowerServer,
    bootstrap_follower,
    follow_in_background,
    install_snapshot,
)
from repro.cluster.primary import (
    ReplicatingServer,
    replicate_in_background,
)
from repro.cluster.protocol import (
    CATCHUP_BATCH,
    DEFAULT_HEARTBEAT_S,
    REPLICATION_MAX_LINE,
    REPLICATION_PROTOCOL_VERSION,
    ack_message,
    batch_message,
    decode_ack,
    decode_stream_message,
    handshake_request,
    heartbeat_message,
)

__all__ = [
    "CATCHUP_BATCH",
    "ClusterClient",
    "DEFAULT_HEARTBEAT_S",
    "FollowerServer",
    "REPLICATION_MAX_LINE",
    "REPLICATION_PROTOCOL_VERSION",
    "ReplicatingServer",
    "ack_message",
    "batch_message",
    "bootstrap_follower",
    "decode_ack",
    "decode_stream_message",
    "follow_in_background",
    "handshake_request",
    "heartbeat_message",
    "install_snapshot",
    "replicate_in_background",
]
