"""The replication follower: bootstrap + ``FollowerServer``.

A follower is a read-only :class:`~repro.serve.server.EstimatorServer`
over its **own** durable session.  Replicated batches are applied
through the ordinary ``session.ingest`` path, which WAL-appends them
locally before processing — so the follower re-earns the primary's
durability on its own disk, element by element.  That is the entire
failover story: promoting a follower is nothing more than what
``open_session(durable_dir=...)`` already does on any durable
directory, torn-tail truncation included
(``tests/cluster/test_failover.py`` proves the result bit-identical
to an uninterrupted single node).

The pieces:

* :func:`bootstrap_follower` — open (or recover) the local durable
  directory, probe the primary with the held offset, install the
  primary's snapshot when the needed WAL records were pruned, and
  return a session ready to follow.
* :class:`FollowerServer` — serves reads while a background task
  replays the primary's stream: connect, handshake, apply batches on
  the writer thread, publish views, ack applied offsets, reconnect
  with backoff when the primary drops.  Mutating operations are
  refused with :class:`~repro.errors.NotPrimaryError` naming the
  primary.  ``read_your_writes`` reads *wait* (bounded) for
  replication to catch up to the client's watermark instead of
  refusing.
* ``promote`` — the wire operation that flips a follower into a
  primary-shaped server: stop following, allow writes, keep serving.

Start one with :func:`follow_in_background`, or ``repro follow`` on
the CLI (``docs/replication.md``).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api import open_session
from repro.api.session import Session
from repro.cluster.protocol import (
    REPLICATION_MAX_LINE,
    ack_message,
    decode_stream_message,
    handshake_request,
)
from repro.errors import (
    ClusterError,
    NotPrimaryError,
    ReproError,
    StaleReadError,
)
from repro.serve.client import connect_with_backoff
from repro.serve.protocol import decode_message, encode_message
from repro.serve.server import (
    BackgroundServer,
    EstimatorServer,
    TENANT_ADMIN_OPS,
    _read_line,
    serve_in_background,
)
from repro.store.durable import DurableStore
from repro.types import StreamElement

__all__ = [
    "FollowerServer",
    "bootstrap_follower",
    "follow_in_background",
    "install_snapshot",
]


def _check_spec(
    local_spec: Optional[str], primary_spec: Optional[str]
) -> None:
    if (
        local_spec is not None
        and primary_spec is not None
        and local_spec != primary_spec
    ):
        raise ClusterError(
            f"this directory holds spec {local_spec!r} but the "
            f"primary serves {primary_spec!r}; a follower cannot "
            "replay a different estimator's log"
        )


def install_snapshot(
    durable_dir: Union[str, os.PathLike],
    spec: Optional[str],
    payload: Dict[str, Any],
    offset: int,
) -> None:
    """Install a primary's snapshot envelope into a durable directory.

    Initializes the directory under ``spec`` when it is fresh, then
    writes the snapshot at ``offset``.  The next
    ``open_session(durable_dir=...)`` recovers from it — the existing
    recovery path already handles a snapshot ahead of the local WAL by
    discarding the stale segments.
    """
    store = DurableStore(durable_dir)
    try:
        if not store.has_state:
            if spec is None:
                raise ClusterError(
                    "cannot initialize a fresh follower directory: "
                    "the primary did not advertise its spec"
                )
            store.initialize(spec)
        else:
            _check_spec(store.spec, spec)
        store.snapshots.save(payload, offset)
    finally:
        store.close()


def _probe_primary(
    primary: Tuple[str, int],
    follower_id: str,
    have_offset: int,
    *,
    connect_timeout: float = 10.0,
    timeout: float = 60.0,
) -> Dict[str, Any]:
    """One blocking probe handshake; returns the negotiation result."""
    sock = connect_with_backoff(
        tuple(primary), connect_timeout=connect_timeout
    )
    try:
        sock.settimeout(timeout)
        sock.sendall(encode_message(
            handshake_request(follower_id, have_offset, probe=True)
        ))
        with sock.makefile("rb") as stream:
            line = stream.readline()
    finally:
        sock.close()
    if not line:
        raise ClusterError(
            f"primary {primary[0]}:{primary[1]} closed the "
            "connection during the replication handshake"
        )
    response = decode_message(line)
    if not response.get("ok"):
        error = response.get("error") or {}
        raise ClusterError(
            "primary refused replication: "
            f"{error.get('type', 'Error')}: {error.get('message', '')}"
        )
    result = response.get("result")
    if not isinstance(result, dict) or "start" not in result:
        raise ClusterError(
            f"malformed replication handshake result: {result!r}"
        )
    return result


def bootstrap_follower(
    primary: Tuple[str, int],
    durable_dir: Union[str, os.PathLike],
    *,
    follower_id: Optional[str] = None,
    connect_timeout: float = 10.0,
) -> Session:
    """Open a local durable session ready to follow ``primary``.

    Recovers whatever the directory already holds (so a restarted
    follower resumes at its durable offset), probes the primary with
    that offset, and — when the primary's WAL no longer covers it —
    installs the primary's snapshot and re-opens from there.  A fresh
    directory is initialized under the primary's advertised spec.
    """
    follower_id = follower_id or _default_follower_id(durable_dir)
    probe_store = DurableStore(durable_dir)
    has_state = probe_store.has_state
    probe_store.close()
    session: Optional[Session] = None
    have_offset = 0
    if has_state:
        session = open_session(durable_dir=durable_dir)
        have_offset = session.elements
    try:
        info = _probe_primary(
            tuple(primary),
            follower_id,
            have_offset,
            connect_timeout=connect_timeout,
        )
    except Exception:
        if session is not None:
            session.close()
        raise
    spec = info.get("spec")
    if session is not None:
        local = session.spec
        _check_spec(local.to_string() if local else None, spec)
    if info.get("mode") == "snapshot":
        if session is not None:
            session.close()
            session = None
        install_snapshot(
            durable_dir,
            spec,
            info["snapshot"],
            int(info["snapshot_offset"]),
        )
        session = open_session(durable_dir=durable_dir)
    elif session is None:
        if spec is None:
            raise ClusterError(
                "cannot initialize a fresh follower directory: "
                "the primary did not advertise its spec"
            )
        session = open_session(spec, durable_dir=durable_dir)
    return session


def _default_follower_id(durable_dir: Union[str, os.PathLike]) -> str:
    return f"follower-{pathlib.Path(durable_dir).name}-{os.getpid()}"


class FollowerServer(EstimatorServer):
    """Serve reads from a replica that follows a primary's WAL.

    Args:
        session: the follower's own durable session (from
            :func:`bootstrap_follower`).
        primary: the primary's **replication** address.
        host: serving interface.
        port: serving port (0 picks a free one).
        follower_id: stable id reported to the primary (defaults to
            one derived from the durable directory).
        stale_timeout: how long a ``read_your_writes`` read waits for
            replication to reach its watermark before failing with
            :class:`~repro.errors.StaleReadError`.
        reconnect_backoff: pause between reconnect attempts after the
            primary drops.
        binary: opt in to the packed binary batch payload
            (``docs/replication.md``).  The handshake advertises
            codec 2; a primary that supports it ships packed batches,
            one that does not simply keeps sending JSON records —
            the stream decode accepts either shape regardless.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        primary: Tuple[str, int],
        follower_id: Optional[str] = None,
        stale_timeout: float = 5.0,
        reconnect_backoff: float = 0.2,
        binary: bool = False,
    ) -> None:
        if not session.durable:
            raise ClusterError(
                "a follower needs a durable session: its own WAL is "
                "what promotion recovers from"
            )
        super().__init__(session, host, port)
        self._primary = (str(primary[0]), int(primary[1]))
        store = session.store
        assert store is not None
        self._follower_id = follower_id or _default_follower_id(
            store.directory
        )
        self._stale_timeout = stale_timeout
        self._reconnect_backoff = reconnect_backoff
        self._codec = 2 if binary else None
        self._role = "follower"
        self._connected = False
        self._last_error: Optional[str] = None
        self._primary_offset = session.elements
        self._acked_offset = session.elements
        self._repl_task: Optional["asyncio.Task[None]"] = None
        #: pending read-your-writes waits: (min_offset, future).
        self._waiters: List[Tuple[int, "asyncio.Future[None]"]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def role(self) -> str:
        """``"follower"``, or ``"primary"`` after promotion."""
        return self._role

    @property
    def follower_id(self) -> str:
        return self._follower_id

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await super().start()
        self._repl_task = asyncio.ensure_future(
            self._replication_loop()
        )

    async def aclose(self) -> None:
        await self._stop_following()
        for _offset, future in self._waiters:
            if not future.done():
                future.set_exception(StaleReadError(
                    "follower is shutting down"
                ))
        self._waiters.clear()
        await super().aclose()

    async def _stop_following(self) -> None:
        task, self._repl_task = self._repl_task, None
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._connected = False

    # ------------------------------------------------------------------
    # The replication loop
    # ------------------------------------------------------------------
    async def _replication_loop(self) -> None:
        while not self._closed and self._role == "follower":
            try:
                await self._follow_once()
            except asyncio.CancelledError:
                raise
            except (OSError, ReproError, asyncio.IncompleteReadError,
                    ValueError) as exc:
                self._connected = False
                self._last_error = f"{type(exc).__name__}: {exc}"
            if self._closed or self._role != "follower":
                return
            await asyncio.sleep(self._reconnect_backoff)

    async def _follow_once(self) -> None:
        """One replication connection: handshake, then apply forever."""
        reader, writer = await asyncio.open_connection(
            *self._primary, limit=REPLICATION_MAX_LINE
        )
        try:
            writer.write(encode_message(handshake_request(
                self._follower_id,
                self._session.elements,
                codec=self._codec,
            )))
            await writer.drain()
            line = await _read_line(reader)
            if not line:
                raise ClusterError(
                    "primary closed the connection during the "
                    "replication handshake"
                )
            response = decode_message(line)
            if not response.get("ok"):
                error = response.get("error") or {}
                raise ClusterError(
                    "primary refused replication: "
                    f"{error.get('type', 'Error')}: "
                    f"{error.get('message', '')}"
                )
            info = response.get("result") or {}
            loop = asyncio.get_running_loop()
            if info.get("mode") == "snapshot":
                # Our WAL position was pruned on the primary (e.g. it
                # checkpointed while we were down): resync through the
                # shipped snapshot, swapping the session on the writer
                # thread so reads never observe the swap half-done.
                await loop.run_in_executor(
                    self._writer_pool, self._resync, info
                )
                self._wake_waiters(self._view.elements)
            start = info.get("start")
            if start != self._session.elements:
                raise ClusterError(
                    f"primary negotiated start offset {start!r} but "
                    f"this follower holds {self._session.elements}"
                )
            self._primary_offset = max(
                self._primary_offset, int(info.get("offset", 0))
            )
            self._connected = True
            self._last_error = None
            while True:
                line = await _read_line(reader)
                if not line:
                    raise ClusterError("replication stream ended")
                if line.strip() == b"":
                    continue
                kind, offset, elements = decode_stream_message(
                    decode_message(line)
                )
                if kind == "heartbeat":
                    self._primary_offset = max(
                        self._primary_offset, offset
                    )
                else:
                    applied = await loop.run_in_executor(
                        self._writer_pool,
                        self._apply_replicated,
                        offset,
                        elements,
                    )
                    self._primary_offset = max(
                        self._primary_offset, applied
                    )
                    self._wake_waiters(applied)
                self._acked_offset = self._view.elements
                writer.write(encode_message(
                    ack_message(self._acked_offset)
                ))
                await writer.drain()
        finally:
            self._connected = False
            writer.close()
            with contextlib.suppress(
                ConnectionResetError, BrokenPipeError
            ):
                await writer.wait_closed()

    def _apply_replicated(
        self, base: int, elements: List[StreamElement]
    ) -> int:
        """Apply one replicated batch (writer thread); returns offset.

        The batch goes through ``session.ingest``, which appends to
        the follower's own WAL before processing — replication **is**
        WAL shipping, re-logged locally so promotion recovers it.
        Overlap with what we already hold (a catch-up race after
        reconnect) is trimmed; a gap is a protocol violation.
        """
        session = self._session
        have = session.elements
        if base > have:
            raise ClusterError(
                f"replication gap: batch starts at offset {base} but "
                f"this follower holds {have}"
            )
        fresh = elements[have - base:]
        if fresh:
            session.ingest(fresh)
            self._publish()
        return session.elements

    def _resync(self, info: Dict[str, Any]) -> None:
        """Reinstall from a shipped snapshot (writer thread)."""
        spec = info.get("spec")
        local = self._session.spec
        _check_spec(local.to_string() if local else None, spec)
        store = self._session.store
        assert store is not None
        directory = store.directory
        self._session.close()
        install_snapshot(
            directory,
            spec,
            info["snapshot"],
            int(info["snapshot_offset"]),
        )
        self._session = open_session(durable_dir=directory)
        self._publish()

    # ------------------------------------------------------------------
    # Read-your-writes waits
    # ------------------------------------------------------------------
    def _wake_waiters(self, applied: int) -> None:
        if not self._waiters:
            return
        still_waiting = []
        for min_offset, future in self._waiters:
            if future.done():
                continue
            if applied >= min_offset:
                future.set_result(None)
            else:
                still_waiting.append((min_offset, future))
        self._waiters = still_waiting

    async def _handle_read(
        self, op: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op != "ping" and self._role == "follower":
            min_offset = self._min_offset(request)
            if (
                min_offset is not None
                and self._view.elements < min_offset
            ):
                await self._wait_for_applied(min_offset)
            return self._read(op, request)
        return await super()._handle_read(op, request)

    async def _wait_for_applied(self, min_offset: int) -> None:
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[None]" = loop.create_future()
        self._waiters.append((min_offset, future))
        if self._view.elements >= min_offset and not future.done():
            # Replication applied the offset between the caller's
            # check and our registration; don't sleep on a wake-up
            # that already happened.
            future.set_result(None)
        try:
            await asyncio.wait_for(future, self._stale_timeout)
        except asyncio.TimeoutError:
            self._waiters = [
                (offset, pending)
                for offset, pending in self._waiters
                if pending is not future
            ]
            raise StaleReadError(
                f"follower applied {self._view.elements} elements "
                f"but the read requires offset {min_offset} "
                f"(waited {self._stale_timeout}s; replication is "
                f"{'connected' if self._connected else 'down'})"
            ) from None

    # ------------------------------------------------------------------
    # Dispatch: writes are refused, promote flips the role
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "promote":
            self._counters[op] = self._counters.get(op, 0) + 1
            return await self._promote()
        if self._role == "follower" and (
            op in ("ingest", "flush", "snapshot", "checkpoint")
            or op in TENANT_ADMIN_OPS
            or request.get("tenant") is not None
            or request.get("stream") is not None
        ):
            # Tenant-catalog operations — admin ops and anything
            # tenant- or stream-scoped — are primary-only: a follower
            # replicates one session's WAL, not a catalog.
            self._counters[op] = self._counters.get(op, 0) + 1
            host, port = self._primary
            raise NotPrimaryError(
                f"this node is a read-only follower (replicating "
                f"from {host}:{port}); send {op!r} to the primary"
            )
        return await super()._dispatch(request)

    async def _promote(self) -> Dict[str, Any]:
        """Stop following and start accepting writes.

        Everything the follower has durably applied is exactly what
        it serves after promotion — its own WAL and snapshots recover
        it, the same way a restarted single node recovers
        (``docs/replication.md`` §failover).
        """
        already = self._role == "primary"
        self._role = "primary"
        await self._stop_following()
        view = self._view
        return {
            "promoted": not already,
            "role": self._role,
            "elements": view.elements,
            "estimate": view.estimate,
        }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _read(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        result = super()._read(op, request)
        if op == "stats":
            applied = self._view.elements
            result["role"] = self._role
            result["replication"] = {
                "primary": list(self._primary),
                "follower_id": self._follower_id,
                "connected": self._connected,
                "primary_offset": self._primary_offset,
                "applied_offset": applied,
                "acked_offset": self._acked_offset,
                "lag": max(0, self._primary_offset - applied),
                "last_error": self._last_error,
            }
        return result


def follow_in_background(
    primary: Tuple[str, int],
    durable_dir: Union[str, os.PathLike],
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    follower_id: Optional[str] = None,
    stale_timeout: float = 5.0,
    reconnect_backoff: float = 0.2,
    connect_timeout: float = 10.0,
    binary: bool = False,
) -> BackgroundServer:
    """Bootstrap from ``primary`` and serve reads on a daemon thread.

    Blocking bootstrap first (probe + optional snapshot install), then
    a :class:`FollowerServer` on the shared background-loop machinery.
    The returned handle's ``server`` is the follower.
    """
    session = bootstrap_follower(
        tuple(primary),
        durable_dir,
        follower_id=follower_id,
        connect_timeout=connect_timeout,
    )
    try:
        return serve_in_background(
            session,
            host,
            port,
            server_factory=lambda session, host, port: FollowerServer(
                session,
                host,
                port,
                primary=tuple(primary),
                follower_id=follower_id,
                stale_timeout=stale_timeout,
                reconnect_backoff=reconnect_backoff,
                binary=binary,
            ),
        )
    except Exception:
        session.close()
        raise
