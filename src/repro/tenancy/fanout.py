"""``SharedStreamFanout`` — one shared log, N tenant estimators.

When several tenants subscribe to the *same* stream, logging the
stream once per tenant wastes the dominant cost of durable ingest:
the WAL encode, write, and fsync are paid N times for identical
bytes.  A fan-out binds those tenants to one shared
:class:`~repro.store.DurableStore` so each ingest batch is

* decoded and materialised **once**,
* written ahead to **one** WAL (one fsync cadence instead of N),
* then driven through every member estimator — and every attached
  :mod:`~repro.tenancy.taps` observer — in a single pass.

Each member stays a plain volatile
:class:`~repro.api.session.Session` built from the tenant's own spec,
so its estimate is **identical to a standalone run** of that spec
over the stream (asserted always in
``benchmarks/bench_multitenant.py``).  Durability is per stream:
``checkpoint()`` writes one envelope holding every member's snapshot,
and recovery restores each member and replays the shared WAL tail
through all of them in one pass — bit-identical per tenant
(``tests/tenancy/test_tenant_recovery.py`` proves it at every torn
byte).

On a member's *refusal* of a batch (an estimator exception), the
shared log rolls the whole batch back and the fan-out declares itself
**poisoned**: members that already processed part of the batch have
diverged from the log, so further in-memory ingest is refused and the
documented remediation is to reopen the directory — recovery lands
every member consistently at the pre-batch offset.

>>> import tempfile
>>> from repro.types import insertion
>>> fanout = SharedStreamFanout(
...     tempfile.mkdtemp(),
...     members={"counts": "exact", "approx": "abacus:budget=64,seed=1"},
... )
>>> _ = fanout.ingest([insertion(u, v)
...                    for u in ("u1", "u2") for v in ("v1", "v2")])
>>> fanout.estimates()["counts"]
1.0
>>> fanout.elements
4
>>> fanout.close()
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.api.session import Session, open_session, restore_session
from repro.errors import StoreError, TenancyError
from repro.store import DurableStore
from repro.tenancy.taps import StreamTap, taps_by_name
from repro.types import StreamElement

__all__ = ["FANOUT_FORMAT", "SharedStreamFanout"]

#: Version of both the shared store's ``meta.json`` spec payload and
#: the checkpoint envelope.
FANOUT_FORMAT = 1

#: Chunk size for the shared single-pass drive of member estimators.
_APPLY_BATCH = 1024


def _member_spec_payload(members: Mapping[str, str]) -> str:
    """The canonical member map recorded as the store's spec string."""
    return json.dumps(
        {
            "format": FANOUT_FORMAT,
            "fanout": {name: members[name] for name in sorted(members)},
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _parse_member_payload(spec: str) -> Dict[str, str]:
    try:
        payload = json.loads(spec)
        fanout = payload["fanout"]
    except (json.JSONDecodeError, TypeError, KeyError) as exc:
        raise StoreError(
            f"directory does not hold a shared-stream fan-out "
            f"(unreadable member map): {exc}"
        ) from exc
    if payload.get("format") != FANOUT_FORMAT:
        raise StoreError(
            f"unsupported fan-out format {payload.get('format')!r} "
            f"(expected {FANOUT_FORMAT})"
        )
    return {str(name): str(spec) for name, spec in fanout.items()}


class SharedStreamFanout:
    """N volatile member sessions over one shared durable stream log.

    Args:
        directory: the shared log's durable directory.  Empty
            directories are claimed with the member map; directories
            with state are **recovered** (checkpoint envelope + WAL
            tail replayed through every member in one pass).
        members: tenant name -> estimator spec string.  Required to
            create; on reopen it is checked against the stored map
            (omit to accept the stored one).
        taps: optional :class:`~repro.tenancy.taps.StreamTap`
            observers riding the same pass.  Volatile by contract —
            after recovery they restart at ``taps_since_offset``.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        members: Optional[Mapping[str, str]] = None,
        *,
        taps: Iterable[StreamTap] = (),
    ) -> None:
        self._dir = pathlib.Path(directory)
        self._taps = taps_by_name(taps)
        self._closed = False
        self._poisoned = False
        self._taps_since = 0
        self._store = DurableStore(self._dir)
        try:
            if not self._store.has_state:
                if not members:
                    raise TenancyError(
                        f"{self._dir} holds no fan-out yet; pass the "
                        "member map to create one"
                    )
                self._members = {
                    str(name): str(spec)
                    for name, spec in sorted(members.items())
                }
                self._store.initialize(
                    _member_spec_payload(self._members)
                )
                self._sessions = {
                    name: open_session(spec)
                    for name, spec in self._members.items()
                }
            else:
                self._recover(members)
        except BaseException:
            self._store.close()
            raise

    def _recover(self, members: Optional[Mapping[str, str]]) -> None:
        recovered = self._store.recover()
        stored = _parse_member_payload(recovered.spec)
        if members is not None:
            offered = {
                str(name): str(spec) for name, spec in members.items()
            }
            if offered != stored:
                raise TenancyError(
                    f"fan-out in {self._dir} was created for members "
                    f"{stored!r}; refusing to reopen as {offered!r}"
                )
        self._members = stored
        if recovered.snapshot is not None:
            envelope = recovered.snapshot
            if (
                envelope.get("format") != FANOUT_FORMAT
                or set(envelope.get("tenants", {})) != set(stored)
            ):
                raise StoreError(
                    f"fan-out checkpoint in {self._dir} does not "
                    "match the stored member map"
                )
            self._sessions = {
                name: restore_session(envelope["tenants"][name])
                for name in stored
            }
        else:
            self._sessions = {
                name: open_session(spec)
                for name, spec in stored.items()
            }
        self._taps_since = recovered.offset - len(recovered.tail)
        if recovered.tail:
            self._drive(recovered.tail)
        for name, session in self._sessions.items():
            if session.elements != recovered.offset:
                raise StoreError(
                    f"fan-out recovery reconstructed {session.elements} "
                    f"elements for member {name!r} but the shared log "
                    f"covers {recovered.offset}; snapshot and WAL "
                    "disagree"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> pathlib.Path:
        return self._dir

    @property
    def members(self) -> Dict[str, str]:
        """Member name -> spec string (sorted by name)."""
        return dict(self._members)

    @property
    def elements(self) -> int:
        """Stream elements logged to (and applied from) the shared
        log."""
        return self._store.offset

    @property
    def taps_since_offset(self) -> int:
        """The element offset the (volatile) taps have observed from:
        0 for a fresh fan-out, the recovery offset after a crash."""
        return self._taps_since

    def session(self, name: str) -> Session:
        """The named member's (volatile) session."""
        session = self._sessions.get(name)
        if session is None:
            raise TenancyError(
                f"unknown fan-out member {name!r}; members: "
                f"{', '.join(sorted(self._members))}"
            )
        return session

    def estimates(self) -> Dict[str, float]:
        """Every member's current estimate, keyed by tenant name."""
        return {
            name: session.estimate
            for name, session in self._sessions.items()
        }

    def stats(self) -> Dict[str, Any]:
        """Per-tenant metrics plus tap summaries, one consistent
        read."""
        return {
            "elements": self.elements,
            "members": {
                name: {
                    "spec": self._members[name],
                    "estimate": session.estimate,
                    "memory_edges": session.memory_edges,
                    "processing_seconds": session._processing_seconds,
                }
                for name, session in self._sessions.items()
            },
            "taps": {
                name: tap.summary()
                for name, tap in self._taps.items()
            },
            "taps_since_offset": self._taps_since,
        }

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        elements: Union[StreamElement, Iterable[StreamElement]],
    ) -> Dict[str, float]:
        """Apply one batch to the shared log and every member.

        The batch is materialised once, logged once (write-ahead),
        then driven through each member estimator and tap.  Returns
        :meth:`estimates` after the batch applied.

        Raises:
            TenancyError: on a closed or poisoned fan-out.
            Whatever a member estimator raised on refusal — after the
            shared log rolled the batch back and the fan-out poisoned
            itself (reopen the directory to recover consistently).
        """
        self._require_live()
        if isinstance(elements, StreamElement):
            batch: List[StreamElement] = [elements]
        else:
            batch = list(elements)
        if not batch:
            return self.estimates()
        undo = self._store.mark()
        self._store.append_batch(batch)
        try:
            self._drive(batch)
        except BaseException:
            self._store.rollback(undo)
            self._poisoned = True
            raise
        return self.estimates()

    def _drive(self, batch: List[StreamElement]) -> None:
        """One pass: every member (and tap) sees the whole batch."""
        for start in range(0, len(batch), _APPLY_BATCH):
            chunk = batch[start:start + _APPLY_BATCH]
            for session in self._sessions.values():
                session.ingest(chunk)
            for tap in self._taps.values():
                for element in chunk:
                    tap.observe(element)

    def flush(self) -> Dict[str, float]:
        """Flush buffered work in every member (PARABACUS et al.)."""
        self._require_live()
        for session in self._sessions.values():
            session.flush()
        return self.estimates()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """One durable checkpoint covering every member.

        The envelope holds each member's full snapshot at the same
        shared-log offset, so recovery is per-tenant bit-identical.
        Requires every member spec to support snapshots.

        Returns:
            The element offset the checkpoint covers.
        """
        self._require_live()
        envelope = {
            "format": FANOUT_FORMAT,
            "tenants": {
                name: session.snapshot()
                for name, session in self._sessions.items()
            },
        }
        self._store.checkpoint(envelope, self._store.offset)
        return self._store.offset

    def sync(self) -> None:
        """Force WAL-buffered elements of the shared log to disk."""
        self._store.sync()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _require_live(self) -> None:
        if self._closed:
            raise TenancyError("shared-stream fan-out is closed")
        if self._poisoned:
            raise TenancyError(
                "fan-out is poisoned: a member refused a batch, so "
                "in-memory members and the shared log have diverged; "
                "reopen the directory to recover consistently"
            )

    @property
    def poisoned(self) -> bool:
        return self._poisoned

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush members, sync the shared log, release resources."""
        if self._closed:
            return
        self._closed = True
        for session in self._sessions.values():
            session.close()
        self._store.close()

    def __enter__(self) -> "SharedStreamFanout":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedStreamFanout({str(self._dir)!r}, "
            f"members={sorted(self._members)}, "
            f"elements={self.elements})"
        )
