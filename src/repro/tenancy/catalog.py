"""``TenantCatalog`` — named durable tenants under one root.

A catalog turns one directory into a multi-tenant estimator home::

    <root>/catalog.json        the authoritative tenant map (fsynced)
    <root>/<tenant>/           one durable session dir per tenant
    <root>/.streams/<name>/    shared-stream fan-out logs
    <root>/.trash-*/           crashed drops, swept on open
    <root>/.tmp-*              torn catalog commits, swept on open

``catalog.json`` is the single source of truth: every create, drop,
and stream binding is committed by atomically replacing the file
(write to a temporary, fsync, rename, fsync the directory) — the same
discipline as ``meta.json`` in :mod:`repro.store.durable`.  A crash on
either side of the commit therefore leaves a catalog in which each
tenant is *fully present or fully absent*:

* **create** commits the catalog first, then materialises the tenant
  directory.  A crash in between leaves a listed tenant whose
  directory simply materialises lazily on first use.
* **drop** commits the catalog first, then renames the directory to a
  ``.trash-*`` name and removes it.  A crash in between leaves an
  unlisted directory, which the next open sweeps.

Tenant sessions open lazily through :meth:`TenantCatalog.session` and
are plain durable :class:`~repro.api.session.Session` objects — the
catalog adds naming, lifecycle, and the shared-stream fan-out of
:mod:`repro.tenancy.fanout`; it changes nothing about how a single
tenant ingests, checkpoints, or recovers.

>>> import tempfile
>>> from repro.types import insertion
>>> catalog = TenantCatalog(tempfile.mkdtemp())
>>> catalog.create("alice", "exact")
'exact'
>>> catalog.create("bob", "abacus:budget=64,seed=7")
'abacus:budget=64,seed=7'
>>> catalog.names()
('alice', 'bob')
>>> session = catalog.session("alice")
>>> _ = session.ingest([insertion(u, v)
...                     for u in ("u1", "u2") for v in ("v1", "v2")])
>>> session.estimate
1.0
>>> catalog.drop("bob")
>>> catalog.names()
('alice',)
>>> catalog.close()
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import shutil
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.api.registry import get_registration, parse_spec
from repro.api.session import Session, open_session
from repro.errors import StoreError, TenancyError
from repro.faults import fault_point
from repro.store import DurableStore

__all__ = [
    "CATALOG_FILE",
    "CATALOG_FORMAT",
    "DEFAULT_TENANT_QUOTA",
    "TenantCatalog",
]

#: The authoritative tenant map inside the catalog root.
CATALOG_FILE = "catalog.json"

#: On-disk catalog format version.
CATALOG_FORMAT = 1

#: Per-tenant bound on queued writes in the serving layer when a
#: tenant declares no explicit quota (``docs/multitenancy.md``).
DEFAULT_TENANT_QUOTA = 8

#: Tenant and stream names become path components, so they are
#: restricted to a conservative portable alphabet; a leading dot is
#: reserved for catalog-internal entries.
_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.\-]{0,63}$")

_STREAMS_DIR = ".streams"


def _valid_name(name: Any, kind: str) -> str:
    if not isinstance(name, str) or not _NAME.match(name):
        raise TenancyError(
            f"invalid {kind} name {name!r}: use 1-64 characters of "
            "[A-Za-z0-9_.-], not starting with a dot"
        )
    return name


class TenantCatalog:
    """Named tenants (and shared streams) under one durable root.

    Args:
        root: the catalog directory; created when missing.  Opening an
            existing root loads ``catalog.json`` and sweeps the debris
            of crashed operations (``.tmp-*`` files, ``.trash-*``
            directories, tenant directories no longer listed).

    Raises:
        TenancyError: when the root holds files the catalog does not
            own — refusing to adopt (or later sweep) foreign data.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self._root = pathlib.Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._tenants: Dict[str, Dict[str, Any]] = {}
        self._streams: Dict[str, List[str]] = {}
        self._sessions: Dict[str, Session] = {}
        self._fanouts: Dict[str, Any] = {}
        self._closed = False
        self._load()
        self._sweep()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> pathlib.Path:
        return self._root

    def names(self) -> Tuple[str, ...]:
        """All tenant names, sorted."""
        return tuple(sorted(self._tenants))

    def streams(self) -> Dict[str, Tuple[str, ...]]:
        """Stream name -> bound tenant names, sorted."""
        return {
            name: tuple(members)
            for name, members in sorted(self._streams.items())
        }

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: object) -> bool:
        return name in self._tenants

    def spec(self, name: str) -> str:
        """The canonical spec string ``name`` was created with."""
        return str(self._entry(name)["spec"])

    def quota(self, name: str) -> int:
        """The tenant's ``max_pending_writes`` quota for fair-share
        scheduling (``docs/multitenancy.md``)."""
        return int(self._entry(name).get("quota", DEFAULT_TENANT_QUOTA))

    def declared_quota(self, name: str) -> Optional[int]:
        """The quota ``create`` explicitly declared, or None when the
        tenant rides the catalog default (so a hosting server may
        substitute its own)."""
        value = self._entry(name).get("quota")
        return None if value is None else int(value)

    def bound_stream(self, name: str) -> Optional[str]:
        """The shared stream ``name`` subscribes to, or None."""
        self._entry(name)
        for stream, members in self._streams.items():
            if name in members:
                return stream
        return None

    def directory(self, name: str) -> pathlib.Path:
        """The tenant's durable session directory."""
        self._entry(name)
        return self._root / name

    def stream_directory(self, stream: str) -> pathlib.Path:
        if stream not in self._streams:
            raise TenancyError(
                f"unknown stream {stream!r}; bound: "
                f"{', '.join(sorted(self._streams)) or '(none)'}"
            )
        return self._root / _STREAMS_DIR / stream

    def _entry(self, name: str) -> Dict[str, Any]:
        entry = self._tenants.get(name)
        if entry is None:
            raise TenancyError(
                f"unknown tenant {name!r}; catalog holds: "
                f"{', '.join(self.names()) or '(none)'}"
            )
        return entry

    # ------------------------------------------------------------------
    # Create / drop
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        spec: str,
        *,
        quota: Optional[int] = None,
    ) -> str:
        """Create tenant ``name`` with estimator ``spec``; atomic.

        The spec is parsed (and canonicalised) and its estimator name
        and parameters validated against the registry first, so a
        malformed or unknown spec commits nothing.  The
        ``catalog.json`` commit *is* the create; the tenant's durable
        directory is materialised right after (and lazily on first use
        if a crash beats that).

        Returns:
            The canonical spec string recorded in the catalog.

        Raises:
            TenancyError: invalid name, duplicate tenant, bad quota.
            SpecError: the spec does not parse, names an unknown
                estimator, or carries undeclared/ill-typed parameters.
        """
        self._require_open()
        _valid_name(name, "tenant")
        if name in self._tenants:
            raise TenancyError(f"tenant {name!r} already exists")
        if quota is not None and (
            not isinstance(quota, int)
            or isinstance(quota, bool)
            or quota < 1
        ):
            raise TenancyError(
                f"quota must be a positive integer, got {quota!r}"
            )
        parsed = parse_spec(spec)
        get_registration(parsed.name).validate(parsed.params)
        canonical = parsed.to_string()
        entry: Dict[str, Any] = {"spec": canonical}
        if quota is not None:
            entry["quota"] = quota
        self._tenants = {**self._tenants, name: entry}
        self._commit()
        fault_point("tenant.create_committed")
        self._materialize(name)
        return canonical

    def _materialize(self, name: str) -> None:
        """Write the tenant dir's ``meta.json`` without building the
        estimator (first-class durable dir from the moment of
        creation)."""
        directory = self._root / name
        store = DurableStore(directory)
        try:
            if not store.has_state:
                store.initialize(self.spec(name))
        finally:
            store.close()

    def drop(self, name: str) -> None:
        """Drop tenant ``name`` and delete its durable state; atomic.

        The ``catalog.json`` commit is the point of no return: a crash
        before it leaves the tenant fully present, a crash after it
        leaves (at worst) an unlisted directory that the next
        :class:`TenantCatalog` open sweeps — never a half-tenant.

        Raises:
            TenancyError: unknown tenant, or one still bound to a
                shared stream (drop the stream first).
        """
        self._require_open()
        self._entry(name)
        stream = self.bound_stream(name)
        if stream is not None:
            raise TenancyError(
                f"tenant {name!r} is bound to stream {stream!r}; "
                "drop_stream() it before dropping the tenant"
            )
        session = self._sessions.pop(name, None)
        if session is not None:
            session.close()
        remaining = dict(self._tenants)
        del remaining[name]
        self._tenants = remaining
        self._commit()
        fault_point("tenant.drop_committed")
        self._remove_dir(self._root / name)

    def _remove_dir(self, directory: pathlib.Path) -> None:
        """Remove a directory via an atomic trash rename.

        The rename makes the directory invisible to tenant/stream
        namespaces in one step; a crash mid-``rmtree`` leaves only a
        ``.trash-*`` entry for the next open to sweep.
        """
        if not directory.exists():
            return
        trash = directory.with_name(f".trash-{directory.name}")
        suffix = 0
        while trash.exists():
            suffix += 1
            trash = directory.with_name(
                f".trash-{directory.name}.{suffix}"
            )
        os.replace(directory, trash)
        shutil.rmtree(trash)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, name: str) -> Session:
        """The tenant's durable session, opened (recovered) lazily.

        Sessions are cached: repeated calls return the same object
        until :meth:`drop` or :meth:`close`.  Tenants bound to a
        shared stream have no standalone session — their state lives
        in the stream's fan-out (:meth:`open_stream`).
        """
        self._require_open()
        spec = self.spec(name)
        stream = self.bound_stream(name)
        if stream is not None:
            raise TenancyError(
                f"tenant {name!r} is bound to stream {stream!r}; "
                "open_stream() and use its member sessions"
            )
        session = self._sessions.get(name)
        if session is None or session.closed:
            session = open_session(
                spec, durable_dir=self._root / name
            )
            self._sessions[name] = session
        return session

    # ------------------------------------------------------------------
    # Shared streams
    # ------------------------------------------------------------------
    def bind_stream(self, stream: str, tenants: List[str]):
        """Bind ``tenants`` to one shared stream; returns its fan-out.

        All bound tenants are driven by single shared-log ingest
        batches from then on (:mod:`repro.tenancy.fanout`); their
        standalone directories stay untouched but must still be empty
        — binding a tenant that already ingested standalone would
        shadow that state.

        Raises:
            TenancyError: unknown/duplicate tenants, a tenant already
                bound to a stream, or one with standalone elements.
        """
        self._require_open()
        _valid_name(stream, "stream")
        if stream in self._streams:
            raise TenancyError(f"stream {stream!r} already exists")
        if not tenants:
            raise TenancyError("bind_stream needs at least one tenant")
        if len(set(tenants)) != len(tenants):
            raise TenancyError(
                f"duplicate tenants in stream binding: {tenants!r}"
            )
        for name in tenants:
            self._entry(name)
            bound = self.bound_stream(name)
            if bound is not None:
                raise TenancyError(
                    f"tenant {name!r} is already bound to stream "
                    f"{bound!r}"
                )
            if self._standalone_offset(name) > 0:
                raise TenancyError(
                    f"tenant {name!r} has standalone durable "
                    "elements; binding it to a stream would shadow "
                    "them"
                )
            session = self._sessions.pop(name, None)
            if session is not None:
                session.close()
        self._streams = {
            **self._streams, stream: sorted(tenants)
        }
        self._commit()
        return self.open_stream(stream)

    def open_stream(self, stream: str):
        """The stream's :class:`~repro.tenancy.fanout
        .SharedStreamFanout`, opened (recovered) lazily and cached."""
        self._require_open()
        members = {
            name: self.spec(name)
            for name in self._streams.get(stream, ())
        }
        if not members:
            raise TenancyError(
                f"unknown stream {stream!r}; bound: "
                f"{', '.join(sorted(self._streams)) or '(none)'}"
            )
        fanout = self._fanouts.get(stream)
        if fanout is None or fanout.closed:
            from repro.tenancy.fanout import SharedStreamFanout

            fanout = SharedStreamFanout(
                self.stream_directory(stream), members=members
            )
            self._fanouts[stream] = fanout
        return fanout

    def drop_stream(self, stream: str) -> None:
        """Unbind the stream's tenants and delete its shared log.

        The stream's durable state (the shared WAL and checkpoints)
        is discarded; the member tenants remain in the catalog, free
        to ingest standalone or join another stream.
        """
        self._require_open()
        if stream not in self._streams:
            raise TenancyError(
                f"unknown stream {stream!r}; bound: "
                f"{', '.join(sorted(self._streams)) or '(none)'}"
            )
        fanout = self._fanouts.pop(stream, None)
        if fanout is not None:
            fanout.close()
        directory = self.stream_directory(stream)
        remaining = dict(self._streams)
        del remaining[stream]
        self._streams = remaining
        self._commit()
        fault_point("tenant.drop_committed")
        self._remove_dir(directory)

    def _standalone_offset(self, name: str) -> int:
        """Durably logged element count of the tenant's own dir."""
        directory = self._root / name
        if not directory.exists():
            return 0
        store = DurableStore(directory)
        try:
            if not store.has_state:
                return 0
            return store.recover().offset
        finally:
            store.close()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _catalog_path(self) -> pathlib.Path:
        return self._root / CATALOG_FILE

    def _commit(self) -> None:
        """Atomically replace ``catalog.json`` (tmp, fsync, rename)."""
        payload = {
            "format": CATALOG_FORMAT,
            "tenants": {
                name: self._tenants[name]
                for name in sorted(self._tenants)
            },
            "streams": {
                name: self._streams[name]
                for name in sorted(self._streams)
            },
        }
        temporary = self._root / f".tmp-{CATALOG_FILE}"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, self._catalog_path())
        directory_fd = os.open(self._root, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)

    def _load(self) -> None:
        path = self._catalog_path()
        if not path.exists():
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            tenants = payload["tenants"]
            streams = payload.get("streams", {})
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            raise StoreError(
                f"unreadable tenant catalog {path}: {exc}"
            ) from exc
        if payload.get("format") != CATALOG_FORMAT:
            raise StoreError(
                f"unsupported tenant catalog format "
                f"{payload.get('format')!r} in {path} "
                f"(expected {CATALOG_FORMAT})"
            )
        if not isinstance(tenants, Mapping):
            raise StoreError(
                f"tenant catalog {path} has a malformed tenant map"
            )
        self._tenants = {
            _valid_name(name, "tenant"): dict(entry)
            for name, entry in tenants.items()
        }
        self._streams = {
            _valid_name(name, "stream"): [str(m) for m in members]
            for name, members in streams.items()
        }

    def _sweep(self) -> None:
        """Remove the debris of crashed operations from the root.

        Anything else the catalog does not recognise raises — the
        sweep must never eat data the catalog does not own.
        """
        for entry in sorted(self._root.iterdir()):
            name = entry.name
            if name == CATALOG_FILE:
                continue
            if name.startswith(".tmp-") and entry.is_file():
                entry.unlink()  # torn catalog/meta commit
                continue
            if name.startswith(".trash-") and entry.is_dir():
                shutil.rmtree(entry)  # crashed drop
                continue
            if name == _STREAMS_DIR and entry.is_dir():
                self._sweep_streams(entry)
                continue
            if entry.is_dir() and name in self._tenants:
                continue
            if entry.is_dir() and self._looks_like_tenant_dir(entry):
                shutil.rmtree(entry)  # dropped before dir removal
                continue
            raise TenancyError(
                f"catalog root {self._root} holds unrecognised entry "
                f"{name!r}; refusing to adopt foreign data"
            )

    def _sweep_streams(self, streams_dir: pathlib.Path) -> None:
        for entry in sorted(streams_dir.iterdir()):
            name = entry.name
            if name.startswith(".trash-") and entry.is_dir():
                shutil.rmtree(entry)
                continue
            if entry.is_dir() and name in self._streams:
                continue
            if entry.is_dir() and self._looks_like_tenant_dir(entry):
                shutil.rmtree(entry)  # dropped stream's log
                continue
            raise TenancyError(
                f"stream directory {streams_dir} holds unrecognised "
                f"entry {name!r}; refusing to adopt foreign data"
            )

    @staticmethod
    def _looks_like_tenant_dir(directory: pathlib.Path) -> bool:
        """Empty, or shaped like a durable session dir — safe to
        sweep as the leftover of a crashed drop."""
        entries = list(directory.iterdir())
        return not entries or (directory / "meta.json").exists()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise TenancyError("tenant catalog is closed")

    def close(self) -> None:
        """Close every cached session and fan-out."""
        if self._closed:
            return
        self._closed = True
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()
        for fanout in self._fanouts.values():
            fanout.close()
        self._fanouts.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "TenantCatalog":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantCatalog({str(self._root)!r}, "
            f"tenants={len(self._tenants)}, "
            f"streams={len(self._streams)})"
        )
