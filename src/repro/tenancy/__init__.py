"""Multi-tenant estimator catalogs over one durable root.

The tenancy layer scales the serving story from "one process, one
estimator" to a catalog of named tenants — each a first-class durable
session with its own spec, created/dropped/listed atomically through
a fsynced ``catalog.json`` — plus shared-stream fan-outs that drive
many tenants (and sketch/triangle dashboard taps) from a single
ingest pass over one shared write-ahead log:

* :mod:`repro.tenancy.catalog` — :class:`TenantCatalog`: the atomic
  tenant map, per-tenant durable directories, stream bindings, and
  crash-debris sweeping.
* :mod:`repro.tenancy.fanout` — :class:`SharedStreamFanout`: one
  shared log, N member estimators, single-pass ingest, per-tenant
  bit-identical checkpoint/recovery.
* :mod:`repro.tenancy.taps` — volatile dashboard observers
  (HyperLogLog cardinality, Count-Min heavy hitters, DGIM deletion
  rate, ThinkD/TRIEST-FD triangles) riding the same pass.

The serving layer (:mod:`repro.serve`) hosts a catalog behind
tenant-scoped wire operations with fair-share write scheduling; the
CLI drives it via ``repro tenant create|drop|list`` and ``repro serve
--tenant-root``.  The full contract lives in ``docs/multitenancy.md``.
"""

from repro.tenancy.catalog import (
    CATALOG_FILE,
    CATALOG_FORMAT,
    DEFAULT_TENANT_QUOTA,
    TenantCatalog,
)
from repro.tenancy.fanout import FANOUT_FORMAT, SharedStreamFanout
from repro.tenancy.taps import (
    CardinalityTap,
    DeletionRateTap,
    HeavyHitterTap,
    StreamTap,
    TriangleTap,
    default_taps,
)

__all__ = [
    "CATALOG_FILE",
    "CATALOG_FORMAT",
    "CardinalityTap",
    "DEFAULT_TENANT_QUOTA",
    "DeletionRateTap",
    "FANOUT_FORMAT",
    "HeavyHitterTap",
    "SharedStreamFanout",
    "StreamTap",
    "TenantCatalog",
    "TriangleTap",
    "default_taps",
]
