"""Stream taps — volatile dashboard observers for shared streams.

A *tap* rides along a :class:`~repro.tenancy.fanout
.SharedStreamFanout`: it observes every element of the one shared
ingest pass and maintains a compact summary next to the tenants'
butterfly estimates, composing the :mod:`repro.sketch` and
:mod:`repro.triangles` substrates into the fan-out so one stream
answers a whole dashboard — distinct counts, heavy hitters, deletion
rate, triangle estimates, butterflies — from a single pass.

Taps are deliberately **volatile**: they are monitoring instruments,
not the system of record, so they are *not* checkpointed and reset on
recovery.  The fan-out reports the offset a tap has observed from as
``since_offset`` in its stats, which is 0 for a fresh fan-out and the
recovery offset after a crash — consumers that need full-stream
summaries read them before restarting, or rebuild from the log.

>>> from repro.types import insertion, deletion
>>> tap = CardinalityTap()
>>> tap.observe(insertion("u1", "v1"))
>>> tap.observe(insertion("u1", "v2"))
>>> summary = tap.summary()
>>> sorted(summary) == ['distinct_edges', 'distinct_left',
...                     'distinct_right', 'elements']
True
>>> summary['elements']
2
"""

from __future__ import annotations

import random
from typing import Any, Dict

from repro.sketch import (
    DeletionRateMonitor,
    HeavyHitterTracker,
    StreamCardinalityTracker,
)
from repro.triangles import ThinkD, TriestFD
from repro.types import StreamElement

__all__ = [
    "CardinalityTap",
    "DeletionRateTap",
    "HeavyHitterTap",
    "StreamTap",
    "TriangleTap",
]


class StreamTap:
    """Base class: observe elements, summarise on demand.

    Subclasses override :meth:`observe` and :meth:`summary`;
    :attr:`name` keys the tap inside fan-out stats and must be unique
    within one fan-out.
    """

    name = "tap"

    def observe(self, element: StreamElement) -> None:
        raise NotImplementedError

    def summary(self) -> Dict[str, Any]:
        raise NotImplementedError


class CardinalityTap(StreamTap):
    """HyperLogLog distinct counts: |L|, |R|, |E| of the stream.

    Wraps :class:`~repro.sketch.hyperloglog
    .StreamCardinalityTracker` — one-pass dataset characterisation of
    whatever the tenants are subscribed to.
    """

    name = "cardinality"

    def __init__(self, precision: int = 12, seed: int = 42) -> None:
        self._tracker = StreamCardinalityTracker(
            precision=precision, rng=random.Random(seed)
        )
        self._elements = 0

    def observe(self, element: StreamElement) -> None:
        self._tracker.observe(element)
        self._elements += 1

    def summary(self) -> Dict[str, Any]:
        return {
            "elements": self._elements,
            "distinct_left": round(self._tracker.distinct_left()),
            "distinct_right": round(self._tracker.distinct_right()),
            "distinct_edges": round(self._tracker.distinct_edges()),
        }


class HeavyHitterTap(StreamTap):
    """Count-Min heavy hitters over one side's vertex degrees.

    High-degree vertices are the load-balance hazard of the sharded
    engine (``docs/architecture.md``); watching them per stream tells
    operators *which* tenant workloads carry skew.
    """

    name = "heavy_hitters"

    def __init__(
        self,
        side: str = "left",
        *,
        threshold_fraction: float = 0.01,
        width: int = 512,
        depth: int = 4,
        seed: int = 42,
    ) -> None:
        if side not in ("left", "right"):
            raise ValueError(
                f"side must be 'left' or 'right', got {side!r}"
            )
        self._side = side
        self._tracker = HeavyHitterTracker(
            threshold_fraction=threshold_fraction,
            width=width,
            depth=depth,
            rng=random.Random(seed),
        )

    def observe(self, element: StreamElement) -> None:
        vertex = element.u if self._side == "left" else element.v
        self._tracker.update(vertex)

    def summary(self) -> Dict[str, Any]:
        return {
            "side": self._side,
            "total": self._tracker.total,
            "heavy_hitters": [
                [str(key), count]
                for key, count in self._tracker.heavy_hitters()
            ],
        }


class DeletionRateTap(StreamTap):
    """DGIM sliding-window deletion-rate estimate.

    The deletion ratio drives ABACUS's accuracy profile (paper §VI);
    a live per-stream estimate makes regime changes visible while the
    stream runs.
    """

    name = "deletion_rate"

    def __init__(self, window: int = 4096) -> None:
        self._monitor = DeletionRateMonitor(window)

    def observe(self, element: StreamElement) -> None:
        self._monitor.observe(element)

    def summary(self) -> Dict[str, Any]:
        return {
            "recent_deletions": self._monitor.recent_deletions(),
            "deletion_ratio": self._monitor.deletion_ratio(),
        }


class TriangleTap(StreamTap):
    """Triangle estimates over the stream, via ThinkD or TRIEST-FD.

    Treats each element as an undirected edge event — the natural
    reading for unipartite streams.  On a strictly bipartite stream
    (disjoint vertex namespaces) the triangle count is exactly 0,
    which the tap reports honestly; it earns its keep on streams
    whose endpoints share a namespace.
    """

    name = "triangles"

    def __init__(
        self,
        budget: int = 2048,
        seed: int = 42,
        *,
        algorithm: str = "thinkd",
    ) -> None:
        if algorithm == "thinkd":
            self._estimator: Any = ThinkD(budget=budget, seed=seed)
        elif algorithm == "triest":
            self._estimator = TriestFD(budget=budget, seed=seed)
        else:
            raise ValueError(
                f"algorithm must be 'thinkd' or 'triest', "
                f"got {algorithm!r}"
            )
        self._algorithm = algorithm
        self._skipped = 0

    def observe(self, element: StreamElement) -> None:
        try:
            self._estimator.process(element)
        except Exception:
            # A deletion of a never-inserted edge (e.g. the stream's
            # window expired it) must not poison the dashboard.
            self._skipped += 1

    def summary(self) -> Dict[str, Any]:
        return {
            "algorithm": self._algorithm,
            "estimate": self._estimator.estimate,
            "memory_edges": self._estimator.memory_edges,
            "skipped": self._skipped,
        }


def default_taps() -> list:
    """The standard dashboard: cardinality + heavy hitters +
    deletion rate (triangles opt-in — see :class:`TriangleTap`)."""
    return [CardinalityTap(), HeavyHitterTap(), DeletionRateTap()]


def taps_by_name(taps) -> Dict[str, StreamTap]:
    named: Dict[str, StreamTap] = {}
    for tap in taps:
        if tap.name in named:
            raise ValueError(
                f"duplicate tap name {tap.name!r} in one fan-out"
            )
        named[tap.name] = tap
    return named
