"""Setuptools shim.

The environment has no ``wheel`` package available offline, so PEP 517
editable installs (which require ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517`` perform a legacy develop install;
all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
