"""Multi-tenant fan-out: one shared log vs N independent ingests.

The tenancy layer's economic argument (``docs/multitenancy.md``): when
N tenants subscribe to the *same* stream, a
:class:`~repro.tenancy.SharedStreamFanout` appends each element to
**one** write-ahead log and drives all N estimators in a single pass —
the dominant per-element cost (WAL append + fsync batching) is paid
once instead of N times.  This bench pits a fan-out of 8 ABACUS-family
tenants against 8 fully independent durable sessions over the same
stream and asserts:

* **identity, always** — every tenant's estimate is bit-equal to the
  same estimator fed the same stream standalone (quick mode included);
* **speedup, full runs** — the fan-out beats the 8 independent
  ingests by at least 2x wall-clock.

The headline ``tenant_fanout_eps`` (shared-log elements/sec) feeds the
``tools/bench_runner.py`` floor gate.
"""

import random

from conftest import emit, record_metric

from repro.api import open_session
from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.streams.dynamic import make_fully_dynamic
from repro.tenancy import SharedStreamFanout

#: Eight tenants, distinct ABACUS-family estimators (budgets/seeds
#: differ so identity failures cannot cancel out across tenants).
TENANTS = {
    f"tenant{i:02d}": f"abacus:budget={32 * (1 + i % 4)},seed={11 + i}"
    for i in range(8)
}


def _stream(quick):
    n_side, n_edges = (60, 2500) if quick else (140, 16000)
    rng = random.Random(97)
    edges = bipartite_erdos_renyi(n_side, n_side, n_edges, rng)
    return list(
        make_fully_dynamic(edges, alpha=0.2, rng=random.Random(98))
    )


def _standalone_estimates(stream):
    estimates = {}
    for name, spec in TENANTS.items():
        session = open_session(spec)
        session.ingest(stream)
        estimates[name] = session.estimate
        session.close()
    return estimates


def _independent_ingest(root, stream):
    """8 tenants the pre-tenancy way: one durable session each."""
    watch = Stopwatch()
    estimates = {}
    with watch:
        for name, spec in TENANTS.items():
            session = open_session(spec, durable_dir=root / name)
            session.ingest(stream)
            session.sync()
            estimates[name] = session.estimate
            session.close()
    return estimates, watch.elapsed


def _fanout_ingest(root, stream):
    """The same 8 tenants behind one shared durable log."""
    fanout = SharedStreamFanout(root / "shared", members=TENANTS)
    watch = Stopwatch()
    with watch:
        fanout.ingest(stream)
        fanout.sync()
    estimates = fanout.estimates()
    fanout.close()
    return estimates, watch.elapsed


def run_multitenant(root, quick):
    stream = _stream(quick)
    reference = _standalone_estimates(stream)
    independent, independent_s = _independent_ingest(root, stream)
    fanout, fanout_s = _fanout_ingest(root, stream)

    # Identity, always: shared-log tenants match their standalone
    # runs exactly — fan-out changes the cost, never the answer.
    for name in TENANTS:
        assert fanout[name] == reference[name], name
        assert independent[name] == reference[name], name

    speedup = independent_s / fanout_s
    eps = len(stream) / fanout_s
    rows = [
        [
            "independent x8",
            round(independent_s, 3),
            int(len(stream) / independent_s),
        ],
        ["shared fan-out", round(fanout_s, 3), int(eps)],
    ]
    text = render_table(
        ["path", "seconds", "eps"],
        rows,
        title=(
            f"Multi-tenant ingest: {len(TENANTS)} tenants, "
            f"{len(stream)} elements (speedup {speedup:.2f}x)"
        ),
    )
    return {
        "text": text,
        "speedup": speedup,
        "eps": eps,
        "elements": len(stream),
    }


def test_multitenant_fanout(benchmark, results_dir, tmp_path, quick):
    result = benchmark.pedantic(
        run_multitenant,
        kwargs={"root": tmp_path, "quick": quick},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "multitenant_fanout", result["text"])
    record_metric("tenant_fanout_eps", result["eps"])
    if not quick:
        # The shared log amortises the WAL across all 8 tenants; if
        # this drops below 2x the fan-out stopped sharing anything.
        assert result["speedup"] >= 2.0, result["speedup"]
