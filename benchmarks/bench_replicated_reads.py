"""Replicated read fan-out vs a single node (ISSUE 6).

A durable primary replicates a fully-dynamic stream to two followers
(:mod:`repro.cluster`); once they are caught up, the same fixed query
workload runs twice — every thread hammering the single primary, then
the threads fanned across the follower pool through
:class:`~repro.cluster.ClusterClient` — and the bench reports both
aggregate read rates plus how long replication took to drain the
ingest backlog (lag measured in elements, catch-up in seconds).

Correctness rides along: after catch-up every answer, from every
node, must be the *final* view — identical ``(elements, estimate)``
to the primary's own — or a follower diverged and the bench fails.

The headline ``replicated_read_qps`` feeds the
``tools/bench_runner.py`` floor gate alongside ``serve_query_qps``.
"""

import random
import tempfile
import threading
import time
from pathlib import Path

from conftest import emit, record_metric

from repro.api import open_session
from repro.cluster import (
    ClusterClient,
    follow_in_background,
    replicate_in_background,
)
from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.serve import ServeClient
from repro.streams.dynamic import make_fully_dynamic

SPEC = "abacus:budget=1000,seed=31"
CHUNK = 256
QUERY_THREADS = 3
FOLLOWERS = 2


def _config(quick):
    """(n_side, n_edges, queries_per_thread) for the selected mode."""
    return (60, 3000, 150) if quick else (110, 10000, 600)


def _query_workload(make_client, queries_per_thread):
    """Run the fixed read workload; return (qps, observed pairs)."""
    observed = []
    lock = threading.Lock()

    def query_loop():
        mine = []
        with make_client() as client:
            for _ in range(queries_per_thread):
                view = client.estimate()
                mine.append((view["elements"], view["estimate"]))
        with lock:
            observed.extend(mine)

    threads = [
        threading.Thread(target=query_loop)
        for _ in range(QUERY_THREADS)
    ]
    watch = Stopwatch()
    with watch:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return len(observed) / watch.elapsed, observed


def test_replicated_reads_vs_single_node(benchmark, results_dir, quick):
    n_side, n_edges, queries_per_thread = _config(quick)
    edges = bipartite_erdos_renyi(
        n_side, n_side, n_edges, random.Random(47)
    )
    stream = list(
        make_fully_dynamic(edges, alpha=0.2, rng=random.Random(53))
    )
    chunks = [
        stream[i : i + CHUNK] for i in range(0, len(stream), CHUNK)
    ]

    def run():
        with tempfile.TemporaryDirectory() as scratch:
            root = Path(scratch)
            primary = replicate_in_background(
                open_session(SPEC, durable_dir=root / "primary")
            )
            followers = [
                follow_in_background(
                    primary.server.replication_address,
                    root / f"follower{i}",
                    reconnect_backoff=0.05,
                )
                for i in range(FOLLOWERS)
            ]
            try:
                with ServeClient(*primary.address) as writer:
                    for chunk in chunks:
                        writer.ingest(chunk)
                # Catch-up: how long until every follower has applied
                # *and acked* the whole backlog (primary-side lag 0).
                catchup = Stopwatch()
                with catchup:
                    deadline = time.monotonic() + 120
                    with ServeClient(*primary.address) as client:
                        while True:
                            summary = client.stats()["replication"]
                            lag = summary["max_lag"]
                            if (
                                len(summary["followers"]) == FOLLOWERS
                                and lag == 0
                            ):
                                break
                            if time.monotonic() > deadline:
                                raise AssertionError(
                                    "followers never caught up: "
                                    f"{summary}"
                                )
                            time.sleep(0.005)
                final = (
                    primary.server.view.elements,
                    primary.server.view.estimate,
                )

                single_qps, single_views = _query_workload(
                    lambda: ServeClient(*primary.address),
                    queries_per_thread,
                )
                follower_addresses = [f.address for f in followers]
                replicated_qps, replicated_views = _query_workload(
                    lambda: ClusterClient(
                        primary.address, follower_addresses
                    ),
                    queries_per_thread,
                )
            finally:
                for follower in followers:
                    follower.stop()
                primary.stop()
        for label, views in (
            ("single", single_views),
            ("replicated", replicated_views),
        ):
            for pair in views:
                assert pair == final, (
                    f"{label} read diverged from the primary's final "
                    f"view: {pair} != {final}"
                )
        return {
            "single_qps": single_qps,
            "replicated_qps": replicated_qps,
            "catchup_s": catchup.elapsed,
            "final_lag": lag,
            "queries": len(single_views) + len(replicated_views),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            f"single node ({QUERY_THREADS} threads)",
            f"{results['single_qps']:,.0f} q/s",
        ),
        (
            f"cluster, {FOLLOWERS} followers "
            f"({QUERY_THREADS} threads)",
            f"{results['replicated_qps']:,.0f} q/s",
        ),
        ("catch-up after ingest", f"{results['catchup_s']:.3f} s"),
        ("max lag once drained", f"{results['final_lag']} elements"),
        ("queries answered", f"{results['queries']:,}"),
    ]
    text = render_table(
        ["measure", "value"],
        rows,
        title=(
            f"Replicated reads ({len(stream):,} elements, spec "
            f"{SPEC}) — divergent answers: none"
        ),
    )
    emit(results_dir, "replicated_reads", text)

    record_metric("replicated_read_qps", results["replicated_qps"])
    record_metric("single_node_read_qps", results["single_qps"])
    record_metric("replication_catchup_s", results["catchup_s"])
    assert results["final_lag"] == 0
