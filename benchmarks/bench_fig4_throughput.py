"""Figure 4: throughput vs sample size (20% deletions).

Five series per dataset, as in the paper: PARABACUS (Ins+Del), ABACUS
(Ins+Del), ABACUS (Ins-only), FLEET (Ins-only), CAS (Ins-only); plus
PARABACUS's work-model throughput (DESIGN.md substitution #2 — CPython
threads cannot realise parallel wall-clock gains, so the modeled column
is the one comparable to the paper's 40-thread Java numbers).

Expected shape: single-thread ABACUS ~ FLEET; CAS trails where sketch
updates dominate; modeled PARABACUS far ahead.
"""

from conftest import emit

from repro.experiments.figures import run_throughput_vs_sample_size


def test_fig4_throughput(benchmark, ctx, results_dir, quick, bench_datasets):
    result = benchmark.pedantic(
        run_throughput_vs_sample_size,
        kwargs={
            "num_threads": 40,
            "batch_size": 500,
            "datasets": bench_datasets,
            "context": ctx,
        },
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig4_throughput", result["text"])
    for name, data in result["results"].items():
        columns = data["throughput_keps"]
        for series_name, series in columns.items():
            assert all(v > 0 for v in series), (name, series_name)
        if quick:
            continue  # wall-clock ratios need the full-size streams
        # Handling deletions must not collapse throughput: Ins+Del
        # within 3x of Ins-only for ABACUS (paper: "similar").
        for full, ins_only in zip(
            columns["Abacus (Ins+Del)"], columns["Abacus (Ins-only)"]
        ):
            assert full > ins_only / 3.0, name
        # The work-model PARABACUS beats single-threaded ABACUS.  The
        # per-point comparison gets a 15% noise allowance because the
        # modeled figure is anchored to a wall-clock measurement that
        # jitters on a loaded single-core machine; the best-k comparison
        # is strict.
        for modeled, abacus in zip(
            columns["Parabacus modeled"], columns["Abacus (Ins+Del)"]
        ):
            assert modeled > abacus * 0.85, (name, modeled, abacus)
        assert max(columns["Parabacus modeled"]) > max(
            columns["Abacus (Ins+Del)"]
        ), name
