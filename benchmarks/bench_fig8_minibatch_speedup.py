"""Figure 8: PARABACUS speedup vs mini-batch size (all threads).

Work-model speedup (DESIGN.md substitution #2) for M in {100, 500, 1000,
5000, 10000} with 40 workers and all three budgets per dataset.
Expected shape: speedup grows with M (more work per parallel phase
amortises the sequential versioning) and is largest on the densest
graph (MovieLens-like) and the largest budget.
"""

from conftest import emit

from repro.experiments.figures import run_minibatch_speedup


def test_fig8_minibatch_speedup(
    benchmark, ctx, results_dir, quick, bench_datasets
):
    result = benchmark.pedantic(
        run_minibatch_speedup,
        kwargs={
            "num_threads": 40,
            "batch_sizes": (
                (500, 5000) if quick else (100, 500, 1000, 5000, 10000)
            ),
            "datasets": bench_datasets,
            "context": ctx,
        },
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig8_minibatch_speedup", result["text"])
    if quick:
        return  # speedup shapes need the full batch-size sweep
    for name, data in result["results"].items():
        pure = {
            label: s
            for label, s in data["speedup"].items()
            if not label.endswith("+ovh")
        }
        overhead = {
            label: s
            for label, s in data["speedup"].items()
            if label.endswith("+ovh")
        }
        for label, speedups in pure.items():
            assert all(s >= 1.0 for s in speedups), (name, label)
            # Pure work model: flat-to-growing in M.
            assert speedups[-1] >= speedups[0] * 0.9, (name, label, speedups)
        for label, speedups in overhead.items():
            # With fork/join dispatch costs, larger batches amortise the
            # overhead: the paper's growth-in-M shape.
            assert speedups[-1] > speedups[0], (name, label, speedups)
        largest_budget = list(pure.values())[-1]
        assert max(largest_budget) > 2.0, (name, data["speedup"])
    # Densest graph gains the most at the largest configuration.
    movielens = result["results"]["movielens_like"]["speedup"]
    orkut = result["results"]["orkut_like"]["speedup"]
    assert max(max(s) for s in movielens.values()) >= max(
        max(s) for s in orkut.values()
    ) * 0.8
