"""Section VII-A lineage: ThinkD (eager) vs TRIEST-FD (lazy).

The design choice ABACUS inherits — count against the sample for every
element, not just sampled ones — measured on triangles: eager counting
must deliver lower variance; lazy counting must do less intersection
work.
"""

from conftest import emit

from repro.experiments.extensions import run_triangle_lineage


def test_triangle_lineage(benchmark, results_dir):
    result = benchmark.pedantic(
        run_triangle_lineage,
        kwargs={"trials": 100},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "triangle_lineage", result["text"])
    r = result["results"]
    assert r["ThinkD"]["variance"] < r["TriestFD"]["variance"]
    assert r["TriestFD"]["mean_work"] < r["ThinkD"]["mean_work"]
    # Eager counting stays accurate in the mean.
    assert r["ThinkD"]["mean_error"] < 0.1
