"""Section VII-A lineage: ThinkD (eager) vs TRIEST-FD (lazy).

The design choice ABACUS inherits — count against the sample for every
element, not just sampled ones — measured on triangles: eager counting
must deliver lower variance; lazy counting must do less intersection
work.
"""

from conftest import emit

from repro.experiments.extensions import run_triangle_lineage


def test_triangle_lineage(benchmark, results_dir, quick):
    result = benchmark.pedantic(
        run_triangle_lineage,
        kwargs={"trials": 25 if quick else 100},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "triangle_lineage", result["text"])
    r = result["results"]
    # Lazy counting always does less work; the variance and accuracy
    # comparisons are statistical and need the full trial count.
    assert r["TriestFD"]["mean_work"] < r["ThinkD"]["mean_work"]
    if not quick:
        assert r["ThinkD"]["variance"] < r["TriestFD"]["variance"]
        assert r["ThinkD"]["mean_error"] < 0.1
