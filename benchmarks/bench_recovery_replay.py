"""Durable-store throughput: WAL-ahead ingest and recovery replay.

Measures the persistence layer of ``repro/store/`` (ISSUE 5):

* plain in-memory ingest (the reference ceiling),
* durable ingest — every element CRC-framed into the write-ahead log
  (fsync-batched) *before* processing,
* **recovery replay** el/s — reopening the durable directory cold:
  full-WAL replay (no snapshot) and snapshot + WAL-tail replay
  (checkpoint mid-stream), timed end to end through
  ``open_session(durable_dir=...)``.

Identity is asserted in every mode: each recovered session must be
bit-identical (estimate + complete ``state_to_dict``) to the
uninterrupted run — the kill-at-every-offset version of this contract
lives in ``tests/store/test_recovery.py``.

The headline ``recovery_replay_eps`` (full-WAL replay) feeds the
``tools/bench_runner.py`` floor gate.
"""

import json
import random
import shutil

from conftest import emit, record_metric

from repro.api import open_session
from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.streams.dynamic import make_fully_dynamic

SPEC = "abacus:budget=1000,seed=17"


def _config(quick):
    """(n_side, n_edges) for the selected mode."""
    return (70, 4000) if quick else (140, 16000)


def _fingerprint(session):
    snapshot = session.snapshot()
    return json.dumps(
        {"estimate": session.estimate, "state": snapshot["state"]},
        sort_keys=True,
    )


def _durable_ingest(directory, stream):
    session = open_session(SPEC, durable_dir=directory)
    watch = Stopwatch()
    with watch:
        session.ingest(stream)
        session.sync()
    fingerprint = _fingerprint(session)
    session.close()
    return fingerprint, len(stream) / watch.elapsed


def _recover(directory, expected_fingerprint, expected_elements):
    watch = Stopwatch()
    with watch:
        session = open_session(durable_dir=directory)
    assert session.elements == expected_elements
    assert _fingerprint(session) == expected_fingerprint, (
        "recovered state is not bit-identical to the logged run"
    )
    session.close()
    return expected_elements / watch.elapsed


def test_recovery_replay_throughput(
    benchmark, results_dir, quick, tmp_path
):
    n_side, n_edges = _config(quick)
    edges = bipartite_erdos_renyi(n_side, n_side, n_edges, random.Random(23))
    stream = list(make_fully_dynamic(edges, alpha=0.2, rng=random.Random(29)))

    def run():
        results = {}

        plain = open_session(SPEC)
        watch = Stopwatch()
        with watch:
            plain.ingest(stream)
        reference = _fingerprint(plain)
        results["plain ingest"] = len(stream) / watch.elapsed

        wal_dir = tmp_path / "wal-only"
        fingerprint, eps = _durable_ingest(wal_dir, stream)
        assert fingerprint == reference, (
            "durable ingest diverged from plain ingest"
        )
        results["durable ingest (WAL ahead)"] = eps

        # Cold recovery, no snapshot: rebuild + full-WAL replay.
        results["recovery: full-WAL replay"] = _recover(
            wal_dir, reference, len(stream)
        )

        # Cold recovery with a mid-stream checkpoint: snapshot
        # restore + tail replay over half the log.
        snap_dir = tmp_path / "snapshotted"
        session = open_session(SPEC, durable_dir=snap_dir)
        session.ingest(stream[: len(stream) // 2])
        session.checkpoint()
        session.ingest(stream[len(stream) // 2 :])
        session.sync()
        assert _fingerprint(session) == reference
        session.close()
        results["recovery: snapshot + tail"] = _recover(
            snap_dir, reference, len(stream)
        )

        shutil.rmtree(wal_dir)
        shutil.rmtree(snap_dir)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    plain_eps = results["plain ingest"]
    rows = [
        (label, f"{eps:,.0f}", f"{eps / plain_eps:.2f}x")
        for label, eps in results.items()
    ]
    text = render_table(
        ["configuration", "el/s", "vs plain"],
        rows,
        title=(
            f"Durable store throughput ({len(stream):,} elements, "
            f"spec {SPEC})"
        ),
    )
    emit(results_dir, "recovery_replay", text)

    record_metric("recovery_replay_eps", results["recovery: full-WAL replay"])
    record_metric("durable_ingest_eps", results["durable ingest (WAL ahead)"])
    if quick:
        return
    # Full runs also hold the WAL overhead to a sane bound: logging
    # must cost less than half the plain-ingest throughput.
    durable_eps = results["durable ingest (WAL ahead)"]
    overhead = durable_eps / results["plain ingest"]
    assert overhead >= 0.5, (
        f"WAL-ahead ingest kept only {overhead:.1%} of plain ingest "
        "throughput (required >= 50%)"
    )
