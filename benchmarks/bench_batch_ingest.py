"""Throughput of the vectorized batch-ingest fast path.

Measures elements/sec for batch sizes {1, 64, 1024} against the plain
per-element ``process`` loop, on an insert-only and a fully dynamic
stream, for ABACUS (vectorized counting kernel), PARABACUS (buffered
mini-batch routing), and the exact oracle (tight-loop dispatch).

The configuration is the fast path's target regime — a memory budget
large relative to the vertex count, so sampled neighbourhoods are deep
and counting dominates.  Two contracts are asserted:

* ABACUS at batch size 1024 must run at least 3x faster than the
  per-element path on both workloads (the PR-2 acceptance criterion;
  full runs only — ``--quick`` runs report throughput to the CI floor
  gate in ``tools/bench_runner.py`` instead);
* every batched run must finish with the estimate **equal** to the
  per-element run's — the throughput is only admissible because the
  equivalence suite (``tests/properties/test_batch_equivalence.py``)
  holds the same paths to bit-identical estimates *and* state.  This
  assertion runs in every mode.
"""

import random

from conftest import emit, record_metric

from repro.api import build_estimator
from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges

ALPHA = 0.25
BATCH_SIZES = (1, 64, 1024)


def _config(quick):
    """(budget, n_left/right, n_edges) for the selected mode."""
    return (2000, 60, 2600) if quick else (6000, 100, 9000)


def _streams(quick):
    budget, n_side, n_edges = _config(quick)
    edges = bipartite_erdos_renyi(n_side, n_side, n_edges, random.Random(5))
    specs = (
        ("abacus", f"abacus:budget={budget},seed=11"),
        ("parabacus", f"parabacus:budget={budget},seed=11"),
        ("exact", "exact"),
    )
    streams = {
        "insert-only": list(stream_from_edges(edges)),
        "fully-dynamic": list(
            make_fully_dynamic(edges, alpha=ALPHA, rng=random.Random(6))
        ),
    }
    return specs, streams


def _run_per_element(spec, stream):
    estimator = build_estimator(spec)
    watch = Stopwatch()
    with watch:
        for element in stream:
            estimator.process(element)
        flush = getattr(estimator, "flush", None)
        if flush is not None:
            flush()
    return estimator.estimate, watch.elapsed


def _run_batched(spec, stream, batch_size):
    estimator = build_estimator(spec)
    watch = Stopwatch()
    with watch:
        for start in range(0, len(stream), batch_size):
            estimator.process_batch(stream[start : start + batch_size])
        flush = getattr(estimator, "flush", None)
        if flush is not None:
            flush()
    return estimator.estimate, watch.elapsed


def test_batch_ingest_throughput(benchmark, results_dir, quick):
    specs, streams = _streams(quick)

    def run():
        rows = []
        abacus_speedups = {}
        abacus_eps = {}
        for workload, stream in streams.items():
            for name, spec in specs:
                base_estimate, base_seconds = _run_per_element(spec, stream)
                row = [
                    f"{name} / {workload}",
                    f"{len(stream) / base_seconds:,.0f}",
                ]
                for batch_size in BATCH_SIZES:
                    estimate, seconds = _run_batched(spec, stream, batch_size)
                    assert estimate == base_estimate, (
                        name,
                        workload,
                        batch_size,
                        estimate,
                        base_estimate,
                    )
                    row.append(
                        f"{len(stream) / seconds:,.0f} "
                        f"({base_seconds / seconds:.2f}x)"
                    )
                    if name == "abacus" and batch_size == 1024:
                        abacus_speedups[workload] = base_seconds / seconds
                        abacus_eps[workload] = len(stream) / seconds
                rows.append(tuple(row))
        return rows, abacus_speedups, abacus_eps

    rows, abacus_speedups, abacus_eps = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    budget, n_side, n_edges = _config(quick)
    text = render_table(
        ["Estimator / workload", "per-element el/s"]
        + [f"batch={b} el/s" for b in BATCH_SIZES],
        rows,
        title=(
            f"Batch-ingest throughput (k={budget}, "
            f"{n_side}x{n_side}, {n_edges} edges, alpha={ALPHA})"
        ),
    )
    emit(results_dir, "batch_ingest", text)
    record_metric("batch_ingest_eps", max(abacus_eps.values()))
    if quick:
        return
    for workload, speedup in abacus_speedups.items():
        assert speedup >= 3.0, (
            f"abacus batch=1024 speedup on {workload} stream is "
            f"{speedup:.2f}x, below the 3x contract"
        )
