"""Throughput of the vectorized batch-ingest fast path.

Measures elements/sec for batch sizes {1, 64, 1024} against the plain
per-element ``process`` loop, on an insert-only and a fully dynamic
stream, for ABACUS (vectorized counting kernel), PARABACUS (buffered
mini-batch routing), and the exact oracle (tight-loop dispatch).

The configuration is the fast path's target regime — a memory budget
large relative to the vertex count, so sampled neighbourhoods are deep
and counting dominates.  Two contracts are asserted:

* ABACUS at batch size 1024 must run at least 3x faster than the
  per-element path on both workloads (the PR's acceptance criterion);
* every batched run must finish with the estimate **equal** to the
  per-element run's — the throughput is only admissible because the
  equivalence suite (``tests/properties/test_batch_equivalence.py``)
  holds the same paths to bit-identical estimates *and* state.
"""

import random

from conftest import emit

from repro.api import build_estimator
from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges

BUDGET = 6000
N_LEFT = N_RIGHT = 100
N_EDGES = 9000
ALPHA = 0.25
BATCH_SIZES = (1, 64, 1024)
SPECS = (
    ("abacus", f"abacus:budget={BUDGET},seed=11"),
    ("parabacus", f"parabacus:budget={BUDGET},seed=11"),
    ("exact", "exact"),
)


def _streams():
    edges = bipartite_erdos_renyi(N_LEFT, N_RIGHT, N_EDGES, random.Random(5))
    return {
        "insert-only": list(stream_from_edges(edges)),
        "fully-dynamic": list(
            make_fully_dynamic(edges, alpha=ALPHA, rng=random.Random(6))
        ),
    }


def _run_per_element(spec, stream):
    estimator = build_estimator(spec)
    watch = Stopwatch()
    with watch:
        for element in stream:
            estimator.process(element)
        flush = getattr(estimator, "flush", None)
        if flush is not None:
            flush()
    return estimator.estimate, watch.elapsed


def _run_batched(spec, stream, batch_size):
    estimator = build_estimator(spec)
    watch = Stopwatch()
    with watch:
        for start in range(0, len(stream), batch_size):
            estimator.process_batch(stream[start : start + batch_size])
        flush = getattr(estimator, "flush", None)
        if flush is not None:
            flush()
    return estimator.estimate, watch.elapsed


def test_batch_ingest_throughput(benchmark, results_dir):
    streams = _streams()

    def run():
        rows = []
        abacus_speedups = {}
        for workload, stream in streams.items():
            for name, spec in SPECS:
                base_estimate, base_seconds = _run_per_element(spec, stream)
                row = [f"{name} / {workload}", f"{len(stream) / base_seconds:,.0f}"]
                for batch_size in BATCH_SIZES:
                    estimate, seconds = _run_batched(spec, stream, batch_size)
                    assert estimate == base_estimate, (
                        name,
                        workload,
                        batch_size,
                        estimate,
                        base_estimate,
                    )
                    row.append(
                        f"{len(stream) / seconds:,.0f} "
                        f"({base_seconds / seconds:.2f}x)"
                    )
                    if name == "abacus" and batch_size == 1024:
                        abacus_speedups[workload] = base_seconds / seconds
                rows.append(tuple(row))
        return rows, abacus_speedups

    rows, abacus_speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["Estimator / workload", "per-element el/s"]
        + [f"batch={b} el/s" for b in BATCH_SIZES],
        rows,
        title=(
            f"Batch-ingest throughput (k={BUDGET}, "
            f"{N_LEFT}x{N_RIGHT}, {N_EDGES} edges, alpha={ALPHA})"
        ),
    )
    emit(results_dir, "batch_ingest", text)
    for workload, speedup in abacus_speedups.items():
        assert speedup >= 3.0, (
            f"abacus batch=1024 speedup on {workload} stream is "
            f"{speedup:.2f}x, below the 3x contract"
        )
