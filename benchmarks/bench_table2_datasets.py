"""Table II: dataset statistics of the four scaled analogues.

Regenerates |E|, |L|, |R|, the exact butterfly count, and the butterfly
density for each dataset, and asserts the paper's density ordering
(MovieLens >> Trackers > LiveJournal > Orkut).
"""

from conftest import emit

from repro.experiments.figures import run_table2


def test_table2_dataset_statistics(
    benchmark, results_dir, quick, bench_datasets
):
    result = benchmark.pedantic(
        run_table2,
        kwargs={"datasets": bench_datasets},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table2", result["text"])
    stats = result["stats"]
    densities = {name: s["density"] for name, s in stats.items()}
    if quick:
        # Only the two density extremes run under --quick.
        assert densities["movielens_like"] > 10 * densities["orkut_like"]
    else:
        assert densities["movielens_like"] > 10 * densities["trackers_like"]
        assert densities["trackers_like"] > densities["livejournal_like"]
        assert densities["livejournal_like"] > densities["orkut_like"]
    for s in stats.values():
        assert s["butterflies"] > 0
