"""Ablations of the design choices DESIGN.md calls out.

(a) cheapest-side heuristic (Algorithm 1, line 7): estimates identical,
    intersection work should not increase (and typically drops);
(b) naive increment (ignoring the compensation counters in Equation 1):
    a deletion-unaware weighting that skews the estimate.
"""

from conftest import emit

from repro.experiments.figures import run_ablation_heuristics


def test_ablation_heuristics(benchmark, ctx, results_dir, quick):
    result = benchmark.pedantic(
        run_ablation_heuristics,
        kwargs={
            "datasets": (
                ("movielens_like",)
                if quick
                else ("movielens_like", "orkut_like")
            ),
            "trials": 1 if quick else 2,
            "context": ctx,
        },
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ablation_heuristics", result["text"])
    for name, variants in result["results"].items():
        default = variants["default"]
        no_heuristic = variants["no_cheapest_side"]
        # Same estimates (identical discoveries), so same error.
        assert abs(default["error"] - no_heuristic["error"]) < 1e-9, name
        # The heuristic does not increase intersection work.
        assert default["work"] <= no_heuristic["work"] * 1.05, (
            name,
            default["work"],
            no_heuristic["work"],
        )
