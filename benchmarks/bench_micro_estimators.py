"""Micro-benchmarks: per-element processing cost of every estimator.

These use pytest-benchmark's normal multi-round timing (unlike the
figure benches, which run once) on a fixed 5K-element prefix of the
LiveJournal-like stream, so regressions in the hot paths show up as
wall-clock changes in the benchmark table.
"""

import pytest

from repro.experiments.datasets import get_dataset
from repro.experiments.runner import make_estimator

BUDGET = 1500
PREFIX = 5000


@pytest.fixture(scope="module")
def stream_prefix():
    spec = get_dataset("livejournal_like")
    return list(spec.stream(alpha=0.2, trial=0).prefix(PREFIX))


def _run(method, stream):
    estimator = make_estimator(method, BUDGET, seed=1)
    for element in stream:
        estimator.process(element)
    if method == "parabacus":
        estimator.flush()
    return estimator.estimate


@pytest.mark.parametrize(
    "method", ["abacus", "parabacus", "fleet", "cas", "exact"]
)
def test_estimator_throughput(benchmark, stream_prefix, method):
    benchmark.pedantic(
        _run,
        args=(method, stream_prefix),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
