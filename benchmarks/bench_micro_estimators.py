"""Micro-benchmarks: per-element processing cost of every estimator.

These use pytest-benchmark's normal multi-round timing (unlike the
figure benches, which run once) on a fixed 5K-element prefix of the
LiveJournal-like stream, so regressions in the hot paths show up as
wall-clock changes in the benchmark table.

Estimators are named by registry spec strings and driven through the
session facade (:func:`repro.api.open_session`), so this bench also
meters the public API path every consumer now uses.
"""

import pytest

from repro.api import open_session
from repro.experiments.datasets import get_dataset

BUDGET = 1500
PREFIX = 5000

SPECS = [
    f"abacus:budget={BUDGET},seed=1",
    f"parabacus:budget={BUDGET},seed=1",
    f"fleet:budget={BUDGET},seed=1",
    f"cas:budget={BUDGET},seed=1",
    f"sgrapp:budget={BUDGET}",
    "exact",
]


@pytest.fixture(scope="module")
def stream_prefix(quick):
    spec = get_dataset("livejournal_like")
    return list(
        spec.stream(alpha=0.2, trial=0).prefix(1500 if quick else PREFIX)
    )


def _run(spec, stream):
    with open_session(spec) as session:
        session.ingest(stream)
        session.flush()
        return session.estimate


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.split(":")[0])
def test_estimator_throughput(benchmark, stream_prefix, spec, quick):
    benchmark.pedantic(
        _run,
        args=(spec, stream_prefix),
        rounds=1 if quick else 3,
        iterations=1,
        warmup_rounds=0 if quick else 1,
    )
