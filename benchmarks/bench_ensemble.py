"""Ablation: ensemble averaging vs a single instance.

Quantifies the two memory accountings described in
``repro/core/ensemble.py``: extra-memory replicas should cut RMSE by
about ``sqrt(r)``, while splitting one budget across replicas should
*lose* to the single instance (Theorem 2's variance is superlinear in
``1/k``).
"""

from conftest import emit

from repro.experiments.extensions import run_ensemble


def test_ensemble_ablation(benchmark, results_dir, quick):
    result = benchmark.pedantic(
        run_ensemble,
        kwargs={"replicas": 4, "budget": 80, "trials": 20 if quick else 60},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "ensemble", result["text"])
    if quick:
        return  # RMSE comparisons need the full trial count.
    r = result["results"]
    # More memory -> lower error.
    assert r["ensemble-extra"]["rmse"] < r["single"]["rmse"]
    # Same memory split across replicas -> not better than one big
    # sample (allow 10% noise slack).
    assert r["ensemble-shared"]["rmse"] > 0.9 * r["single"]["rmse"]
